"""Serving benchmark: multi-client sustained txn/s and tail latency
through the asyncio front-end (``rdbms/serve.py``).

The workload is many *small* transactions — the OLTP shape the serving
layer exists for: ``--clients`` (default 16) concurrent sessions each
submit ``--txns`` transactions of 1–2 statements against the Figure-6a
``luxuryitems`` view (a fresh single-tuple INSERT, every fourth
transaction paired with a by-key DELETE of one of the client's earlier
rows so the table stays bounded).  Client key blocks are spread across
the 4-shard key space, so sharded configurations route naturally.

Configurations:

* ``direct-single``     — the baseline: one ``execute_many`` per
  transaction, driven serially with no server in front.
* ``served-nogroup``    — the asyncio front-end, group commit off: the
  server costs an event-loop hop but still runs one engine transaction
  per submission.
* ``served-group``      — group commit on: concurrent submissions
  coalesce into one batched delta run (the PR 3/5 coalescing machinery
  applied *across* clients).
* ``served-threads``    — group commit over a 4-shard thread-mode
  ``ShardedEngine`` (parallelism 4).
* ``served-procs``      — group commit over the same shards in worker
  *processes* (``execution='processes'``): on an N-core host the
  batch's prepare fans out across real cores; on a 1-core host it
  measures the RPC overhead (the gate allows 0.85× the serial
  baseline for it — the win shows on multicore, as recorded in the
  JSON's ``note``).

Each configuration reports sustained txn/s and P50/P95/P99 submit→
receipt latency into ``BENCH_serve.json``.  The configurations run on
the shared ``benchsuite.harness`` core: engines live for the whole
run, every timed round drives one full client swarm (fresh key epoch
per round), and rounds interleave the configurations in rotated order
so no configuration systematically inherits a warm machine.

Run:  python benchmarks/bench_serve.py [--quick] [--check] [--json PATH]

``--check`` is the CI smoke gate: group commit must beat the no-group
server (that's the point of the feature), and the process-backed
configuration must hold ≥ 0.85× the serial baseline even single-core.
"""

import argparse
import asyncio
import json
import os
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / 'src'))

from repro.benchsuite.harness import BenchCase, run_cases    # noqa: E402
from repro.core.strategy import UpdateStrategy               # noqa: E402
from repro.rdbms.dml import Delete, Insert                   # noqa: E402
from repro.rdbms.engine import Engine                        # noqa: E402
from repro.rdbms.serve import ViewServer                     # noqa: E402
from repro.rdbms.sharded import (RangePartitioner,           # noqa: E402
                                 ShardedEngine)
from repro.relational.schema import DatabaseSchema           # noqa: E402

SHARDS = 4
#: Key space per shard slot (matches bench_shard.py).
SLOT = 10 ** 9
#: Keys per client block inside a shard slot.
BLOCK = 10 ** 6


def _strategy() -> UpdateStrategy:
    sources = DatabaseSchema.build(
        items={'iid': 'int', 'iname': 'string', 'price': 'int'})
    return UpdateStrategy.parse('luxuryitems', sources, """
        ⊥ :- luxuryitems(I, N, P), not P > 1000.
        +items(I, N, P) :- luxuryitems(I, N, P), not items(I, N, P).
        expensive(I, N, P) :- items(I, N, P), P > 1000.
        -items(I, N, P) :- expensive(I, N, P), not luxuryitems(I, N, P).
    """, expected_get='luxuryitems(I, N, P) :- items(I, N, P), '
                      'P > 1000.')


def _base_rows(size: int) -> list[tuple]:
    rows = []
    per_shard = size // SHARDS
    for shard in range(SHARDS):
        base = shard * SLOT
        rows.extend((base + i, f'item_{shard}_{i}', 2000 + i % 500)
                    for i in range(per_shard))
    return rows


def _client_txns(client: int, txns: int, epoch: int = 0) -> list[list]:
    """One client's transaction sequence: fresh INSERTs in the client's
    key block, every fourth transaction also deleting the client's
    oldest remaining row (bounded table, deterministic keys).
    ``epoch`` offsets the keys so repeated rounds against a long-lived
    engine never re-insert an existing row."""
    base = (client % SHARDS) * SLOT + SLOT // 2 + client * BLOCK \
        + epoch * txns
    live: list[int] = []
    sequence = []
    for n in range(txns):
        iid = base + n
        buckets = [('luxuryitems',
                    [Insert((iid, f'c{client}_{n}_{epoch}', 5000))])]
        live.append(iid)
        if n % 4 == 3:
            buckets.append(('luxuryitems',
                            [Delete({'iid': live.pop(0)})]))
        sequence.append(buckets)
    return sequence


def _build_engine(kind: str, strategy, size: int):
    if kind == 'single':
        engine = Engine(strategy.sources, backend='memory')
    else:
        partitioner = RangePartitioner(
            [i * SLOT for i in range(1, SHARDS)])
        engine = ShardedEngine(
            strategy.sources, partitioner=partitioner,
            backends='memory',
            shard_keys={'luxuryitems': 'iid', 'items': 'iid'},
            execution='processes' if kind == 'procs' else 'threads',
            parallelism=SHARDS)
    engine.load('items', _base_rows(size))
    engine.define_view(strategy, validate_first=False)
    engine.rows('luxuryitems')
    return engine


def _run_direct(engine, clients: int, txns: int,
                epoch: int) -> list[float]:
    """The serial baseline: every client transaction, one engine run
    each, no server in front.  Returns per-transaction latencies."""
    plans = [_client_txns(c, txns, epoch) for c in range(clients)]
    latencies = []
    for round_ in range(txns):           # round-robin, like a fair loop
        for plan in plans:
            t0 = time.perf_counter()
            engine.execute_many(plan[round_])
            latencies.append(time.perf_counter() - t0)
    return latencies


def _run_served(engine, clients: int, txns: int, epoch: int, *,
                group: bool, max_inflight: int,
                max_group: int) -> tuple[list[float], dict]:
    async def main():
        latencies = []
        async with ViewServer(engine, max_inflight=max_inflight,
                              group_commit=group,
                              max_group=max_group) as server:
            async def session(client: int):
                for buckets in _client_txns(client, txns, epoch):
                    t0 = time.perf_counter()
                    await server.submit(buckets)
                    latencies.append(time.perf_counter() - t0)
            await asyncio.gather(*[session(c) for c in range(clients)])
        return latencies, {k: server.stats[k]
                           for k in ('groups', 'grouped', 'max_group',
                                     'retried')}
    return asyncio.run(main())


CONFIGS = (
    ('direct-single', 'single', None),
    ('served-nogroup', 'single', False),
    ('served-group', 'single', True),
    ('served-threads', 'threads', True),
    ('served-procs', 'procs', True),
)


def run_bench(size: int, clients: int, txns: int, *, rounds: int = 3,
              max_inflight: int = 64, max_group: int = 32,
              progress=None) -> list[dict]:
    strategy = _strategy()
    group_stats: dict[str, dict] = {}

    def make_case(config: str, kind: str, group) -> BenchCase:
        def op(ctx, round_index):
            # Warmup rounds get their own epochs (round_index is
            # negative there): every round inserts fresh keys.
            epoch = round_index + 4
            if group is None:
                return _run_direct(ctx, clients, txns, epoch)
            latencies, stats = _run_served(
                ctx, clients, txns, epoch, group=group,
                max_inflight=max_inflight, max_group=max_group)
            group_stats[config] = stats     # last round's server wins
            return latencies

        return BenchCase(name=config,
                         setup=lambda: _build_engine(kind, strategy,
                                                     size),
                         op=op, teardown=lambda ctx: ctx.close(),
                         warmup=1,
                         meta={'engine': kind,
                               'group_commit': bool(group)})

    results = run_cases([make_case(*spec) for spec in CONFIGS],
                        rounds=rounds, seed=17, progress=progress)
    points = []
    for result in results:
        point = {'config': result.name, 'engine': result.meta['engine'],
                 'group_commit': result.meta['group_commit'],
                 'clients': clients, 'txns_per_client': txns,
                 'rounds': len(result.wall), 'base_size': size,
                 'txns_per_second': (clients * txns * len(result.wall)
                                     / result.total_seconds),
                 'latency': result.latency}
        if result.name in group_stats:
            point['group_stats'] = group_stats[result.name]
        points.append(point)
    return points


def format_points(points) -> str:
    lines = [f'{"config":<16} {"engine":>8} {"group":>6} {"txn/s":>9} '
             f'{"p50 ms":>8} {"p95 ms":>8} {"p99 ms":>8} '
             f'{"max grp":>8}']
    lines.append('-' * len(lines[0]))
    for p in points:
        latency = p['latency']
        group = p.get('group_stats', {})
        lines.append(
            f'{p["config"]:<16} {p["engine"]:>8} '
            f'{"on" if p["group_commit"] else "off":>6} '
            f'{p["txns_per_second"]:>9.0f} {latency["p50_ms"]:>8.2f} '
            f'{latency["p95_ms"]:>8.2f} {latency["p99_ms"]:>8.2f} '
            f'{group.get("max_group", "-"):>8}')
    return '\n'.join(lines)


def _main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument('--size', type=int, default=10_000,
                        help='base items rows across the key space')
    parser.add_argument('--clients', type=int, default=24,
                        help='concurrent client sessions')
    parser.add_argument('--txns', type=int, default=50,
                        help='transactions per client')
    parser.add_argument('--rounds', type=int, default=3,
                        help='timed harness rounds per configuration')
    parser.add_argument('--max-inflight', type=int, default=64)
    parser.add_argument('--max-group', type=int, default=32)
    parser.add_argument('--quick', action='store_true',
                        help='small sizes: a CI smoke run')
    parser.add_argument('--check', action='store_true',
                        help='fail when group commit does not beat the '
                             'no-group server, or the process-backed '
                             'configuration falls below 0.85x the '
                             'serial baseline')
    parser.add_argument('--json', type=Path,
                        default=Path(__file__).resolve().parent /
                        'BENCH_serve.json')
    args = parser.parse_args(argv)
    size, clients, txns = args.size, args.clients, args.txns
    rounds = args.rounds
    if args.quick:
        size, clients, txns, rounds = 8_000, 8, 30, 2
    points = run_bench(size, clients, txns, rounds=rounds,
                       max_inflight=args.max_inflight,
                       max_group=args.max_group,
                       progress=lambda msg: print(f'  {msg}',
                                                  file=sys.stderr))
    print(format_points(points))
    by_config = {p['config']: p for p in points}
    payload = {
        'benchmark': 'serve', 'size': size, 'clients': clients,
        'txns_per_client': txns, 'cpu_count': os.cpu_count(),
        'note': ('group commit coalesces concurrent small transactions '
                 'into one batched delta run; served-procs beats '
                 'served-threads on multi-core hosts, where the '
                 'grouped prepare fans out across worker processes — '
                 'on a 1-core host both measure coordination overhead '
                 'only'),
        'results': points,
    }
    args.json.write_text(json.dumps(payload, indent=2) + '\n',
                         encoding='utf-8')
    print(f'wrote {args.json}')
    if args.check:
        failed = False
        group = by_config['served-group']['txns_per_second']
        nogroup = by_config['served-nogroup']['txns_per_second']
        if group < 1.05 * nogroup:
            print(f'FAIL: group commit {group:.0f} txn/s did not beat '
                  f'the no-group server {nogroup:.0f} (needed >= '
                  f'1.05x)', file=sys.stderr)
            failed = True
        procs = by_config['served-procs']['txns_per_second']
        serial = by_config['direct-single']['txns_per_second']
        if procs < 0.85 * serial:
            print(f'FAIL: served-procs {procs:.0f} txn/s fell below '
                  f'0.85x the serial baseline {serial:.0f}',
                  file=sys.stderr)
            failed = True
        if failed:
            return 1
        print(f'check passed: group commit = {group / nogroup:.2f}x '
              f'no-group, procs = {procs / serial:.2f}x serial '
              f'baseline')
    return 0


if __name__ == '__main__':
    raise SystemExit(_main())
