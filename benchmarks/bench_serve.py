"""Serving benchmark: multi-client sustained txn/s and tail latency
through the asyncio front-end (``rdbms/serve.py``).

The workload is many *small* transactions — the OLTP shape the serving
layer exists for: ``--clients`` (default 16) concurrent sessions each
submit ``--txns`` transactions of 1–2 statements against the Figure-6a
``luxuryitems`` view (a fresh single-tuple INSERT, every fourth
transaction paired with a by-key DELETE of one of the client's earlier
rows so the table stays bounded).  Client key blocks are spread across
the 4-shard key space, so sharded configurations route naturally.

Configurations:

* ``direct-single``     — the baseline: one ``execute_many`` per
  transaction, driven serially with no server in front.
* ``served-nogroup``    — the asyncio front-end, group commit off: the
  server costs an event-loop hop but still runs one engine transaction
  per submission.
* ``served-group``      — group commit on: concurrent submissions
  coalesce into one batched delta run (the PR 3/5 coalescing machinery
  applied *across* clients).
* ``served-threads``    — group commit over a 4-shard thread-mode
  ``ShardedEngine`` (parallelism 4).
* ``served-procs``      — group commit over the same shards in worker
  *processes* (``execution='processes'``): on an N-core host the
  batch's prepare fans out across real cores; on a 1-core host it
  measures the RPC overhead (the gate allows 0.85× the serial
  baseline for it — the win shows on multicore, as recorded in the
  JSON's ``note``).

Each configuration reports sustained txn/s and P50/P95/P99 submit→
receipt latency (seeded, iterated) into ``BENCH_serve.json``.

Run:  python benchmarks/bench_serve.py [--quick] [--check] [--json PATH]

``--check`` is the CI smoke gate: group commit must beat the no-group
server (that's the point of the feature), and the process-backed
configuration must hold ≥ 0.85× the serial baseline even single-core.
"""

import argparse
import asyncio
import json
import os
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / 'src'))

from repro.benchsuite.latency import summarize_latencies     # noqa: E402
from repro.core.strategy import UpdateStrategy               # noqa: E402
from repro.rdbms.dml import Delete, Insert                   # noqa: E402
from repro.rdbms.engine import Engine                        # noqa: E402
from repro.rdbms.serve import ViewServer                     # noqa: E402
from repro.rdbms.sharded import (RangePartitioner,           # noqa: E402
                                 ShardedEngine)
from repro.relational.schema import DatabaseSchema           # noqa: E402

SHARDS = 4
#: Key space per shard slot (matches bench_shard.py).
SLOT = 10 ** 9
#: Keys per client block inside a shard slot.
BLOCK = 10 ** 6


def _strategy() -> UpdateStrategy:
    sources = DatabaseSchema.build(
        items={'iid': 'int', 'iname': 'string', 'price': 'int'})
    return UpdateStrategy.parse('luxuryitems', sources, """
        ⊥ :- luxuryitems(I, N, P), not P > 1000.
        +items(I, N, P) :- luxuryitems(I, N, P), not items(I, N, P).
        expensive(I, N, P) :- items(I, N, P), P > 1000.
        -items(I, N, P) :- expensive(I, N, P), not luxuryitems(I, N, P).
    """, expected_get='luxuryitems(I, N, P) :- items(I, N, P), '
                      'P > 1000.')


def _base_rows(size: int) -> list[tuple]:
    rows = []
    per_shard = size // SHARDS
    for shard in range(SHARDS):
        base = shard * SLOT
        rows.extend((base + i, f'item_{shard}_{i}', 2000 + i % 500)
                    for i in range(per_shard))
    return rows


def _client_txns(client: int, txns: int) -> list[list]:
    """One client's transaction sequence: fresh INSERTs in the client's
    key block, every fourth transaction also deleting the client's
    oldest remaining row (bounded table, deterministic keys)."""
    base = (client % SHARDS) * SLOT + SLOT // 2 + client * BLOCK
    live: list[int] = []
    sequence = []
    for n in range(txns):
        iid = base + n
        buckets = [('luxuryitems',
                    [Insert((iid, f'c{client}_{n}', 5000))])]
        live.append(iid)
        if n % 4 == 3:
            buckets.append(('luxuryitems',
                            [Delete({'iid': live.pop(0)})]))
        sequence.append(buckets)
    return sequence


def _build_engine(kind: str, strategy, size: int):
    if kind == 'single':
        engine = Engine(strategy.sources, backend='memory')
    else:
        partitioner = RangePartitioner(
            [i * SLOT for i in range(1, SHARDS)])
        engine = ShardedEngine(
            strategy.sources, partitioner=partitioner,
            backends='memory',
            shard_keys={'luxuryitems': 'iid', 'items': 'iid'},
            execution='processes' if kind == 'procs' else 'threads',
            parallelism=SHARDS)
    engine.load('items', _base_rows(size))
    engine.define_view(strategy, validate_first=False)
    engine.rows('luxuryitems')
    return engine


def _run_direct(engine, clients: int, txns: int) -> dict:
    """The serial baseline: every client transaction, one engine run
    each, no server in front."""
    plans = [_client_txns(c, txns) for c in range(clients)]
    latencies = []
    started = time.perf_counter()
    for round_ in range(txns):           # round-robin, like a fair loop
        for plan in plans:
            t0 = time.perf_counter()
            engine.execute_many(plan[round_])
            latencies.append(time.perf_counter() - t0)
    elapsed = time.perf_counter() - started
    return {'txns_per_second': clients * txns / elapsed,
            'latency': summarize_latencies(latencies)}


def _run_served(engine, clients: int, txns: int, *, group: bool,
                max_inflight: int, max_group: int) -> dict:
    async def main():
        latencies = []
        async with ViewServer(engine, max_inflight=max_inflight,
                              group_commit=group,
                              max_group=max_group) as server:
            async def session(client: int):
                for buckets in _client_txns(client, txns):
                    t0 = time.perf_counter()
                    await server.submit(buckets)
                    latencies.append(time.perf_counter() - t0)
            started = time.perf_counter()
            await asyncio.gather(*[session(c) for c in range(clients)])
            elapsed = time.perf_counter() - started
        return {'txns_per_second': clients * txns / elapsed,
                'latency': summarize_latencies(latencies),
                'group_stats': {k: server.stats[k]
                                for k in ('groups', 'grouped',
                                          'max_group', 'retried')}}
    return asyncio.run(main())


CONFIGS = (
    ('direct-single', 'single', None),
    ('served-nogroup', 'single', False),
    ('served-group', 'single', True),
    ('served-threads', 'threads', True),
    ('served-procs', 'procs', True),
)


def run_bench(size: int, clients: int, txns: int, *,
              max_inflight: int = 64, max_group: int = 32,
              progress=None) -> list[dict]:
    strategy = _strategy()
    points = []
    for config, kind, group in CONFIGS:
        engine = _build_engine(kind, strategy, size)
        try:
            # One warmup pass primes plans and caches; the engine is
            # rebuilt per configuration so key blocks replay cleanly.
            engine.execute_many(_client_txns(10_000, 2)[0])
            if group is None:
                result = _run_direct(engine, clients, txns)
            else:
                result = _run_served(engine, clients, txns, group=group,
                                     max_inflight=max_inflight,
                                     max_group=max_group)
        finally:
            engine.close()
        point = {'config': config, 'engine': kind,
                 'group_commit': bool(group), 'clients': clients,
                 'txns_per_client': txns, 'base_size': size, **result}
        points.append(point)
        if progress:
            progress(point)
    return points


def format_points(points) -> str:
    lines = [f'{"config":<16} {"engine":>8} {"group":>6} {"txn/s":>9} '
             f'{"p50 ms":>8} {"p95 ms":>8} {"p99 ms":>8} '
             f'{"max grp":>8}']
    lines.append('-' * len(lines[0]))
    for p in points:
        latency = p['latency']
        group = p.get('group_stats', {})
        lines.append(
            f'{p["config"]:<16} {p["engine"]:>8} '
            f'{"on" if p["group_commit"] else "off":>6} '
            f'{p["txns_per_second"]:>9.0f} {latency["p50_ms"]:>8.2f} '
            f'{latency["p95_ms"]:>8.2f} {latency["p99_ms"]:>8.2f} '
            f'{group.get("max_group", "-"):>8}')
    return '\n'.join(lines)


def _main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument('--size', type=int, default=10_000,
                        help='base items rows across the key space')
    parser.add_argument('--clients', type=int, default=24,
                        help='concurrent client sessions')
    parser.add_argument('--txns', type=int, default=50,
                        help='transactions per client')
    parser.add_argument('--max-inflight', type=int, default=64)
    parser.add_argument('--max-group', type=int, default=32)
    parser.add_argument('--quick', action='store_true',
                        help='small sizes: a CI smoke run')
    parser.add_argument('--check', action='store_true',
                        help='fail when group commit does not beat the '
                             'no-group server, or the process-backed '
                             'configuration falls below 0.85x the '
                             'serial baseline')
    parser.add_argument('--json', type=Path,
                        default=Path(__file__).resolve().parent /
                        'BENCH_serve.json')
    args = parser.parse_args(argv)
    size, clients, txns = args.size, args.clients, args.txns
    if args.quick:
        size, clients, txns = 8_000, 8, 30
    points = run_bench(size, clients, txns,
                       max_inflight=args.max_inflight,
                       max_group=args.max_group,
                       progress=lambda p: print(
                           f'  {p["config"]}: '
                           f'{p["txns_per_second"]:.0f} txn/s, '
                           f'p99 {p["latency"]["p99_ms"]:.2f} ms',
                           file=sys.stderr))
    print(format_points(points))
    by_config = {p['config']: p for p in points}
    payload = {
        'benchmark': 'serve', 'size': size, 'clients': clients,
        'txns_per_client': txns, 'cpu_count': os.cpu_count(),
        'note': ('group commit coalesces concurrent small transactions '
                 'into one batched delta run; served-procs beats '
                 'served-threads on multi-core hosts, where the '
                 'grouped prepare fans out across worker processes — '
                 'on a 1-core host both measure coordination overhead '
                 'only'),
        'results': points,
    }
    args.json.write_text(json.dumps(payload, indent=2) + '\n',
                         encoding='utf-8')
    print(f'wrote {args.json}')
    if args.check:
        failed = False
        group = by_config['served-group']['txns_per_second']
        nogroup = by_config['served-nogroup']['txns_per_second']
        if group < 1.05 * nogroup:
            print(f'FAIL: group commit {group:.0f} txn/s did not beat '
                  f'the no-group server {nogroup:.0f} (needed >= '
                  f'1.05x)', file=sys.stderr)
            failed = True
        procs = by_config['served-procs']['txns_per_second']
        serial = by_config['direct-single']['txns_per_second']
        if procs < 0.85 * serial:
            print(f'FAIL: served-procs {procs:.0f} txn/s fell below '
                  f'0.85x the serial baseline {serial:.0f}',
                  file=sys.stderr)
            failed = True
        if failed:
            return 1
        print(f'check passed: group commit = {group / nogroup:.2f}x '
              f'no-group, procs = {procs / serial:.2f}x serial '
              f'baseline')
    return 0


if __name__ == '__main__':
    raise SystemExit(_main())
