"""Shared fixtures for the benchmark harness.

Engines are cached per (view, size, mode) for the Figure 6 benches so
repeated benchmark rounds measure the update, not the data load.
"""

from __future__ import annotations

import itertools

import pytest

from repro.benchsuite.catalog import entry_by_name
from repro.benchsuite.workload import build_engine, update_statement

_ENGINES: dict = {}
_COUNTERS = itertools.count(1)


@pytest.fixture(scope='session', autouse=True)
def _close_cached_engines():
    """Close every cached engine at session end — engines own SQLite
    leases and caches; leaking them skews later benchmark RSS."""
    yield
    while _ENGINES:
        _ENGINES.popitem()[1].close()


@pytest.fixture
def fig6_engine():
    """Factory: a loaded engine + a fresh-row generator for one panel."""

    def factory(view: str, size: int, incremental: bool):
        key = (view, size, incremental)
        entry = entry_by_name(view)
        if key not in _ENGINES:
            engine = build_engine(entry, size, incremental=incremental)
            engine.rows(view)  # materialise the view cache
            # Warmup: build persistent indexes, as a live RDBMS would.
            engine.insert(view, update_statement(entry, engine,
                                                 next(_COUNTERS)))
            _ENGINES[key] = engine

        engine = _ENGINES[key]

        def one_update():
            row = update_statement(entry, engine, next(_COUNTERS))
            engine.insert(view, row)

        return one_update

    return factory
