"""Batched delta pipeline benchmark: one plan run per transaction vs
one per statement.

For each Figure 6 catalog view and each storage backend, an engine is
warmed to steady state and then timed on an N-statement transaction
(N single-tuple view INSERT buckets through ``execute_many``):

* ``batched``   — the default pipeline: statement buckets only derive
  and stage deltas; each view's incremental plan runs **once** over the
  coalesced delta and the commit is one backend batch;
* ``stmt``      — ``Engine(..., batch_deltas=False)``: the
  statement-at-a-time baseline, one plan evaluation (and, on SQLite,
  one TEMP staging round) per bucket.

All engines run through :mod:`repro.benchsuite.harness` — every
``(view, backend, mode)`` combination is one case in a single seeded
``run_cases`` call, so modes interleave through rotation-fair rounds
instead of one mode soaking up the machine's warm caches.  Each
point carries the per-transaction P50/P95/P99 alongside the medians.

Results are printed as a table and written to ``BENCH_batch.json``
next to this script so the perf trajectory is tracked across PRs.

Run:  python benchmarks/bench_batch.py [--quick] [--check] [--json PATH]

``--quick`` shrinks the base size and repeat count for CI smoke runs;
``--check`` exits nonzero if the batched pipeline is slower than
statement-at-a-time anywhere (the CI regression gate).
"""

import argparse
import json
import statistics
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / 'src'))

from repro.benchsuite.catalog import entry_by_name                # noqa: E402
from repro.benchsuite.harness import BenchCase, run_cases         # noqa: E402
from repro.benchsuite.workload import (FIG6_PROTOCOL,             # noqa: E402
                                       build_engine,
                                       update_statement)
from repro.rdbms.dml import Insert                                # noqa: E402

BACKENDS = ('memory', 'sqlite')

MODES = (('stmt', False), ('batched', True))


def _make_case(view: str, backend: str, mode: str, batch: bool,
               size: int, statements: int,
               counter: list[int]) -> BenchCase:
    entry = entry_by_name(view)

    def setup():
        engine = build_engine(entry, size, incremental=True,
                              strategy=entry.strategy(),
                              backend=backend)
        engine.batch_deltas = batch
        engine.rows(view)                       # materialise cache
        return {'engine': engine}

    def op(ctx, round_index):
        rows = []
        for _ in range(statements):
            counter[0] += 1
            rows.append(update_statement(entry, ctx['engine'],
                                         counter[0]))
        work = [(view, [Insert(row)]) for row in rows]
        started = time.perf_counter()
        ctx['engine'].execute_many(work)
        return time.perf_counter() - started

    def teardown(ctx):
        ctx['engine'].close()

    return BenchCase(name=f'{view}[{backend}]:{mode}', setup=setup,
                     op=op, teardown=teardown, warmup=1,
                     meta={'view': view, 'backend': backend,
                           'mode': mode})


def run_batch(views, size: int, statements: int, repeats: int,
              backends=BACKENDS, progress=None) -> list[dict]:
    counter = [10_000_000]                      # unique row ids
    cases = [_make_case(view, backend, mode, batch, size, statements,
                        counter)
             for view in views
             for backend in backends
             for mode, batch in MODES]
    results = {r.name: r
               for r in run_cases(cases, rounds=repeats, seed=7)}
    points = []
    for view in views:
        for backend in backends:
            stmt = results[f'{view}[{backend}]:stmt']
            batched = results[f'{view}[{backend}]:batched']
            stmt_s = statistics.median(stmt.samples)
            batched_s = statistics.median(batched.samples)
            point = {
                'view': view, 'backend': backend, 'base_size': size,
                'statements': statements,
                'stmt_seconds': stmt_s,
                'batched_seconds': batched_s,
                'speedup': stmt_s / batched_s,
                'stmt_latency': stmt.latency,
                'batched_latency': batched.latency,
            }
            points.append(point)
            if progress is not None:
                progress(point)
    return points


def format_batch(points) -> str:
    lines = [f'{"view":<18} {"backend":<8} {"n":>8} {"stmts":>6} '
             f'{"stmt (ms)":>10} {"batched (ms)":>13} {"speedup":>8}']
    lines.append('-' * len(lines[0]))
    for p in points:
        lines.append(
            f'{p["view"]:<18} {p["backend"]:<8} {p["base_size"]:>8} '
            f'{p["statements"]:>6} {p["stmt_seconds"] * 1e3:>10.2f} '
            f'{p["batched_seconds"] * 1e3:>13.2f} '
            f'{p["speedup"]:>7.1f}x')
    return '\n'.join(lines)


def _main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument('--size', type=int, default=20_000)
    parser.add_argument('--statements', type=int, default=100,
                        help='DML statements per measured transaction')
    parser.add_argument('--repeats', type=int, default=5)
    parser.add_argument('--views', nargs='+',
                        default=list(FIG6_PROTOCOL['views']))
    parser.add_argument('--quick', action='store_true',
                        help='small size/rounds: a CI smoke run')
    parser.add_argument('--check', action='store_true',
                        help='fail when batched execution is slower '
                             'than statement-at-a-time anywhere')
    parser.add_argument('--json', type=Path,
                        default=Path(__file__).resolve().parent /
                        'BENCH_batch.json')
    args = parser.parse_args(argv)
    size, repeats = args.size, args.repeats
    if args.quick:
        size, repeats = 2_000, 3
    points = run_batch(args.views, size, args.statements, repeats,
                       progress=lambda p: print(
                           f'  {p["view"]} [{p["backend"]}]: '
                           f'stmt {p["stmt_seconds"]:.4f}s, '
                           f'batched {p["batched_seconds"]:.4f}s '
                           f'({p["speedup"]:.1f}x)', file=sys.stderr))
    print(format_batch(points))
    payload = {
        'benchmark': 'batch', 'size': size, 'repeats': repeats,
        'statements': args.statements, 'results': points,
    }
    args.json.write_text(json.dumps(payload, indent=2) + '\n',
                         encoding='utf-8')
    print(f'wrote {args.json}')
    if args.check:
        slow = [p for p in points if p['speedup'] < 1.0]
        if slow:
            print('FAIL: batched pipeline slower than '
                  'statement-at-a-time for: '
                  + ', '.join(f'{p["view"]}[{p["backend"]}]'
                              for p in slow), file=sys.stderr)
            return 1
        print('check passed: batched >= statement-at-a-time everywhere')
    return 0


if __name__ == '__main__':
    raise SystemExit(_main())
