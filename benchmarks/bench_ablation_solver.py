"""Ablation: satisfiability-search strategies inside the validator.

The bounded solver (DESIGN.md §3, the Z3 substitute) combines canonical-
instance enumeration with randomized search.  This bench validates the
same strategy under three budgets to show where the verdicts come from:

* ``full``          — default budgets (canonical + random);
* ``canonical_only``— no random trials;
* ``reduced``       — the scaled-down quick budget used by ``--quick``.

All three must agree on the shipped (valid) strategy; the differences are
pure running time.

Run:  pytest benchmarks/bench_ablation_solver.py --benchmark-only
"""

import pytest

from repro.benchsuite.catalog import entry_by_name
from repro.core.validation import validate
from repro.fol.solver import SolverConfig

CONFIGS = {
    'full': SolverConfig(),
    'canonical_only': SolverConfig(random_trials=0),
    'reduced': SolverConfig().scaled_down(),
}


@pytest.mark.parametrize('budget', list(CONFIGS))
def test_validation_budget(benchmark, budget):
    strategy = entry_by_name('residents').strategy()
    config = CONFIGS[budget]
    report = benchmark.pedantic(
        lambda: validate(strategy, config=config), rounds=1, iterations=1)
    benchmark.extra_info['budget'] = budget
    assert report.valid
