"""Table 1 reproduction (§6.2.2): per-view validation time + compiled SQL.

Each benchmark runs Algorithm 1 on one catalog entry — the quantity the
paper reports in the "Validation Time (s)" column — and records the
compiled SQL size as the "Compiled SQL (Byte)" column.  The paper's
published numbers are attached to the benchmark's ``extra_info`` so the
JSON output carries paper-vs-measured side by side.

Run:  pytest benchmarks/bench_table1.py --benchmark-only
"""

import pytest

from repro.benchsuite.catalog import ALL_ENTRIES
from repro.core.validation import validate
from repro.sql.triggers import compile_strategy_to_sql

EXPRESSIBLE = [e for e in ALL_ENTRIES if e.expressible]


@pytest.mark.parametrize('entry', EXPRESSIBLE,
                         ids=lambda e: f'{e.id:02d}_{e.name}')
def test_validation_time(benchmark, entry):
    strategy = entry.strategy()

    report = benchmark.pedantic(lambda: validate(strategy), rounds=1,
                                iterations=1)
    assert report.valid, entry.name

    sql = compile_strategy_to_sql(strategy, report.view_definition)
    benchmark.extra_info['view'] = entry.name
    benchmark.extra_info['operators'] = entry.paper.operators
    benchmark.extra_info['constraints'] = entry.paper.constraints
    benchmark.extra_info['lvgn'] = report.fragment.lvgn
    benchmark.extra_info['lvgn_paper'] = entry.paper.lvgn
    benchmark.extra_info['program_loc'] = strategy.program_size()
    benchmark.extra_info['loc_paper'] = entry.paper.size_loc
    benchmark.extra_info['sql_bytes'] = len(sql.encode())
    benchmark.extra_info['sql_bytes_paper'] = entry.paper.sql_bytes
    benchmark.extra_info['validation_time_paper'] = \
        entry.paper.validation_time

    assert report.fragment.lvgn == entry.paper.lvgn


def test_emp_view_reported_inexpressible():
    """Row #23 of Table 1: the aggregation view has no NR-Datalog
    strategy; the paper leaves its cells empty and so do we."""
    from repro.benchsuite.catalog import entry_by_id
    from repro.errors import FragmentError
    entry = entry_by_id(23)
    assert not entry.expressible
    with pytest.raises(FragmentError):
        entry.strategy()
