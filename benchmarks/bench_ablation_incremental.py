"""Ablation: the two incrementalization paths (DESIGN.md §2).

For an LVGN strategy both constructions apply: the Lemma 5.2 shortcut
(substitute ``±v`` for the view literals) and the general Appendix-C
machinery (binarize + Figure-7 delta rules).  This bench compares

* the cost of *deriving* ∂put on each path, and
* the cost of *running* one update through each derived program,

quantifying what the shortcut buys beyond correctness.

Run:  pytest benchmarks/bench_ablation_incremental.py --benchmark-only
"""

import pytest

from repro.benchsuite.catalog import entry_by_name
from repro.core.incremental import (incrementalize_general,
                                    incrementalize_lvgn)
from repro.datalog.ast import delete_pred, insert_pred
from repro.datalog.evaluator import evaluate
from repro.relational.generators import random_database

VIEW = 'vw_brands'
SIZE = 20_000


def _setup():
    entry = entry_by_name(VIEW)
    strategy = entry.strategy()
    source = random_database(strategy.sources, entry.sizes(SIZE), seed=3,
                             column_pools=entry.column_pools)
    current = evaluate(strategy.expected_get, source)[VIEW]
    delta_plus = frozenset({(10_000_001, 'bench', 'domestic')})
    edb = dict(source.relations)
    edb[VIEW] = current
    edb[insert_pred(VIEW)] = delta_plus
    edb[delete_pred(VIEW)] = frozenset()
    return strategy, edb


@pytest.mark.parametrize('path', ['lvgn_shortcut', 'general_figure7'])
def test_derivation_cost(benchmark, path):
    entry = entry_by_name(VIEW)
    strategy = entry.strategy()
    derive = (incrementalize_lvgn if path == 'lvgn_shortcut'
              else incrementalize_general)
    program = benchmark(derive, strategy.putdelta, VIEW)
    benchmark.extra_info['rules'] = len(program.rules)


@pytest.mark.parametrize('path', ['lvgn_shortcut', 'general_figure7'])
def test_update_cost(benchmark, path):
    strategy, edb = _setup()
    derive = (incrementalize_lvgn if path == 'lvgn_shortcut'
              else incrementalize_general)
    program = derive(strategy.putdelta, VIEW)
    goals = tuple(program.delta_preds())

    def run():
        return evaluate(program, edb, goals=goals)

    output = benchmark.pedantic(run, rounds=5, iterations=1)
    assert output[insert_pred('brands_domestic')]
