"""Cross-backend benchmark: interpreted plans vs. compiled SQL on SQLite.

For each Figure 6 catalog view, both backends are measured end to end
through the public engine API (the full trigger pipeline per statement:
Algorithm 2 delta derivation, constraint check, ∂put evaluation,
commit):

* ``get``    — first materialisation of the view cache;
* ``update`` — steady-state single-tuple view INSERT (median, plus
  P50/P95/P99 from the shared harness's rotation-fair rounds).

Results are printed as a table and written to ``BENCH_backends.json``
next to this script so the perf trajectory is tracked across PRs.

Run:  python benchmarks/bench_backends.py [--quick] [--json PATH]

``--quick`` shrinks the base size and round count for CI smoke runs.
"""

import argparse
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / 'src'))

from repro.benchsuite.runner import (format_backends,      # noqa: E402
                                     run_backends)
from repro.benchsuite.workload import FIG6_PROTOCOL       # noqa: E402


def _main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument('--size', type=int, default=20_000)
    parser.add_argument('--repeats', type=int, default=7)
    parser.add_argument('--views', nargs='+',
                        default=list(FIG6_PROTOCOL['views']))
    parser.add_argument('--quick', action='store_true',
                        help='small size/rounds: a CI smoke run')
    parser.add_argument('--json', type=Path,
                        default=Path(__file__).resolve().parent /
                        'BENCH_backends.json')
    args = parser.parse_args(argv)
    size, repeats = args.size, args.repeats
    if args.quick:
        size, repeats = 2_000, 3
    points = run_backends(args.views, size, repeats=repeats)
    print(format_backends(points))
    payload = {
        'benchmark': 'backends', 'size': size, 'repeats': repeats,
        'results': [{'view': p.view, 'backend': p.backend,
                     'base_size': p.base_size,
                     'materialize_seconds': p.materialize_seconds,
                     'update_seconds': p.update_seconds,
                     'sql_fallbacks': p.sql_fallbacks,
                     'update_latency': p.update_latency}
                    for p in points],
    }
    args.json.write_text(json.dumps(payload, indent=2) + '\n',
                         encoding='utf-8')
    print(f'wrote {args.json}')
    return 0


if __name__ == '__main__':
    raise SystemExit(_main())
