"""Sharded engine benchmark: throughput vs shard count on a
key-partitionable workload.

The workload is the Figure-6a selection view (``luxuryitems``) over an
``items`` table of ``--size`` rows, range-partitioned on ``iid``.
Each measured transaction is ``--statements`` (default 100)
single-tuple view INSERT buckets whose keys all fall in one shard's
key range — the key-local access pattern sharding exists for (a tenant,
a region, a hot time window).  The single engine pays per-transaction
costs proportional to the *whole* relation (the staged-view overlay,
constraint staging); a shard pays them on ``1/N`` of the data, and the
untouched shards do no work at all.

Measured configurations: a plain single ``Engine`` (memory backend)
and ``ShardedEngine`` with 1, 2 and 4 memory shards (1-shard shows the
routing overhead in isolation).  Results are printed as a table and
written to ``BENCH_shard.json``.

Run:  python benchmarks/bench_shard.py [--quick] [--check] [--json PATH]

``--quick`` shrinks sizes for CI smoke runs; ``--check`` exits nonzero
if sharded(N=4) throughput falls below the single engine (the CI
regression gate; the tracked JSON shows the actual multiple, ≥2× on a
developer machine).
"""

import argparse
import json
import statistics
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / 'src'))

from repro.core.strategy import UpdateStrategy               # noqa: E402
from repro.rdbms.dml import Insert                           # noqa: E402
from repro.rdbms.engine import Engine                        # noqa: E402
from repro.rdbms.sharded import (RangePartitioner,           # noqa: E402
                                 ShardedEngine)
from repro.relational.schema import DatabaseSchema           # noqa: E402

SHARD_COUNTS = (1, 2, 4)

#: Key space per shard slot: shard i of N owns iids in
#: [i * SLOT, (i+1) * SLOT) under the range partitioner below.
SLOT = 10 ** 9


def _strategy() -> UpdateStrategy:
    sources = DatabaseSchema.build(
        items={'iid': 'int', 'iname': 'string', 'price': 'int'})
    return UpdateStrategy.parse('luxuryitems', sources, """
        ⊥ :- luxuryitems(I, N, P), not P > 1000.
        +items(I, N, P) :- luxuryitems(I, N, P), not items(I, N, P).
        expensive(I, N, P) :- items(I, N, P), P > 1000.
        -items(I, N, P) :- expensive(I, N, P), not luxuryitems(I, N, P).
    """, expected_get='luxuryitems(I, N, P) :- items(I, N, P), '
                      'P > 1000.')


def _base_rows(size: int, shards: int) -> list[tuple]:
    """``size`` rows spread evenly over the ``shards`` key ranges (all
    prices above the selection threshold, so |view| == |items|)."""
    rows = []
    per_shard = size // shards
    for shard in range(shards):
        base = shard * SLOT
        rows.extend((base + i, f'item_{shard}_{i}', 2000 + i % 500)
                    for i in range(per_shard))
    return rows


def _build_single(strategy, size: int, shards_in_data: int) -> Engine:
    engine = Engine(strategy.sources, backend='memory')
    engine.load('items', _base_rows(size, shards_in_data))
    engine.define_view(strategy, validate_first=False)
    engine.rows('luxuryitems')
    return engine


def _build_sharded(strategy, size: int, shards: int) -> ShardedEngine:
    partitioner = RangePartitioner([i * SLOT for i in range(1, shards)])
    engine = ShardedEngine(strategy.sources, partitioner=partitioner,
                           backends='memory',
                           shard_keys={'luxuryitems': 'iid',
                                       'items': 'iid'})
    engine.load('items', _base_rows(size, shards))
    engine.define_view(strategy, validate_first=False)
    engine.rows('luxuryitems')
    return engine


def _hot_range_transaction(counter: list[int], hot_shard: int,
                           statements: int) -> list:
    """One transaction of fresh single-tuple view INSERTs, all keyed
    inside ``hot_shard``'s range."""
    batches = []
    for _ in range(statements):
        counter[0] += 1
        iid = hot_shard * SLOT + SLOT // 2 + counter[0]
        batches.append(('luxuryitems',
                        [Insert((iid, f'fresh_{counter[0]}', 5000))]))
    return batches


def _throughput(engine, key_shards: int, statements: int,
                repeats: int, counter: list[int]) -> float:
    """Median statements/second over ``repeats`` hot-range
    transactions, rotating the hot shard, after one warmup."""
    engine.execute_many(_hot_range_transaction(counter, 0, statements))
    times = []
    for round_ in range(repeats):
        work = _hot_range_transaction(counter, round_ % key_shards,
                                      statements)
        started = time.perf_counter()
        engine.execute_many(work)
        times.append(time.perf_counter() - started)
    return statements / statistics.median(times)


def run_bench(size: int, statements: int, repeats: int,
              shard_counts=SHARD_COUNTS, progress=None) -> list[dict]:
    strategy = _strategy()
    max_shards = max(shard_counts)
    counter = [0]
    points = []

    single = _build_single(strategy, size, max_shards)
    single_tput = _throughput(single, max_shards, statements, repeats,
                              counter)
    points.append({'config': 'single', 'shards': 1, 'base_size': size,
                   'statements': statements,
                   'stmts_per_second': single_tput, 'speedup': 1.0})
    if progress:
        progress(points[-1])

    for shards in shard_counts:
        engine = _build_sharded(strategy, size, shards)
        tput = _throughput(engine, shards, statements, repeats, counter)
        points.append({'config': f'sharded-{shards}', 'shards': shards,
                       'base_size': size, 'statements': statements,
                       'stmts_per_second': tput,
                       'speedup': tput / single_tput})
        if progress:
            progress(points[-1])
    return points


def format_points(points) -> str:
    lines = [f'{"config":<12} {"shards":>6} {"n":>8} {"stmts":>6} '
             f'{"stmts/s":>10} {"vs single":>10}']
    lines.append('-' * len(lines[0]))
    for p in points:
        lines.append(
            f'{p["config"]:<12} {p["shards"]:>6} {p["base_size"]:>8} '
            f'{p["statements"]:>6} {p["stmts_per_second"]:>10.0f} '
            f'{p["speedup"]:>9.2f}x')
    return '\n'.join(lines)


def _main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument('--size', type=int, default=100_000,
                        help='total items rows across the key space')
    parser.add_argument('--statements', type=int, default=100,
                        help='DML statements per measured transaction')
    parser.add_argument('--repeats', type=int, default=8)
    parser.add_argument('--quick', action='store_true',
                        help='small size/rounds: a CI smoke run')
    parser.add_argument('--check', action='store_true',
                        help='fail when sharded(N=4) throughput is '
                             'below the single engine')
    parser.add_argument('--json', type=Path,
                        default=Path(__file__).resolve().parent /
                        'BENCH_shard.json')
    args = parser.parse_args(argv)
    size, repeats = args.size, args.repeats
    if args.quick:
        size, repeats = 20_000, 4
    points = run_bench(size, args.statements, repeats,
                       progress=lambda p: print(
                           f'  {p["config"]}: '
                           f'{p["stmts_per_second"]:.0f} stmts/s '
                           f'({p["speedup"]:.2f}x)', file=sys.stderr))
    print(format_points(points))
    payload = {
        'benchmark': 'shard', 'size': size, 'repeats': repeats,
        'statements': args.statements, 'results': points,
    }
    args.json.write_text(json.dumps(payload, indent=2) + '\n',
                         encoding='utf-8')
    print(f'wrote {args.json}')
    if args.check:
        four = next(p for p in points if p['shards'] == 4
                    and p['config'].startswith('sharded'))
        if four['speedup'] < 1.0:
            print(f'FAIL: sharded(4) is {four["speedup"]:.2f}x the '
                  f'single-engine throughput (expected >= 1.0)',
                  file=sys.stderr)
            return 1
        print(f'check passed: sharded(4) = {four["speedup"]:.2f}x '
              f'single-engine throughput')
    return 0


if __name__ == '__main__':
    raise SystemExit(_main())
