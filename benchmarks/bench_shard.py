"""Sharded engine benchmark: throughput vs shard count and worker
threads on a key-local workload.

The workload is the Figure-6a selection view (``luxuryitems``) over an
``items`` table of ``--size`` rows, range-partitioned on ``iid``.  Each
measured transaction is ``--statements`` (default 100) statements whose
keys all fall inside one shard's key range — the key-local access
pattern sharding exists for (a tenant, a region, a hot time window) —
mixing single-tuple view INSERTs with ``--keyed`` (default 8) by-key
UPDATE/DELETE statements.  The keyed statements are what gives sharding
its leverage: an unindexed ``WHERE iid = k`` is a scan over the whole
relation on a single engine, but routes to the owning shard — which
scans ``1/N`` of the data — under the sharded router.  (The insert-only
extreme is also reported for transparency: since the batched pipeline
coalesces it into one O(|Δ|) derivation, a single engine serves it at
memory speed and sharding is pure routing overhead there.)

Measured configurations: a plain single ``Engine`` (memory backend),
``ShardedEngine`` with 1, 2 and 4 memory shards (1-shard isolates the
routing overhead), and a ``--parallelism`` sweep at 4 shards (worker
threads 2 and 4).  On a multi-core host the parallel rows add the
thread-level fan-out of prepare/apply on top of the same routing; on a
single-core host they measure the pool's overhead (the gate allows a
small tolerance for it).  Results are printed as a table and written to
``BENCH_shard.json`` together with the host's CPU count.

All configurations run on the shared ``benchsuite.harness`` core:
engines are set up once, rounds interleave the configurations in
rotated order (no config systematically inherits a warm machine), and
every engine is closed by the harness teardown.

Run:  python benchmarks/bench_shard.py [--quick] [--check] [--json PATH]

``--quick`` shrinks sizes for CI smoke runs; ``--check`` exits nonzero
if sharded(N=4) throughput falls below the single engine, or if
parallel(4 shards, 4 workers) falls below 0.9× serial(4 shards) — the
CI regression gates; the tracked JSON shows the actual multiples.
"""

import argparse
import json
import os
import statistics
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / 'src'))

from repro.benchsuite.harness import BenchCase, run_cases    # noqa: E402
from repro.core.strategy import UpdateStrategy               # noqa: E402
from repro.rdbms.dml import Delete, Insert, Update           # noqa: E402
from repro.rdbms.engine import Engine                        # noqa: E402
from repro.rdbms.sharded import (RangePartitioner,           # noqa: E402
                                 ShardedEngine)
from repro.relational.schema import DatabaseSchema           # noqa: E402

SHARD_COUNTS = (1, 2, 4)
PARALLELISM_SWEEP = (2, 4)

#: Key space per shard slot: shard i of N owns iids in
#: [i * SLOT, (i+1) * SLOT) under the range partitioner below.
SLOT = 10 ** 9


def _strategy() -> UpdateStrategy:
    sources = DatabaseSchema.build(
        items={'iid': 'int', 'iname': 'string', 'price': 'int'})
    return UpdateStrategy.parse('luxuryitems', sources, """
        ⊥ :- luxuryitems(I, N, P), not P > 1000.
        +items(I, N, P) :- luxuryitems(I, N, P), not items(I, N, P).
        expensive(I, N, P) :- items(I, N, P), P > 1000.
        -items(I, N, P) :- expensive(I, N, P), not luxuryitems(I, N, P).
    """, expected_get='luxuryitems(I, N, P) :- items(I, N, P), '
                      'P > 1000.')


def _base_rows(size: int, shards: int) -> list[tuple]:
    """``size`` rows spread evenly over the ``shards`` key ranges (all
    prices above the selection threshold, so |view| == |items|)."""
    rows = []
    per_shard = size // shards
    for shard in range(shards):
        base = shard * SLOT
        rows.extend((base + i, f'item_{shard}_{i}', 2000 + i % 500)
                    for i in range(per_shard))
    return rows


def _build_single(strategy, size: int, shards_in_data: int) -> Engine:
    engine = Engine(strategy.sources, backend='memory')
    engine.load('items', _base_rows(size, shards_in_data))
    engine.define_view(strategy, validate_first=False)
    engine.rows('luxuryitems')
    return engine


def _build_sharded(strategy, size: int, shards: int,
                   parallelism: int = 1) -> ShardedEngine:
    partitioner = RangePartitioner([i * SLOT for i in range(1, shards)])
    engine = ShardedEngine(strategy.sources, partitioner=partitioner,
                           backends='memory',
                           shard_keys={'luxuryitems': 'iid',
                                       'items': 'iid'},
                           parallelism=parallelism)
    engine.load('items', _base_rows(size, shards))
    engine.define_view(strategy, validate_first=False)
    engine.rows('luxuryitems')
    return engine


def _hot_mix_transaction(counter: list[int], hot_shard: int,
                         statements: int, keyed: int) -> list:
    """One transaction keyed inside ``hot_shard``'s range: fresh
    single-tuple view INSERTs, interleaved with ``keyed`` by-key
    UPDATE/DELETE statements against rows inserted earlier in the same
    transaction (alternating, so the table size stays stable)."""
    batches = []
    recent: list[int] = []
    keyed_every = max(statements // keyed, 2) if keyed else 0
    for n in range(statements):
        counter[0] += 1
        serial = counter[0]
        if keyed and recent and n % keyed_every == keyed_every - 1:
            if (n // keyed_every) % 2:
                batches.append(('luxuryitems',
                                [Delete({'iid': recent.pop(0)})]))
            else:
                batches.append(('luxuryitems',
                                [Update({'iname': f'renamed_{serial}'},
                                        {'iid': recent[-1]})]))
        else:
            iid = hot_shard * SLOT + SLOT // 2 + serial
            recent.append(iid)
            batches.append(('luxuryitems',
                            [Insert((iid, f'fresh_{serial}', 5000))]))
    return batches


def _mix_case(name: str, build, key_shards: int, statements: int,
              keyed: int, *, shards: int, parallelism: int
              ) -> BenchCase:
    """One harness case: the engine plus its own key counter; each
    timed round runs one hot-range transaction (hot shard rotated by
    the round index; warmup rounds use the negative indices and the
    same counter, so keys never collide)."""
    def setup():
        return {'engine': build(), 'counter': [0]}

    def op(ctx, round_index):
        work = _hot_mix_transaction(ctx['counter'],
                                    round_index % key_shards,
                                    statements, keyed)
        ctx['engine'].execute_many(work)

    return BenchCase(name=name, setup=setup, op=op,
                     teardown=lambda ctx: ctx['engine'].close(),
                     warmup=1,
                     meta={'shards': shards,
                           'parallelism': parallelism})


def _case_points(results, *, size: int, statements: int,
                 keyed: int) -> list[dict]:
    """Harness results → the JSON point shape (throughput from the
    median round, the full latency summary from every round)."""
    points = []
    for result in results:
        tput = statements / statistics.median(result.wall)
        points.append({'config': result.name,
                       'shards': result.meta['shards'],
                       'parallelism': result.meta['parallelism'],
                       'base_size': size, 'statements': statements,
                       'keyed': keyed, 'stmts_per_second': tput,
                       'txn_latency': result.latency})
    baseline = points[0]['stmts_per_second']
    for point in points:
        point['speedup'] = point['stmts_per_second'] / baseline
    return points


def run_bench(size: int, statements: int, keyed: int, repeats: int,
              shard_counts=SHARD_COUNTS,
              parallelism_sweep=PARALLELISM_SWEEP,
              progress=None) -> list[dict]:
    strategy = _strategy()
    max_shards = max(shard_counts)
    cases = [_mix_case('single',
                       lambda: _build_single(strategy, size, max_shards),
                       max_shards, statements, keyed,
                       shards=1, parallelism=1)]
    for n in shard_counts:
        cases.append(_mix_case(
            f'sharded-{n}',
            lambda n=n: _build_sharded(strategy, size, n),
            n, statements, keyed, shards=n, parallelism=1))
    for workers in parallelism_sweep:
        cases.append(_mix_case(
            f'sharded-{max_shards}x{workers}',
            lambda w=workers: _build_sharded(strategy, size, max_shards,
                                             parallelism=w),
            max_shards, statements, keyed,
            shards=max_shards, parallelism=workers))
    results = run_cases(cases, rounds=repeats, seed=11,
                        progress=progress)
    return _case_points(results, size=size, statements=statements,
                        keyed=keyed)


def run_insert_only(size: int, statements: int, repeats: int) -> dict:
    """The insert-only extreme (informational): one coalesced O(|Δ|)
    bucket per transaction, where the single engine needs no help."""
    strategy = _strategy()
    cases = [_mix_case('single',
                       lambda: _build_single(strategy, size, 4),
                       4, statements, 0, shards=1, parallelism=1),
             _mix_case('sharded-4',
                       lambda: _build_sharded(strategy, size, 4),
                       4, statements, 0, shards=4, parallelism=1)]
    results = run_cases(cases, rounds=repeats, seed=13)
    single_tput, sharded_tput = (
        statements / statistics.median(result.wall)
        for result in results)
    return {'workload': 'insert-only', 'base_size': size,
            'statements': statements,
            'single_stmts_per_second': single_tput,
            'sharded4_stmts_per_second': sharded_tput,
            'sharded4_vs_single': sharded_tput / single_tput}


def format_points(points) -> str:
    lines = [f'{"config":<14} {"shards":>6} {"par":>4} {"n":>8} '
             f'{"stmts":>6} {"keyed":>6} {"stmts/s":>10} '
             f'{"vs single":>10} {"p50 ms":>8} {"p99 ms":>8}']
    lines.append('-' * len(lines[0]))
    for p in points:
        latency = p['txn_latency']
        lines.append(
            f'{p["config"]:<14} {p["shards"]:>6} {p["parallelism"]:>4} '
            f'{p["base_size"]:>8} {p["statements"]:>6} '
            f'{p["keyed"]:>6} {p["stmts_per_second"]:>10.0f} '
            f'{p["speedup"]:>9.2f}x {latency["p50_ms"]:>8.1f} '
            f'{latency["p99_ms"]:>8.1f}')
    return '\n'.join(lines)


def _main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument('--size', type=int, default=100_000,
                        help='total items rows across the key space')
    parser.add_argument('--statements', type=int, default=100,
                        help='DML statements per measured transaction')
    parser.add_argument('--keyed', type=int, default=8,
                        help='by-key UPDATE/DELETE statements per '
                             'transaction (the scan-bound share)')
    parser.add_argument('--repeats', type=int, default=7)
    parser.add_argument('--quick', action='store_true',
                        help='small size/rounds: a CI smoke run')
    parser.add_argument('--check', action='store_true',
                        help='fail when sharded(4) is below the single '
                             'engine or parallel(4x4) is below 0.9x '
                             'serial sharded(4)')
    parser.add_argument('--json', type=Path,
                        default=Path(__file__).resolve().parent /
                        'BENCH_shard.json')
    args = parser.parse_args(argv)
    size, repeats = args.size, args.repeats
    if args.quick:
        size, repeats = 20_000, 4
    points = run_bench(size, args.statements, args.keyed, repeats,
                       progress=lambda msg: print(f'  {msg}',
                                                  file=sys.stderr))
    insert_only = run_insert_only(size, args.statements, repeats)
    print(format_points(points))
    print(f'insert-only extreme: single '
          f'{insert_only["single_stmts_per_second"]:.0f} stmts/s, '
          f'sharded-4 {insert_only["sharded4_stmts_per_second"]:.0f} '
          f'({insert_only["sharded4_vs_single"]:.2f}x)')
    payload = {
        'benchmark': 'shard', 'size': size, 'repeats': repeats,
        'statements': args.statements, 'keyed': args.keyed,
        'cpu_count': os.cpu_count(),
        'results': points,
        'insert_only': insert_only,
    }
    args.json.write_text(json.dumps(payload, indent=2) + '\n',
                         encoding='utf-8')
    print(f'wrote {args.json}')
    if args.check:
        four = next(p for p in points if p['shards'] == 4
                    and p['parallelism'] == 1)
        failed = False
        if four['speedup'] < 1.0:
            print(f'FAIL: sharded(4) is {four["speedup"]:.2f}x the '
                  f'single-engine throughput (expected >= 1.0)',
                  file=sys.stderr)
            failed = True
        par = next((p for p in points if p['shards'] == 4
                    and p['parallelism'] == 4), None)
        if par is not None and par['stmts_per_second'] \
                < 0.9 * four['stmts_per_second']:
            print(f'FAIL: parallel(4x4) is '
                  f'{par["stmts_per_second"]:.0f} stmts/s vs serial '
                  f'{four["stmts_per_second"]:.0f} (allowed >= 0.9x)',
                  file=sys.stderr)
            failed = True
        if failed:
            return 1
        print(f'check passed: sharded(4) = {four["speedup"]:.2f}x '
              f'single engine'
              + (f', parallel(4x4) = {par["speedup"]:.2f}x'
                 if par is not None else ''))
    return 0


if __name__ == '__main__':
    raise SystemExit(_main())
