"""Peer-network benchmark: Dejima-style multi-peer data sharing.

Three claims, one JSON artifact (``BENCH_peer.json``):

1. **Propagation latency** — the time from committing a base write on
   one peer to the row being visible in the subscribed peer's shared
   view (delta shipping + the receiver's own putback), P50/P99, for a
   2-peer pair and a 3-peer full mesh (fan-out pays per link but the
   sender commits locally either way).

2. **Catch-up throughput after an outage** — a stalled link is
   quarantined while the sender keeps committing; after ``heal()`` the
   backlog drains from the sender's durable outbox (anti-entropy).
   Gate: the receiver applies backlog deltas at a rate comparable to
   the sender's original commit rate (both sides run the same putback
   machinery, so the ratio is hardware-independent).

3. **Link cost tracks |Δ|, not |DB|** — outbox bytes appended per
   transaction stay flat as the shared view grows 4×, because a link
   carries the coalesced view delta, never state.

Run:  python benchmarks/bench_peer.py [--quick] [--check] [--json P]

``--check`` is the CI smoke gate: every part converges bit-identically,
catch-up ≥ 0.3× the sender's commit rate, link bytes/txn flat within
1.5× across the size sweep.
"""

import argparse
import json
import os
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / 'src'))

from repro.benchsuite.harness import BenchCase, run_cases      # noqa: E402
from repro.core.strategy import UpdateStrategy                 # noqa: E402
from repro.rdbms import faults                                 # noqa: E402
from repro.rdbms.engine import Engine                          # noqa: E402
from repro.rdbms.peernet import PeerNetwork, converged         # noqa: E402
from repro.relational.schema import DatabaseSchema             # noqa: E402

VIEW = 'luxuryitems'


def _strategy() -> UpdateStrategy:
    sources = DatabaseSchema.build(
        items={'iid': 'int', 'iname': 'string', 'price': 'int'})
    return UpdateStrategy.parse(VIEW, sources, """
        ⊥ :- luxuryitems(I, N, P), not P > 1000.
        +items(I, N, P) :- luxuryitems(I, N, P), not items(I, N, P).
        expensive(I, N, P) :- items(I, N, P), P > 1000.
        -items(I, N, P) :- expensive(I, N, P), not luxuryitems(I, N, P).
    """, expected_get='luxuryitems(I, N, P) :- items(I, N, P), '
                      'P > 1000.')


def _base_rows(size: int) -> list[tuple]:
    return [(i, f'item_{i}', 2000 + i % 500) for i in range(size)]


def _factory(strategy, rows):
    """A peer engine factory; only the writer loads the base data —
    the peer's construction-time reconciliation publishes it as the
    initial shared-view delta."""
    def build(directory: Path) -> Engine:
        engine = Engine(strategy.sources,
                        wal=directory / 'engine.wal', wal_sync=False)
        if rows:
            engine.load('items', rows)
        engine.define_view(strategy, validate_first=False,
                           exist_ok=True)
        return engine
    return build


def _build_network(strategy, size: int, base: Path, peers: int,
                   tag: str) -> PeerNetwork:
    net = PeerNetwork(retry_backoff=0.001)
    rows = _base_rows(size)
    names = [f'{tag}{n}' for n in range(peers)]
    for index, name in enumerate(names):
        net.add_peer(name, _factory(strategy, rows if index == 0
                                    else None),
                     base / name, shares=(VIEW,))
    net.share(VIEW, names)
    net.settle()                 # ship the initial view state once
    return net


# -- part 1: propagation latency --------------------------------------

def _propagation_cases(strategy, size: int, base: Path, *,
                       writes: int) -> list[BenchCase]:
    def make_case(peers: int) -> BenchCase:
        name = f'{peers}-peer'

        def setup():
            net = _build_network(strategy, size, base / name, peers,
                                 f'p{peers}_')
            return {'net': net, 'next_key': size + 10}

        def op(ctx, round_index):
            net = ctx['net']
            writer = net.peers[f'p{peers}_0']
            latencies = []
            for _ in range(writes):
                key = ctx['next_key']
                ctx['next_key'] += 1
                t0 = time.perf_counter()
                writer.engine.insert('items', (key, f'w{key}', 5000))
                net.settle()     # commit -> shipped -> applied
                latencies.append(time.perf_counter() - t0)
            assert converged(net.peers.values(), VIEW)
            return latencies

        def teardown(ctx):
            ctx['net'].close()

        return BenchCase(name=name, setup=setup, op=op,
                         teardown=teardown, warmup=1,
                         meta={'peers': peers})
    return [make_case(n) for n in (2, 3)]


def run_propagation(size: int, *, rounds: int, writes: int,
                    progress=None) -> list[dict]:
    strategy = _strategy()
    with tempfile.TemporaryDirectory(prefix='repro-bench-peer-') as d:
        results = run_cases(
            _propagation_cases(strategy, size, Path(d), writes=writes),
            rounds=rounds, seed=7, progress=progress)
    points = []
    for result in results:
        seconds = sum(result.samples)
        points.append({
            'config': result.name, 'peers': result.meta['peers'],
            'base_size': size, 'rounds': len(result.wall),
            'writes_per_round': writes,
            'propagated_per_second': len(result.samples) / seconds,
            'propagation_latency': result.latency,
        })
    return points


# -- part 2: catch-up throughput after an outage ----------------------

def run_catch_up(size: int, *, backlog: int) -> dict:
    strategy = _strategy()
    with tempfile.TemporaryDirectory(prefix='repro-bench-peer-') as d:
        net = _build_network(strategy, size, Path(d), 2, 'c')
        try:
            writer = net.peers['c0']
            link = net.links[0]        # the only c0->c1 link
            plan = faults.FaultPlan()
            plan.stall_link(link='c0->c1', once=False)
            with plan.installed():
                key = size + 10
                t0 = time.perf_counter()
                for n in range(backlog):
                    writer.engine.insert('items',
                                         (key + n, f'o{key + n}', 5000))
                commit_seconds = time.perf_counter() - t0
                # Delivery attempts now fail until the link is
                # quarantined (the outage detected).
                deadline = time.monotonic() + 30
                while not link.quarantined:
                    net.pump()
                    time.sleep(0.002)
                    if time.monotonic() > deadline:
                        raise RuntimeError('link never quarantined')
            net.heal()
            t0 = time.perf_counter()
            drained = net.settle()
            catch_up_seconds = time.perf_counter() - t0
            assert drained and converged(net.peers.values(), VIEW)
            return {
                'base_size': size, 'backlog_txns': backlog,
                'quarantines': link.stats['quarantines'],
                'commit_txns_per_second': backlog / commit_seconds,
                'catch_up_deltas_per_second':
                    backlog / catch_up_seconds,
                'catch_up_vs_commit': commit_seconds / catch_up_seconds,
            }
        finally:
            net.close()


# -- part 3: link bytes per txn vs |DB| -------------------------------

def run_link_cost(sizes, *, txns: int, delta_rows: int = 4) -> list[dict]:
    strategy = _strategy()
    points = []
    for size in sizes:
        with tempfile.TemporaryDirectory(
                prefix='repro-bench-peer-') as d:
            net = _build_network(strategy, size, Path(d), 2, 's')
            try:
                writer = net.peers['s0']
                outbox = writer._outbox[VIEW]
                before = outbox.stats['bytes']
                key = size + 10
                for _ in range(txns):
                    rows = [(key + j, f'd{key + j}', 5000)
                            for j in range(delta_rows)]
                    key += delta_rows
                    with writer.engine.transaction() as txn:
                        for row in rows:
                            txn.insert('items', row)
                net.settle()
                assert converged(net.peers.values(), VIEW)
                appended = outbox.stats['bytes'] - before
                points.append({
                    'base_size': size, 'txns': txns,
                    'delta_rows_per_txn': delta_rows,
                    'link_bytes_per_txn': appended / txns,
                })
            finally:
                net.close()
    return points


def format_propagation(points) -> str:
    lines = [f'{"config":<8} {"peers":>6} {"prop/s":>8} {"p50 ms":>8} '
             f'{"p95 ms":>8} {"p99 ms":>8}']
    lines.append('-' * len(lines[0]))
    for p in points:
        latency = p['propagation_latency']
        lines.append(
            f'{p["config"]:<8} {p["peers"]:>6} '
            f'{p["propagated_per_second"]:>8.0f} '
            f'{latency["p50_ms"]:>8.3f} {latency["p95_ms"]:>8.3f} '
            f'{latency["p99_ms"]:>8.3f}')
    return '\n'.join(lines)


def format_cost(points) -> str:
    lines = [f'{"base size":>10} {"txns":>6} {"link bytes/txn":>15}']
    lines.append('-' * len(lines[0]))
    for p in points:
        lines.append(f'{p["base_size"]:>10} {p["txns"]:>6} '
                     f'{p["link_bytes_per_txn"]:>15.0f}')
    return '\n'.join(lines)


def _main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument('--size', type=int, default=20_000,
                        help='base items rows at the writing peer')
    parser.add_argument('--rounds', type=int, default=6,
                        help='timed harness rounds per configuration')
    parser.add_argument('--writes', type=int, default=8,
                        help='propagated writes per round')
    parser.add_argument('--backlog', type=int, default=200,
                        help='transactions committed during the outage')
    parser.add_argument('--quick', action='store_true',
                        help='small sizes: a CI smoke run')
    parser.add_argument('--check', action='store_true',
                        help='fail when catch-up falls below 0.3x the '
                             'commit rate or link bytes/txn are not '
                             'flat across the size sweep')
    parser.add_argument('--json', type=Path,
                        default=Path(__file__).resolve().parent /
                        'BENCH_peer.json')
    args = parser.parse_args(argv)
    size, rounds, backlog = args.size, args.rounds, args.backlog
    cost_sizes = [size // 2, size, size * 2]
    if args.quick:
        size, rounds, backlog = 5_000, 4, 120
        cost_sizes = [2_500, 5_000, 10_000]

    propagation = run_propagation(
        size, rounds=rounds, writes=args.writes,
        progress=lambda msg: print(f'  propagation: {msg}',
                                   file=sys.stderr))
    print(format_propagation(propagation))
    catch_up = run_catch_up(size, backlog=backlog)
    print(f'catch-up: drained {catch_up["backlog_txns"]} backlog '
          f'deltas at {catch_up["catch_up_vs_commit"]:.1f}x the '
          f'commit rate after {catch_up["quarantines"]} quarantine')
    cost_points = run_link_cost(cost_sizes, txns=60)
    print(format_cost(cost_points))

    per_txn = [p['link_bytes_per_txn'] for p in cost_points]
    flatness = max(per_txn) / min(per_txn)
    payload = {
        'benchmark': 'peer', 'size': size, 'rounds': rounds,
        'cpu_count': os.cpu_count(),
        'note': ('propagation = commit on one peer -> delta shipped '
                 '-> applied through the receiver\'s own putback; '
                 'catch_up_vs_commit compares the post-outage drain '
                 'rate to the sender\'s commit rate (same putback '
                 'machinery both sides, hardware-independent); '
                 'link_bytes_per_txn flat across a 4x sweep shows a '
                 'link carries O(|delta|), not O(|DB|)'),
        'propagation': propagation,
        'catch_up': catch_up,
        'link_cost': cost_points,
        'link_cost_flatness_max_over_min': flatness,
    }
    args.json.write_text(json.dumps(payload, indent=2) + '\n',
                         encoding='utf-8')
    print(f'wrote {args.json}')

    if args.check:
        failed = False
        if catch_up['catch_up_vs_commit'] < 0.3:
            print(f'FAIL: catch-up ran at '
                  f'{catch_up["catch_up_vs_commit"]:.2f}x the commit '
                  f'rate (needed >= 0.3x)', file=sys.stderr)
            failed = True
        if flatness > 1.5:
            print(f'FAIL: link bytes/txn varied {flatness:.2f}x '
                  f'across the base-size sweep (should be flat; '
                  f'needed <= 1.5x)', file=sys.stderr)
            failed = True
        if failed:
            return 1
        print(f'check passed: catch-up = '
              f'{catch_up["catch_up_vs_commit"]:.1f}x commit rate, '
              f'link cost flatness = {flatness:.2f}x')
    return 0


if __name__ == '__main__':
    raise SystemExit(_main())
