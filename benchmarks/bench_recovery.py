"""Crash-recovery benchmark: worker-restart MTTR and WAL replay.

Three claims, one JSON artifact (``BENCH_recovery.json``):

1. **Worker-restart MTTR** — SIGKILL one process-mode shard worker of
   a WAL-backed cluster, then time ``ProcessShard.restart()``: fork,
   re-open ``shard-<i>.wal``, replay the committed prefix, answer the
   first RPC.  The restarted shard's ``commit_lsn`` must equal its
   pre-kill value every time — recovery loses zero committed
   transactions (measured, not assumed).

2. **WAL-replay throughput** — a cold ``Engine(wal=path)`` open
   replays commit records through ``Backend.apply_deltas`` without
   running any ∂put/get plan, so replay sustains at least the
   primary's original commit rate (which paid derivation +
   constraint checks per transaction).

3. **Checkpoint compaction** — ``Engine.checkpoint()`` rewrites the
   log as per-base snapshot records, so a post-checkpoint restart
   replays O(|DB| rows) records instead of O(history): the replayed
   record count drops and must never exceed the uncheckpointed count.

Every timed phase runs through :mod:`repro.benchsuite.harness`: the
kill/restart cycle is one case (each round is one SIGKILL + restart),
and the cold opens of parts 2 and 3 are rotation-fair cases replaying
*copies* of the frozen log files, so all medians come with
P50/P95/P99 distributions.

Run:  python benchmarks/bench_recovery.py [--quick] [--check] [--json P]

``--check`` is the CI smoke gate: zero lost transactions across every
measured restart, replay ≥ 0.9× the original commit rate, and the
checkpointed restart replays fewer records than the uncheckpointed
one.
"""

import argparse
import json
import os
import shutil
import signal
import statistics
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / 'src'))

from repro.benchsuite.harness import BenchCase, run_cases      # noqa: E402
from repro.core.strategy import UpdateStrategy                 # noqa: E402
from repro.rdbms.dml import Insert                             # noqa: E402
from repro.rdbms.engine import Engine                          # noqa: E402
from repro.rdbms.wal import read_records                       # noqa: E402
from repro.rdbms.sharded import ShardedEngine                  # noqa: E402
from repro.relational.schema import DatabaseSchema             # noqa: E402

SHARD_KEYS = {'luxuryitems': 'iid', 'items': 'iid'}


def _strategy() -> UpdateStrategy:
    sources = DatabaseSchema.build(
        items={'iid': 'int', 'iname': 'string', 'price': 'int'})
    return UpdateStrategy.parse('luxuryitems', sources, """
        ⊥ :- luxuryitems(I, N, P), not P > 1000.
        +items(I, N, P) :- luxuryitems(I, N, P), not items(I, N, P).
        expensive(I, N, P) :- items(I, N, P), P > 1000.
        -items(I, N, P) :- expensive(I, N, P), not luxuryitems(I, N, P).
    """, expected_get='luxuryitems(I, N, P) :- items(I, N, P), '
                      'P > 1000.')


def _base_rows(size: int) -> list[tuple]:
    return [(i, f'item_{i}', 2000 + i % 500) for i in range(size)]


# -- part 1: worker-restart MTTR --------------------------------------

def run_worker_restart(size: int, *, txns: int, shards: int,
                       repeats: int) -> dict:
    """Kill shard 0's worker after ``txns`` committed transactions and
    time the restart (fork + WAL replay + first RPC): one harness
    round per kill/restart cycle over the same log."""
    strategy = _strategy()
    outcome: dict = {}
    with tempfile.TemporaryDirectory(prefix='repro-bench-rec-') as d:
        def setup():
            cluster = ShardedEngine(strategy.sources, shards=shards,
                                    shard_keys=SHARD_KEYS,
                                    execution='processes',
                                    wal_dir=Path(d) / 'cluster',
                                    wal_sync=False)
            cluster.load('items', _base_rows(size))
            cluster.define_view(strategy, validate_first=False)
            key = size + 10
            for _ in range(txns):
                cluster.execute_many(
                    [('items', [Insert((key, f'w{key}', 5000))])])
                key += 1
            victim = cluster.shards[0]
            return {'cluster': cluster, 'victim': victim,
                    'next_key': key, 'lost': 0,
                    'expected_lsn': victim.commit_lsn,
                    'expected_rows': victim.rows('items')}

        def op(ctx, round_index):
            victim = ctx['victim']
            os.kill(victim.process.pid, signal.SIGKILL)
            victim.process.join(10)
            t0 = time.perf_counter()
            victim.restart()
            recovered_lsn = victim.commit_lsn   # first RPC answered
            elapsed = time.perf_counter() - t0
            if recovered_lsn != ctx['expected_lsn'] \
                    or victim.rows('items') != ctx['expected_rows']:
                ctx['lost'] += 1
            return elapsed

        def teardown(ctx):
            try:
                # The cluster still commits after the last restart.
                key = ctx['next_key']
                ctx['cluster'].execute_many(
                    [('items', [Insert((key, f'w{key}', 5000))])])
                outcome['lost'] = ctx['lost']
                outcome['expected_lsn'] = ctx['expected_lsn']
            finally:
                ctx['cluster'].close()

        result = run_cases(
            [BenchCase(name='worker-restart', setup=setup, op=op,
                       teardown=teardown, warmup=1)],
            rounds=repeats, seed=7)[0]
    mttrs = result.samples
    return {'base_size': size, 'txns': txns, 'shards': shards,
            'repeats': repeats,
            'records_replayed': outcome['expected_lsn'],
            'lost_transactions': outcome['lost'],
            'mttr_ms_p50': statistics.median(mttrs) * 1000,
            'mttr_ms_max': max(mttrs) * 1000,
            'mttr_latency': result.latency}


# -- parts 2 & 3: cold-open cases over frozen log copies --------------

def _cold_open_case(name: str, strategy, frozen: Path,
                    scratch: Path) -> BenchCase:
    """One harness case: each round copies the frozen log and times a
    cold ``Engine(wal=copy)`` open (replay through apply_deltas).  The
    copy is outside the timed window; replaying a copy keeps the
    frozen log byte-identical across rounds (an open may truncate a
    torn tail in place)."""
    def op(_ctx, round_index):
        copy = scratch / f'{name}-{round_index}.wal'
        shutil.copyfile(frozen, copy)
        t0 = time.perf_counter()
        engine = Engine(strategy.sources, wal=copy, wal_sync=False)
        try:
            elapsed = time.perf_counter() - t0
        finally:
            engine.close()
        copy.unlink()
        return elapsed

    return BenchCase(name=name, setup=lambda: {}, op=op, warmup=1)


def _physical_records(path: Path) -> int:
    """Records actually in the file — what a restart replays.  (Not
    ``commit_lsn``: a checkpoint keeps LSNs monotonic across the
    compaction, so the LSN keeps counting while the file shrinks.)"""
    return sum(1 for _ in read_records(path))


def run_replay(size: int, *, txns: int, repeats: int = 5) -> dict:
    strategy = _strategy()
    with tempfile.TemporaryDirectory(prefix='repro-bench-rec-') as d:
        d = Path(d)
        path = d / 'primary.wal'
        engine = Engine(strategy.sources, wal=path, wal_sync=False)
        try:
            engine.load('items', _base_rows(size))
            engine.define_view(strategy, validate_first=False)
            engine.rows('luxuryitems')
        finally:
            engine.close()
        # Freeze the pre-transaction log (the bulk ``load`` +
        # ``define_view`` records every restart pays, which would
        # otherwise drown the per-commit replay rate).
        baseline_log = d / 'baseline.wal'
        shutil.copyfile(path, baseline_log)
        engine = Engine(strategy.sources, wal=path, wal_sync=False)
        try:
            key = size + 10
            t0 = time.perf_counter()
            for _ in range(txns):
                engine.insert('items', (key, f'r{key}', 5000))
                key += 1
            commit_seconds = time.perf_counter() - t0
            final_lsn = engine.commit_lsn
            reference = frozenset(engine.rows('items'))
        finally:
            engine.close()
        results = {r.name: r for r in run_cases(
            [_cold_open_case('baseline-open', strategy, baseline_log,
                             d),
             _cold_open_case('full-open', strategy, path, d)],
            rounds=repeats, seed=7)}
        check = Engine(strategy.sources, wal=path, wal_sync=False)
        try:
            recovered_lsn = check.commit_lsn
            assert recovered_lsn == final_lsn
            assert frozenset(check.rows('items')) == reference
        finally:
            check.close()
    baseline_seconds = statistics.median(
        results['baseline-open'].samples)
    full_seconds = statistics.median(results['full-open'].samples)
    replay_seconds = max(full_seconds - baseline_seconds, 1e-9)
    return {'base_size': size, 'txns': txns,
            'records_replayed': final_lsn,
            'baseline_open_ms': baseline_seconds * 1000,
            'full_open_ms': full_seconds * 1000,
            'baseline_open_latency': results['baseline-open'].latency,
            'full_open_latency': results['full-open'].latency,
            'commit_txns_per_second': txns / commit_seconds,
            'replay_records_per_second': txns / replay_seconds,
            'replay_vs_commit': commit_seconds / replay_seconds}


def run_checkpoint(size: int, *, txns: int, repeats: int = 5) -> dict:
    strategy = _strategy()
    with tempfile.TemporaryDirectory(prefix='repro-bench-rec-') as d:
        d = Path(d)
        path = d / 'primary.wal'
        engine = Engine(strategy.sources, wal=path, wal_sync=False)
        try:
            engine.load('items', _base_rows(size))
            engine.define_view(strategy, validate_first=False)
            key = size + 10
            for _ in range(txns):
                engine.insert('items', (key, f'c{key}', 5000))
                key += 1
            reference = frozenset(engine.rows('items'))
        finally:
            engine.close()
        before_log = d / 'before.wal'
        shutil.copyfile(path, before_log)
        before_records = _physical_records(path)
        compactor = Engine(strategy.sources, wal=path, wal_sync=False)
        try:
            compactor.checkpoint()
        finally:
            compactor.close()
        after_records = _physical_records(path)
        results = {r.name: r for r in run_cases(
            [_cold_open_case('pre-checkpoint-open', strategy,
                             before_log, d),
             _cold_open_case('post-checkpoint-open', strategy, path,
                             d)],
            rounds=repeats, seed=7)}
        check = Engine(strategy.sources, wal=path, wal_sync=False)
        try:
            assert frozenset(check.rows('items')) == reference
        finally:
            check.close()
    before = results['pre-checkpoint-open']
    after = results['post-checkpoint-open']
    return {'base_size': size, 'txns': txns,
            'records_before_checkpoint': before_records,
            'records_after_checkpoint': after_records,
            'restart_ms_before': statistics.median(before.samples)
            * 1000,
            'restart_ms_after': statistics.median(after.samples)
            * 1000,
            'restart_before_latency': before.latency,
            'restart_after_latency': after.latency}


def _main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument('--size', type=int, default=20_000,
                        help='base items rows')
    parser.add_argument('--txns', type=int, default=400,
                        help='committed transactions before the fault')
    parser.add_argument('--shards', type=int, default=3)
    parser.add_argument('--repeats', type=int, default=5,
                        help='kill/restart cycles for the MTTR median')
    parser.add_argument('--quick', action='store_true',
                        help='small sizes: a CI smoke run')
    parser.add_argument('--check', action='store_true',
                        help='fail on any lost transaction, replay '
                             'below 0.9x the commit rate, or a '
                             'checkpoint that does not shrink replay')
    parser.add_argument('--json', type=Path,
                        default=Path(__file__).resolve().parent /
                        'BENCH_recovery.json')
    args = parser.parse_args(argv)
    size, txns, repeats = args.size, args.txns, args.repeats
    if args.quick:
        size, txns, repeats = 5_000, 120, 3

    restart = run_worker_restart(size, txns=txns, shards=args.shards,
                                 repeats=repeats)
    print(f'worker restart: MTTR p50 {restart["mttr_ms_p50"]:.1f} ms '
          f'(max {restart["mttr_ms_max"]:.1f} ms) over '
          f'{restart["records_replayed"]} replayed records, '
          f'{restart["lost_transactions"]} lost transactions')
    replay = run_replay(size, txns=txns, repeats=repeats)
    print(f'wal replay: {replay["replay_records_per_second"]:.0f} '
          f'records/s = {replay["replay_vs_commit"]:.1f}x the '
          f'original commit rate')
    checkpoint = run_checkpoint(size, txns=txns, repeats=repeats)
    print(f'checkpoint: restart replays '
          f'{checkpoint["records_after_checkpoint"]} records instead '
          f'of {checkpoint["records_before_checkpoint"]} '
          f'({checkpoint["restart_ms_after"]:.1f} ms vs '
          f'{checkpoint["restart_ms_before"]:.1f} ms)')

    payload = {
        'benchmark': 'recovery', 'size': size, 'txns': txns,
        'cpu_count': os.cpu_count(),
        'note': ('MTTR times ProcessShard.restart(): fork + WAL '
                 'replay + first RPC, one harness round per SIGKILL '
                 'of the same shard; commit_lsn and rows must match '
                 'the pre-kill shard exactly (zero lost '
                 'transactions).  Replay applies logged deltas '
                 'without re-running any derivation plan, so it '
                 'sustains the original commit rate; checkpointing '
                 'collapses history into per-base snapshot records '
                 'so restart cost tracks |DB|, not |history|.  Cold '
                 'opens replay fresh copies of frozen logs, '
                 'rotation-fair, medians with P50/P95/P99'),
        'worker_restart': restart,
        'wal_replay': replay,
        'checkpoint': checkpoint,
    }
    args.json.write_text(json.dumps(payload, indent=2) + '\n',
                         encoding='utf-8')
    print(f'wrote {args.json}')

    if args.check:
        failed = False
        if restart['lost_transactions']:
            print(f'FAIL: {restart["lost_transactions"]} restart(s) '
                  f'lost committed transactions', file=sys.stderr)
            failed = True
        if replay['replay_vs_commit'] < 0.9:
            print(f'FAIL: WAL replay at '
                  f'{replay["replay_vs_commit"]:.2f}x did not reach '
                  f'0.9x the commit rate', file=sys.stderr)
            failed = True
        if checkpoint['records_after_checkpoint'] \
                >= checkpoint['records_before_checkpoint']:
            print('FAIL: checkpoint did not shrink the replayed '
                  'record count', file=sys.stderr)
            failed = True
        if failed:
            return 1
        print('check passed: zero lost transactions, replay '
              f'{replay["replay_vs_commit"]:.1f}x commit rate, '
              f'checkpoint shrank replay to '
              f'{checkpoint["records_after_checkpoint"]} records')
    return 0


if __name__ == '__main__':
    raise SystemExit(_main())
