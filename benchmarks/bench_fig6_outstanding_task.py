"""Figure 6c reproduction: ``outstanding_task`` (Projection + semijoin)
view updating time.

Original strategy vs incrementalized strategy against base-table size.
The paper sweeps up to 3×10⁶ rows on PostgreSQL; the pure-Python sweep
uses smaller sizes — the claim under reproduction is the *shape*:
original grows linearly, incremental stays flat.

Run:  pytest benchmarks/bench_fig6_outstanding_task.py --benchmark-only
"""

import pytest

VIEW = 'outstanding_task'
SIZES = (10_000, 50_000, 150_000)


@pytest.mark.parametrize('size', SIZES)
def test_original(benchmark, fig6_engine, size):
    one_update = fig6_engine(VIEW, size, incremental=False)
    benchmark.extra_info.update(view=VIEW, size=size, mode='original')
    benchmark.pedantic(one_update, rounds=3, iterations=1)


@pytest.mark.parametrize('size', SIZES)
def test_incremental(benchmark, fig6_engine, size):
    one_update = fig6_engine(VIEW, size, incremental=True)
    benchmark.extra_info.update(view=VIEW, size=size, mode='incremental')
    benchmark.pedantic(one_update, rounds=3, iterations=1)
