"""Replication benchmark: delta-shipped read replicas.

Three claims, one JSON artifact (``BENCH_replica.json``):

1. **Read scaling** — a read-heavy mix (each write followed by
   ``--reads-per-write`` ``get``\\ s of the ``luxuryitems`` view)
   against a primary alone vs the same primary with 1 and 2 replicas
   behind a ``ReplicaSet`` (round-robin, bounded staleness
   ``--max-lag``).  Every direct base write invalidates the view
   cache, so a primary-only deployment rebuilds the materialisation
   on the first read after every write; replicas serve reads at their
   applied LSN and re-materialise only when the staleness bound
   forces a catch-up — the rebuild amortises over ``max_lag`` logged
   records instead of recurring per write.  (That is also why the
   win survives a 1-core host: it is algorithmic, not parallelism.)

2. **Replication cost tracks |Δ|, not |DB|** — the WAL bytes appended
   per transaction stay flat as the base table grows 4×, because the
   log carries the coalesced *delta*, never state.

3. **O(|Δ|) catch-up** — a cold replica replays the primary's whole
   history through ``Backend.apply_deltas`` (no ∂put/get plan runs)
   at ≥ the rate the primary originally committed it; the replica
   skips derivation, so catch-up is strictly cheaper than primary
   apply.

Run:  python benchmarks/bench_replica.py [--quick] [--check] [--json P]

``--check`` is the CI smoke gate: 2-replica read throughput ≥ 1.3×
primary-only on the read-heavy mix, and replica catch-up ≥ 0.9× the
primary's apply rate.
"""

import argparse
import json
import os
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / 'src'))

from repro.benchsuite.harness import BenchCase, run_cases      # noqa: E402
from repro.core.strategy import UpdateStrategy                 # noqa: E402
from repro.rdbms.engine import Engine                          # noqa: E402
from repro.rdbms.replica import ReplicaEngine, ReplicaSet      # noqa: E402
from repro.relational.schema import DatabaseSchema             # noqa: E402


def _strategy() -> UpdateStrategy:
    sources = DatabaseSchema.build(
        items={'iid': 'int', 'iname': 'string', 'price': 'int'})
    return UpdateStrategy.parse('luxuryitems', sources, """
        ⊥ :- luxuryitems(I, N, P), not P > 1000.
        +items(I, N, P) :- luxuryitems(I, N, P), not items(I, N, P).
        expensive(I, N, P) :- items(I, N, P), P > 1000.
        -items(I, N, P) :- expensive(I, N, P), not luxuryitems(I, N, P).
    """, expected_get='luxuryitems(I, N, P) :- items(I, N, P), '
                      'P > 1000.')


def _base_rows(size: int) -> list[tuple]:
    return [(i, f'item_{i}', 2000 + i % 500) for i in range(size)]


def _build_primary(strategy, size: int, wal_dir: str,
                   tag: str) -> Engine:
    engine = Engine(strategy.sources, backend='memory',
                    wal=Path(wal_dir) / f'{tag}.wal', wal_sync=False)
    engine.load('items', _base_rows(size))
    engine.define_view(strategy, validate_first=False)
    engine.rows('luxuryitems')
    return engine


# -- part 1: read throughput vs replica count -------------------------

def _read_mix_cases(strategy, size: int, wal_dir: str, *,
                    writes: int, reads_per_write: int,
                    max_lag: int) -> list[BenchCase]:
    def make_case(replicas: int) -> BenchCase:
        name = 'primary-only' if replicas == 0 \
            else f'replica-{replicas}'

        def setup():
            primary = _build_primary(strategy, size, wal_dir,
                                     name.replace('-', '_'))
            replica_set = ReplicaSet(
                primary,
                [ReplicaEngine(strategy.sources, primary.wal)
                 for _ in range(replicas)],
                policy='round-robin', max_lag=max_lag)
            replica_set.catch_up()
            return {'primary': primary, 'router': replica_set,
                    'next_key': size + 10}

        def op(ctx, round_index):
            primary, router = ctx['primary'], ctx['router']
            read_latencies = []
            for _ in range(writes):
                key = ctx['next_key']
                ctx['next_key'] += 1
                # A direct base write: invalidates the view cache on
                # whoever applies it (writes stay on the primary).
                primary.insert('items', (key, f'w{key}', 5000))
                for _ in range(reads_per_write):
                    t0 = time.perf_counter()
                    router.read('luxuryitems')
                    read_latencies.append(time.perf_counter() - t0)
            return read_latencies

        def teardown(ctx):
            ctx['router'].close()
            ctx['primary'].close()

        return BenchCase(name=name, setup=setup, op=op,
                         teardown=teardown, warmup=1,
                         meta={'replicas': replicas})
    return [make_case(n) for n in (0, 1, 2)]


def run_read_scaling(size: int, *, rounds: int, writes: int,
                     reads_per_write: int, max_lag: int,
                     progress=None) -> list[dict]:
    strategy = _strategy()
    with tempfile.TemporaryDirectory(prefix='repro-bench-wal-') as d:
        results = run_cases(
            _read_mix_cases(strategy, size, d, writes=writes,
                            reads_per_write=reads_per_write,
                            max_lag=max_lag),
            rounds=rounds, seed=7, progress=progress)
    points = []
    for result in results:
        reads = len(result.samples)
        read_seconds = sum(result.samples)
        points.append({
            'config': result.name,
            'replicas': result.meta['replicas'],
            'base_size': size, 'rounds': len(result.wall),
            'writes_per_round': writes,
            'reads_per_write': reads_per_write, 'max_lag': max_lag,
            'reads_per_second': reads / read_seconds,
            'read_latency': result.latency,
        })
    baseline = points[0]['reads_per_second']
    for point in points:
        point['speedup'] = point['reads_per_second'] / baseline
    return points


# -- part 2: replication bytes per txn vs |DB| ------------------------

def run_replication_cost(sizes, *, txns: int,
                         delta_rows: int = 4) -> list[dict]:
    strategy = _strategy()
    points = []
    for size in sizes:
        with tempfile.TemporaryDirectory(
                prefix='repro-bench-wal-') as d:
            engine = _build_primary(strategy, size, d, 'cost')
            try:
                before = dict(engine.wal.stats)
                key = size + 10
                for _ in range(txns):
                    rows = [(key + j, f'd{key + j}', 5000)
                            for j in range(delta_rows)]
                    key += delta_rows
                    with engine.transaction() as txn:
                        for row in rows:
                            txn.insert('items', row)
                appended = engine.wal.stats['bytes'] - before['bytes']
                points.append({
                    'base_size': size, 'txns': txns,
                    'delta_rows_per_txn': delta_rows,
                    'wal_bytes_per_txn': appended / txns,
                })
            finally:
                engine.close()
    return points


# -- part 3: catch-up rate vs primary apply rate ----------------------

def run_catch_up(size: int, *, txns: int,
                 delta_rows: int = 4) -> dict:
    strategy = _strategy()
    with tempfile.TemporaryDirectory(prefix='repro-bench-wal-') as d:
        engine = _build_primary(strategy, size, d, 'catchup')
        try:
            # Sync the replica to the pre-transaction LSN first, so
            # both sides are then timed over the SAME work: the
            # primary derives + applies `txns` transactions, the
            # replica replays exactly those commit records.
            replica = ReplicaEngine(strategy.sources, engine.wal)
            try:
                replica.catch_up()
                key = size + 10
                batches = []
                for _ in range(txns):
                    batches.append([(key + j, f'c{key + j}', 5000)
                                    for j in range(delta_rows)])
                    key += delta_rows
                t0 = time.perf_counter()
                for rows in batches:
                    with engine.transaction() as txn:
                        for row in rows:
                            txn.insert('items', row)
                primary_seconds = time.perf_counter() - t0
                t0 = time.perf_counter()
                applied = replica.catch_up()
                catch_up_seconds = time.perf_counter() - t0
                assert applied == txns
                assert frozenset(replica.rows('items')) \
                    == frozenset(engine.rows('items'))
            finally:
                replica.close()
        finally:
            engine.close()
    # Catch-up is pure delta application (no ∂put derivation, no
    # constraint checks) — strictly less work per transaction than
    # the primary's commit path.
    return {'base_size': size, 'txns': txns,
            'records_replayed': applied,
            'primary_txns_per_second': txns / primary_seconds,
            'catch_up_txns_per_second': txns / catch_up_seconds,
            'catch_up_vs_primary': primary_seconds / catch_up_seconds}


def format_read_points(points) -> str:
    lines = [f'{"config":<14} {"replicas":>8} {"reads/s":>10} '
             f'{"speedup":>8} {"p50 ms":>8} {"p95 ms":>8} '
             f'{"p99 ms":>8}']
    lines.append('-' * len(lines[0]))
    for p in points:
        latency = p['read_latency']
        lines.append(
            f'{p["config"]:<14} {p["replicas"]:>8} '
            f'{p["reads_per_second"]:>10.0f} {p["speedup"]:>7.2f}x '
            f'{latency["p50_ms"]:>8.3f} {latency["p95_ms"]:>8.3f} '
            f'{latency["p99_ms"]:>8.3f}')
    return '\n'.join(lines)


def format_cost_points(points) -> str:
    lines = [f'{"base size":>10} {"txns":>6} {"bytes/txn":>10}']
    lines.append('-' * len(lines[0]))
    for p in points:
        lines.append(f'{p["base_size"]:>10} {p["txns"]:>6} '
                     f'{p["wal_bytes_per_txn"]:>10.0f}')
    return '\n'.join(lines)


def _main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument('--size', type=int, default=20_000,
                        help='base items rows for the read mix')
    parser.add_argument('--rounds', type=int, default=6,
                        help='timed harness rounds per configuration')
    parser.add_argument('--writes', type=int, default=8,
                        help='write transactions per round')
    parser.add_argument('--reads-per-write', type=int, default=6)
    parser.add_argument('--max-lag', type=int, default=24,
                        help='bounded-staleness catch-up threshold '
                             '(logged records) for replica reads')
    parser.add_argument('--txns', type=int, default=200,
                        help='transactions for the cost/catch-up parts')
    parser.add_argument('--quick', action='store_true',
                        help='small sizes: a CI smoke run')
    parser.add_argument('--check', action='store_true',
                        help='fail when 2-replica read throughput '
                             'falls below 1.3x primary-only, or '
                             'catch-up below 0.9x the primary apply '
                             'rate')
    parser.add_argument('--json', type=Path,
                        default=Path(__file__).resolve().parent /
                        'BENCH_replica.json')
    args = parser.parse_args(argv)
    size, rounds, txns = args.size, args.rounds, args.txns
    cost_sizes = [size // 2, size, size * 2]
    if args.quick:
        size, rounds, txns = 10_000, 4, 120
        cost_sizes = [5_000, 10_000, 20_000]

    read_points = run_read_scaling(
        size, rounds=rounds, writes=args.writes,
        reads_per_write=args.reads_per_write, max_lag=args.max_lag,
        progress=lambda msg: print(f'  read-mix: {msg}',
                                   file=sys.stderr))
    print(format_read_points(read_points))
    cost_points = run_replication_cost(cost_sizes, txns=txns)
    print(format_cost_points(cost_points))
    catch_up = run_catch_up(size, txns=txns)
    print(f'catch-up: replica replayed {catch_up["records_replayed"]} '
          f'records at {catch_up["catch_up_vs_primary"]:.1f}x the '
          f'primary apply rate')

    by_config = {p['config']: p for p in read_points}
    per_txn = [p['wal_bytes_per_txn'] for p in cost_points]
    cost_flatness = max(per_txn) / min(per_txn)
    payload = {
        'benchmark': 'replica', 'size': size, 'rounds': rounds,
        'cpu_count': os.cpu_count(),
        'note': ('replicas serve reads at their applied LSN with '
                 'bounded staleness (max_lag); every base write '
                 'invalidates the view cache, so primary-only reads '
                 'pay a re-materialisation per write while replicas '
                 'amortise it across max_lag logged records — an '
                 'algorithmic win, valid on a 1-core host.  '
                 'wal_bytes_per_txn flat across a 4x base-size sweep '
                 'shows the log carries O(|delta|), not O(|DB|)'),
        'read_scaling': read_points,
        'replication_cost': cost_points,
        'cost_flatness_max_over_min': cost_flatness,
        'catch_up': catch_up,
    }
    args.json.write_text(json.dumps(payload, indent=2) + '\n',
                         encoding='utf-8')
    print(f'wrote {args.json}')

    if args.check:
        failed = False
        two = by_config['replica-2']['reads_per_second']
        solo = by_config['primary-only']['reads_per_second']
        if two < 1.3 * solo:
            print(f'FAIL: 2-replica reads {two:.0f}/s did not reach '
                  f'1.3x primary-only {solo:.0f}/s',
                  file=sys.stderr)
            failed = True
        if catch_up['catch_up_vs_primary'] < 0.9:
            print(f'FAIL: catch-up ran at '
                  f'{catch_up["catch_up_vs_primary"]:.2f}x the '
                  f'primary apply rate (needed >= 0.9x)',
                  file=sys.stderr)
            failed = True
        if cost_flatness > 1.5:
            print(f'FAIL: wal bytes/txn varied '
                  f'{cost_flatness:.2f}x across the base-size sweep '
                  f'(should be flat; needed <= 1.5x)',
                  file=sys.stderr)
            failed = True
        if failed:
            return 1
        print(f'check passed: 2-replica reads = {two / solo:.2f}x '
              f'primary-only, catch-up = '
              f'{catch_up["catch_up_vs_primary"]:.1f}x primary '
              f'apply, cost flatness = {cost_flatness:.2f}x')
    return 0


if __name__ == '__main__':
    raise SystemExit(_main())
