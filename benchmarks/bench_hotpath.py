"""Evaluator hot-path micro-benchmark: sealed vs generic rule execution.

The executor has two tiers (see ``repro/datalog/evaluator.py``): the
*generic* interpreter walks a compiled rule's step tuple with a
recursive cursor, and the *sealed* tier generates one flat Python
function per rule — slots become locals, binding masks and key
templates are inlined, the per-step dispatch disappears.  Every
per-transaction ∂put run of the RDBMS engine sits on this path, once
per shard worker under the parallel sharded engine, so the win
compounds across threads.

This benchmark pins the sealed tier's advantage on three
representative rule shapes:

* ``delta-loop`` — the incremental putback shape: scan a small delta,
  probe a large relation membership (the §5 steady state);
* ``join-filter`` — an indexed join with comparison filters and an
  intermediate predicate probed top-down (the interpreter probe loop);
* ``constraint`` — a ⊥-witness query under ``first_witness`` early
  exit.

Run:  python benchmarks/bench_hotpath.py [--rounds N] [--check]

``--check`` exits nonzero unless the sealed tier is >= 1.3x the
generic interpreter on every shape (the CI gate; the tracked
``BENCH_hotpath.json`` shows the actual multiples, typically 2-4x).
"""

import argparse
import json
import statistics
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / 'src'))

from repro.datalog import evaluator as ev                    # noqa: E402
from repro.datalog.parser import parse_program               # noqa: E402
from repro.datalog.plan import compile_program               # noqa: E402

CHECK_FLOOR = 1.3


def _shapes(scale: int):
    """(name, program, edb, goals, first_witness) benchmark cases."""
    items = frozenset((i, f'n{i}', 500 + i % 3000)
                      for i in range(scale))
    delta = frozenset((10 ** 6 + i, f'f{i}', 5000) for i in range(200))
    removed = frozenset(list(items)[: scale // 100])

    delta_loop = parse_program("""
        +items(I, N, P) :- +luxuryitems(I, N, P), not items(I, N, P).
        -items(I, N, P) :- items(I, N, P), P > 1000,
                           -luxuryitems(I, N, P).
    """)
    join_filter = parse_program("""
        aux(I, P) :- items(I, N, P), P > 1500.
        hot(I, P) :- aux(I, P), P > 2500, not -luxuryitems(I, _, _).
        pick(I) :- +luxuryitems(I, N, P), hot(I, Q), Q < P.
    """)
    constraint = parse_program("""
        ⊥ :- +luxuryitems(I, N, P), not P > 1000.
        ⊥ :- +luxuryitems(I, N, P), items(I, N, P).
    """)
    edb = {'items': items, '+luxuryitems': delta,
           '-luxuryitems': removed}
    return [
        ('delta-loop', delta_loop, edb, ('+items', '-items'), False),
        ('join-filter', join_filter, edb, ('pick',), False),
        ('constraint', constraint, edb, None, True),
    ]


def _run_once(plan, edb, goals, first_witness):
    if first_witness:
        plan.constraint_violations(edb, first_witness=True)
    else:
        plan.evaluate(edb, goals=goals)


def _time_tier(plan, edb, goals, first_witness, rounds, inner) -> float:
    times = []
    for _ in range(rounds):
        started = time.perf_counter()
        for _ in range(inner):
            _run_once(plan, edb, goals, first_witness)
        times.append(time.perf_counter() - started)
    return statistics.median(times) / inner


def run_bench(scale: int, rounds: int, inner: int) -> list[dict]:
    points = []
    for name, program, edb, goals, first_witness in _shapes(scale):
        plan = compile_program(program, cache=False)
        for _ in range(3):                      # warm + seal
            _run_once(plan, edb, goals, first_witness)
        sealed = _time_tier(plan, edb, goals, first_witness, rounds,
                            inner)
        ev._SEALING = False
        try:
            generic = _time_tier(plan, edb, goals, first_witness,
                                 rounds, inner)
        finally:
            ev._SEALING = True
        points.append({'shape': name,
                       'generic_us': generic * 1e6,
                       'sealed_us': sealed * 1e6,
                       'speedup': generic / sealed})
    return points


def _main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument('--scale', type=int, default=20_000,
                        help='rows in the large scanned relation')
    parser.add_argument('--rounds', type=int, default=7)
    parser.add_argument('--inner', type=int, default=30,
                        help='evaluations per timed round')
    parser.add_argument('--check', action='store_true',
                        help=f'fail when any shape is below '
                             f'{CHECK_FLOOR}x')
    parser.add_argument('--json', type=Path,
                        default=Path(__file__).resolve().parent /
                        'BENCH_hotpath.json')
    args = parser.parse_args(argv)
    points = run_bench(args.scale, args.rounds, args.inner)
    header = (f'{"shape":<14} {"generic µs":>12} {"sealed µs":>12} '
              f'{"speedup":>9}')
    print(header)
    print('-' * len(header))
    for p in points:
        print(f'{p["shape"]:<14} {p["generic_us"]:>12.1f} '
              f'{p["sealed_us"]:>12.1f} {p["speedup"]:>8.2f}x')
    payload = {'benchmark': 'hotpath', 'scale': args.scale,
               'rounds': args.rounds, 'inner': args.inner,
               'floor': CHECK_FLOOR, 'results': points}
    args.json.write_text(json.dumps(payload, indent=2) + '\n',
                         encoding='utf-8')
    print(f'wrote {args.json}')
    if args.check:
        slow = [p for p in points if p['speedup'] < CHECK_FLOOR]
        if slow:
            for p in slow:
                print(f'FAIL: {p["shape"]} sealed speedup '
                      f'{p["speedup"]:.2f}x < {CHECK_FLOOR}x',
                      file=sys.stderr)
            return 1
        print(f'check passed: every shape >= {CHECK_FLOOR}x')
    return 0


if __name__ == '__main__':
    raise SystemExit(_main())
