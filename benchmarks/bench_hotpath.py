"""Evaluator hot-path micro-benchmark: sealed vs generic rule execution.

The executor has two tiers (see ``repro/datalog/evaluator.py``): the
*generic* interpreter walks a compiled rule's step tuple with a
recursive cursor, and the *sealed* tier generates one flat Python
function per rule — slots become locals, binding masks and key
templates are inlined, the per-step dispatch disappears.  Every
per-transaction ∂put run of the RDBMS engine sits on this path, once
per shard worker under the parallel sharded engine, so the win
compounds across threads.

This benchmark pins the sealed tier's advantage on three
representative rule shapes:

* ``delta-loop`` — the incremental putback shape: scan a small delta,
  probe a large relation membership (the §5 steady state);
* ``join-filter`` — an indexed join with comparison filters and an
  intermediate predicate probed top-down (the interpreter probe loop);
* ``constraint`` — a ⊥-witness query under ``first_witness`` early
  exit.

Both tiers of every shape run as cases of one seeded
:func:`repro.benchsuite.harness.run_cases` call (``ev._SEALING`` is
toggled inside each timed op — the flag gates execution, not just
sealing, so one process interleaves both tiers rotation-fairly), and
each point carries per-evaluation P50/P95/P99 next to the medians.

Run:  python benchmarks/bench_hotpath.py [--rounds N] [--check]

``--check`` exits nonzero unless the sealed tier is >= 1.3x the
generic interpreter on every shape (the CI gate; the tracked
``BENCH_hotpath.json`` shows the actual multiples, typically 2-4x).
"""

import argparse
import json
import statistics
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / 'src'))

from repro.benchsuite.harness import BenchCase, run_cases    # noqa: E402
from repro.datalog import evaluator as ev                    # noqa: E402
from repro.datalog.parser import parse_program               # noqa: E402
from repro.datalog.plan import compile_program               # noqa: E402

CHECK_FLOOR = 1.3


def _shapes(scale: int):
    """(name, program, edb, goals, first_witness) benchmark cases."""
    items = frozenset((i, f'n{i}', 500 + i % 3000)
                      for i in range(scale))
    delta = frozenset((10 ** 6 + i, f'f{i}', 5000) for i in range(200))
    removed = frozenset(list(items)[: scale // 100])

    delta_loop = parse_program("""
        +items(I, N, P) :- +luxuryitems(I, N, P), not items(I, N, P).
        -items(I, N, P) :- items(I, N, P), P > 1000,
                           -luxuryitems(I, N, P).
    """)
    join_filter = parse_program("""
        aux(I, P) :- items(I, N, P), P > 1500.
        hot(I, P) :- aux(I, P), P > 2500, not -luxuryitems(I, _, _).
        pick(I) :- +luxuryitems(I, N, P), hot(I, Q), Q < P.
    """)
    constraint = parse_program("""
        ⊥ :- +luxuryitems(I, N, P), not P > 1000.
        ⊥ :- +luxuryitems(I, N, P), items(I, N, P).
    """)
    edb = {'items': items, '+luxuryitems': delta,
           '-luxuryitems': removed}
    return [
        ('delta-loop', delta_loop, edb, ('+items', '-items'), False),
        ('join-filter', join_filter, edb, ('pick',), False),
        ('constraint', constraint, edb, None, True),
    ]


def _run_once(plan, edb, goals, first_witness):
    if first_witness:
        plan.constraint_violations(edb, first_witness=True)
    else:
        plan.evaluate(edb, goals=goals)


def _make_case(name, program, edb, goals, first_witness, *,
               sealing: bool, inner: int) -> BenchCase:
    tier = 'sealed' if sealing else 'generic'

    def setup():
        # A private plan per case: the sealed case's rules are warmed
        # into their generated functions, the generic case's rules
        # never seal.
        plan = compile_program(program, cache=False)
        was = ev._SEALING
        ev._SEALING = sealing
        try:
            for _ in range(3):                  # warm (+ seal)
                _run_once(plan, edb, goals, first_witness)
        finally:
            ev._SEALING = was
        return {'plan': plan}

    def op(ctx, round_index):
        plan = ctx['plan']
        was = ev._SEALING
        ev._SEALING = sealing
        try:
            latencies = []
            for _ in range(inner):
                t0 = time.perf_counter()
                _run_once(plan, edb, goals, first_witness)
                latencies.append(time.perf_counter() - t0)
            return latencies
        finally:
            ev._SEALING = was

    return BenchCase(name=f'{name}:{tier}', setup=setup, op=op,
                     warmup=1, meta={'shape': name, 'tier': tier})


def run_bench(scale: int, rounds: int, inner: int) -> list[dict]:
    shapes = _shapes(scale)
    cases = [_make_case(*shape, sealing=sealing, inner=inner)
             for shape in shapes for sealing in (True, False)]
    results = {r.name: r for r in run_cases(cases, rounds=rounds,
                                            seed=7)}
    points = []
    for name, *_ in shapes:
        sealed = results[f'{name}:sealed']
        generic = results[f'{name}:generic']
        sealed_s = statistics.median(sealed.samples)
        generic_s = statistics.median(generic.samples)
        points.append({'shape': name,
                       'generic_us': generic_s * 1e6,
                       'sealed_us': sealed_s * 1e6,
                       'speedup': generic_s / sealed_s,
                       'generic_latency': generic.latency,
                       'sealed_latency': sealed.latency})
    return points


def _main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument('--scale', type=int, default=20_000,
                        help='rows in the large scanned relation')
    parser.add_argument('--rounds', type=int, default=7)
    parser.add_argument('--inner', type=int, default=30,
                        help='evaluations per timed round')
    parser.add_argument('--check', action='store_true',
                        help=f'fail when any shape is below '
                             f'{CHECK_FLOOR}x')
    parser.add_argument('--json', type=Path,
                        default=Path(__file__).resolve().parent /
                        'BENCH_hotpath.json')
    args = parser.parse_args(argv)
    points = run_bench(args.scale, args.rounds, args.inner)
    header = (f'{"shape":<14} {"generic µs":>12} {"sealed µs":>12} '
              f'{"speedup":>9}')
    print(header)
    print('-' * len(header))
    for p in points:
        print(f'{p["shape"]:<14} {p["generic_us"]:>12.1f} '
              f'{p["sealed_us"]:>12.1f} {p["speedup"]:>8.2f}x')
    payload = {'benchmark': 'hotpath', 'scale': args.scale,
               'rounds': args.rounds, 'inner': args.inner,
               'floor': CHECK_FLOOR, 'results': points}
    args.json.write_text(json.dumps(payload, indent=2) + '\n',
                         encoding='utf-8')
    print(f'wrote {args.json}')
    if args.check:
        slow = [p for p in points if p['speedup'] < CHECK_FLOOR]
        if slow:
            for p in slow:
                print(f'FAIL: {p["shape"]} sealed speedup '
                      f'{p["speedup"]:.2f}x < {CHECK_FLOOR}x',
                      file=sys.stderr)
            return 1
        print(f'check passed: every shape >= {CHECK_FLOOR}x')
    return 0


if __name__ == '__main__':
    raise SystemExit(_main())
