"""Steady-state plan-cache benchmark: compile once vs. recompile per call.

Measures the repeated-``put`` steady state the engine lives in after a
view is defined: for each measured update, the incrementalized putback
program ``∂put`` is evaluated over ``S ∪ {v, +v, -v}`` with a
single-tuple view delta.

* ``reuse``     — the plan compiled at ``define_view`` time is executed
  directly (what `Engine` now does on every statement);
* ``recompile`` — the same program is re-planned before every execution
  (stratification, safety, scheduling, binding-mask resolution), which
  is the static work the pre-plan evaluator re-did on each call.

Two Figure-6 catalog strategies are covered: ``luxuryitems`` (selection)
and ``outstanding_task`` (projection + semi-join, the widest schema in
the suite).

Run:  pytest benchmarks/bench_plan_cache.py --benchmark-only
 or:  python benchmarks/bench_plan_cache.py          # timing table + JSON

The plain-timing run also writes ``BENCH_plan_cache.json`` next to this
script (override with ``--json PATH``) so the perf trajectory is
machine-readable across PRs.
"""

import argparse
import atexit
import itertools
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / 'src'))

from repro.benchsuite.catalog import entry_by_name                # noqa: E402
from repro.benchsuite.workload import (build_engine,              # noqa: E402
                                       update_statement)
from repro.datalog.ast import delete_pred, insert_pred            # noqa: E402
from repro.datalog.plan import compile_program                    # noqa: E402

VIEWS = ('luxuryitems', 'outstanding_task')
SIZE = 20_000

_COUNTERS = itertools.count(1)
_SETUPS: dict = {}


@atexit.register
def _close_setups() -> None:
    """Engines are cached per view for the whole run (pytest or plain);
    close them on exit so backend resources are released."""
    while _SETUPS:
        _, engine = _SETUPS.popitem()[1]
        engine.close()


def _steady_state(view: str, reuse: bool):
    """One repeated-put step: evaluate ∂put for a fresh one-tuple view
    insertion against a warmed engine at scale ``SIZE``."""
    if view not in _SETUPS:
        entry = entry_by_name(view)
        # Always the memory backend: this benchmark measures the
        # interpreter's plan-reuse steady state (bench_backends.py owns
        # the cross-backend comparison).
        engine = build_engine(entry, SIZE, incremental=True,
                              backend='memory')
        engine.rows(view)                       # materialise the cache
        engine.insert(view, update_statement(entry, engine,
                                             next(_COUNTERS)))  # warm up
        _SETUPS[view] = (entry, engine)
    entry, engine = _SETUPS[view]
    view_entry = engine.view(view)
    program = view_entry.incremental_program
    plan = view_entry.incremental_plan

    def one_update():
        row = update_statement(entry, engine, next(_COUNTERS))
        edb = {s: engine.eval_handle(s)
               for s in view_entry.source_names}
        edb[insert_pred(view)] = {row}
        edb[delete_pred(view)] = set()
        edb[view] = engine.rows(view)
        p = plan if reuse else compile_program(program, cache=False)
        if p.constraint_plans:
            p.constraint_violations(edb)
        p.evaluate(edb, goals=p.delta_goals)

    return one_update


try:
    import pytest

    @pytest.mark.parametrize('view', VIEWS)
    def test_plan_reuse(benchmark, view):
        benchmark.extra_info.update(view=view, size=SIZE, mode='reuse')
        benchmark.pedantic(_steady_state(view, reuse=True),
                           rounds=30, iterations=1)

    @pytest.mark.parametrize('view', VIEWS)
    def test_recompile_each_call(benchmark, view):
        benchmark.extra_info.update(view=view, size=SIZE, mode='recompile')
        benchmark.pedantic(_steady_state(view, reuse=False),
                           rounds=30, iterations=1)

except ImportError:                                   # pragma: no cover
    pass


def _main(argv=None) -> None:                         # pragma: no cover
    import statistics

    from repro.benchsuite.harness import BenchCase, run_cases

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument('--rounds', type=int, default=200)
    parser.add_argument('--json', type=Path,
                        default=Path(__file__).resolve().parent /
                        'BENCH_plan_cache.json',
                        help='where to write the machine-readable '
                             'results')
    args = parser.parse_args(argv)
    rounds = args.rounds
    print(f'steady-state repeated put, {rounds} rounds, '
          f'base size {SIZE:,}')
    print(f'{"view":<18} {"reuse µs":>10} {"recompile µs":>13} '
          f'{"speedup":>8}')
    # All four (view, mode) combinations interleave through one
    # seeded rotation-fair harness run; each round is one repeated-put
    # step, so the wall samples are per-step latencies.
    cases = [BenchCase(name=f'{view}:{mode}',
                       setup=lambda view=view, reuse=reuse:
                           _steady_state(view, reuse),
                       op=lambda step, r: step(),
                       warmup=1,
                       meta={'view': view, 'mode': mode})
             for view in VIEWS
             for mode, reuse in (('reuse', True), ('recompile', False))]
    by_name = {r.name: r for r in run_cases(cases, rounds=rounds,
                                            seed=7)}
    results = []
    for view in VIEWS:
        reuse = by_name[f'{view}:reuse']
        recompile = by_name[f'{view}:recompile']
        reuse_s = statistics.median(reuse.samples)
        recompile_s = statistics.median(recompile.samples)
        speedup = recompile_s / reuse_s
        print(f'{view:<18} {reuse_s * 1e6:>10.1f} '
              f'{recompile_s * 1e6:>13.1f} {speedup:>7.1f}x')
        results.append({'view': view, 'base_size': SIZE,
                        'rounds': rounds,
                        'reuse_seconds': reuse_s,
                        'recompile_seconds': recompile_s,
                        'speedup': speedup,
                        'reuse_latency': reuse.latency,
                        'recompile_latency': recompile.latency})
    payload = {'benchmark': 'plan_cache', 'size': SIZE, 'rounds': rounds,
               'results': results}
    args.json.write_text(json.dumps(payload, indent=2) + '\n',
                         encoding='utf-8')
    print(f'wrote {args.json}')


if __name__ == '__main__':                            # pragma: no cover
    _main()
