"""Trend tracking for ``bench_all``: gate on history, not magic floors.

Static throughput floors rot: they are tuned to one machine and either
never fire or fire on every slow CI runner.  This tool keeps a
*committed trajectory* of the hardware-independent numbers ``bench_all``
already computes — each configuration's ``speedup_vs_memory`` (a ratio
of two measurements from the *same* run on the *same* box) and the
metrics-overhead ratio — and gates a new run against the **median of
its own history** instead:

* ``append``  — record a summary JSON's ratios as one line of
  ``TREND.jsonl`` (commit the file; the history *is* the baseline).
* ``check``   — fail if any configuration's speedup fell below
  ``median(history) * (1 - tolerance)``, or the overhead ratio rose
  above ``max(ceiling, median * (1 + tolerance))``.  History is
  filtered to the same ``mode`` (quick/full runs are not comparable).
  An empty same-mode history passes with a note — the first run
  *seeds* the trajectory, it cannot regress from it.
* ``show``    — print the trajectory.

Stdlib-only on purpose: CI calls it right after ``bench_all`` with no
package on ``sys.path``.

Run:  python benchmarks/trend.py check [--summary P] [--trend P]
      python benchmarks/trend.py append [--summary P] [--trend P]
      python benchmarks/trend.py show [--trend P]
"""

import argparse
import json
import statistics
import sys
from pathlib import Path

#: Allowed drop below the historical median speedup before ``check``
#: fails.  Wide on purpose: shared CI boxes are noisy and the ratios
#: already cancel most machine variance — this catches *regressions*
#: (a config collapsing toward or below half its trajectory), not
#: jitter.
TOLERANCE = 0.35

HERE = Path(__file__).resolve().parent
DEFAULT_SUMMARY = HERE / 'BENCH_all.json'
DEFAULT_TREND = HERE / 'TREND.jsonl'


def record_from_summary(summary: dict) -> dict:
    """The committed-trajectory line for one ``bench_all`` summary."""
    speedups = {point['config']: point['speedup_vs_memory']
                for point in summary.get('configs', [])
                if point.get('config') != 'memory'}
    return {'mode': summary.get('mode', 'full'),
            'speedups': speedups,
            'overhead_ratio':
                summary.get('metrics_overhead', {}).get('ratio')}


def load_trend(path: Path) -> list[dict]:
    if not path.exists():
        return []
    records = []
    for line in path.read_text(encoding='utf-8').splitlines():
        line = line.strip()
        if line:
            records.append(json.loads(line))
    return records


def check_against_history(record: dict, history: list[dict], *,
                          tolerance: float = TOLERANCE) -> list[str]:
    """Failure messages for ``record`` vs the same-mode ``history``
    (empty list = pass)."""
    same_mode = [r for r in history if r.get('mode') == record['mode']]
    if not same_mode:
        return []
    failures = []
    for config, current in sorted(record['speedups'].items()):
        past = [r['speedups'][config] for r in same_mode
                if config in r.get('speedups', {})]
        if not past or current is None:
            continue
        median = statistics.median(past)
        floor = median * (1 - tolerance)
        if current < floor:
            failures.append(
                f'{config}: speedup_vs_memory {current:.3f} fell below '
                f'{floor:.3f} (median of {len(past)} {record["mode"]} '
                f'runs is {median:.3f}, tolerance {tolerance:.0%})')
    current_overhead = record.get('overhead_ratio')
    past_overhead = [r['overhead_ratio'] for r in same_mode
                     if r.get('overhead_ratio') is not None]
    if current_overhead is not None and past_overhead:
        median = statistics.median(past_overhead)
        ceiling = max(1.02, median * (1 + tolerance))
        if current_overhead > ceiling:
            failures.append(
                f'metrics overhead {current_overhead:.4f}x exceeds '
                f'{ceiling:.4f}x (median of {len(past_overhead)} '
                f'{record["mode"]} runs is {median:.4f}x)')
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    sub = parser.add_subparsers(dest='command', required=True)
    for name in ('append', 'check', 'show'):
        p = sub.add_parser(name)
        p.add_argument('--trend', type=Path, default=DEFAULT_TREND)
        if name != 'show':
            p.add_argument('--summary', type=Path,
                           default=DEFAULT_SUMMARY)
        if name == 'check':
            p.add_argument('--tolerance', type=float,
                           default=TOLERANCE)
    args = parser.parse_args(argv)

    if args.command == 'show':
        history = load_trend(args.trend)
        if not history:
            print(f'{args.trend}: no recorded runs')
            return 0
        for i, r in enumerate(history):
            ratios = ' '.join(f'{c}={s:.2f}'
                              for c, s in sorted(r['speedups'].items()))
            overhead = r.get('overhead_ratio')
            tail = f' overhead={overhead:.4f}' \
                if overhead is not None else ''
            print(f'{i:>3} [{r["mode"]}] {ratios}{tail}')
        return 0

    summary = json.loads(args.summary.read_text(encoding='utf-8'))
    record = record_from_summary(summary)

    if args.command == 'append':
        with args.trend.open('a', encoding='utf-8') as f:
            f.write(json.dumps(record, sort_keys=True) + '\n')
        print(f'appended [{record["mode"]}] run to {args.trend}')
        return 0

    history = load_trend(args.trend)
    failures = check_against_history(record, history,
                                     tolerance=args.tolerance)
    same_mode = sum(1 for r in history
                    if r.get('mode') == record['mode'])
    if not same_mode:
        print(f'trend check: no {record["mode"]}-mode history in '
              f'{args.trend} — run seeds the trajectory, passing')
        return 0
    for failure in failures:
        print(f'FAIL: {failure}', file=sys.stderr)
    if failures:
        return 1
    print(f'trend check passed against {same_mode} '
          f'{record["mode"]}-mode run(s)')
    return 0


if __name__ == '__main__':
    raise SystemExit(main())
