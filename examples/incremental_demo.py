"""Incrementalization in action (§5 / Figure 6, in miniature).

Loads the Figure 6c workload (``outstanding_task``) at two base sizes and
times a single-tuple view INSERT under the original strategy (full
putback recomputation) and the incrementalized one (∂put over the view
delta).  The original grows with the base size; ∂put does not.

Run:  python examples/incremental_demo.py
"""

import time

from repro import incrementalize, pretty
from repro.benchsuite.catalog import entry_by_name
from repro.benchsuite.workload import build_engine, update_statement


def timed_insert(engine, entry, index):
    # One warmup so persistent indexes exist (as they would in an RDBMS).
    engine.insert(entry.name, update_statement(entry, engine, index + 50))
    row = update_statement(entry, engine, index)
    started = time.perf_counter()
    engine.insert(entry.name, row)
    return time.perf_counter() - started


def main() -> None:
    entry = entry_by_name('outstanding_task')
    strategy = entry.strategy()

    print('== the incrementalized program ∂put (Lemma 5.2) ==')
    print(pretty(incrementalize(strategy.putdelta, entry.name)))

    print('\n== single view-INSERT latency, original vs incremental ==')
    print(f'{"base size":>10} {"original":>12} {"incremental":>12}')
    for index, n in enumerate((5_000, 20_000, 80_000)):
        original = build_engine(entry, n, incremental=False,
                                strategy=strategy)
        try:
            original.rows(entry.name)
            t_full = timed_insert(original, entry, index * 2)
        finally:
            original.close()
        incremental = build_engine(entry, n, incremental=True,
                                   strategy=strategy)
        try:
            incremental.rows(entry.name)
            t_inc = timed_insert(incremental, entry, index * 2 + 1)
        finally:
            incremental.close()
        print(f'{n:>10} {t_full:>11.4f}s {t_inc:>11.5f}s   '
              f'({t_full / t_inc:,.0f}x)')

    print('\nThe original putback re-reads the whole view: its latency '
          'tracks the base size.\n∂put touches only the delta: flat.')


if __name__ == '__main__':
    main()
