"""What validation catches (§4): a gallery of broken update strategies.

Each strategy below is a small, plausible-looking mutation of the union
example, and each violates a different leg of well-behavedness.  The
validator pinpoints the failing check and produces a concrete
counterexample database.

Run:  python examples/invalid_strategies.py
"""

from repro import DatabaseSchema, UpdateStrategy, validate

SOURCES = DatabaseSchema.build(r1={'a': 'int'}, r2={'a': 'int'})
UNION_GET = 'v(X) :- r1(X).\nv(X) :- r2(X).'

BROKEN = [
    ('contradictory deltas (well-definedness, §4.2)', """
        +r1(X) :- v(X), r1(X).
        -r1(X) :- v(X), r1(X).
     """, None),
    ('deletes tuples the view still contains (GetPut, §4.3)', """
        -r1(X) :- r1(X), v(X).
        -r2(X) :- r2(X), not v(X).
        +r1(X) :- v(X), not r1(X), not r2(X).
     """, UNION_GET),
    ('never propagates insertions (PutGet, §4.4)', """
        -r1(X) :- r1(X), not v(X).
        -r2(X) :- r2(X), not v(X).
     """, UNION_GET),
    ('unconditional source damage (no steady state, φ3)', """
        -r1(X) :- r1(X), r2(X).
        -r1(X) :- r1(X), not v(X).
     """, None),
]


def main() -> None:
    for title, putdelta, get in BROKEN:
        print(f'== {title} ==')
        strategy = UpdateStrategy.parse('v', SOURCES, putdelta,
                                        expected_get=get)
        report = validate(strategy)
        assert not report.valid
        failure = report.failures()[0]
        print(f'  verdict : INVALID — {failure.name}')
        print(f'  reason  : {failure.detail}')
        if failure.witness is not None:
            witness = str(failure.witness).replace('\n', '; ')
            print(f'  witness : {witness}')
        print()

    print('== and the corrected strategy ==')
    good = UpdateStrategy.parse('v', SOURCES, """
        -r1(X) :- r1(X), not v(X).
        -r2(X) :- r2(X), not v(X).
        +r1(X) :- v(X), not r1(X), not r2(X).
    """, expected_get=UNION_GET)
    report = validate(good)
    print(f'  verdict : {"VALID" if report.valid else "INVALID"} '
          f'({report.fragment}, conclusive={report.conclusive})')


if __name__ == '__main__':
    main()
