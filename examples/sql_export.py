"""Compiling a validated strategy to PostgreSQL (§6.1).

The framework emits the same artifacts the paper deploys: ``CREATE TABLE``
DDL, a ``CREATE VIEW`` from the certified view definition, and an
``INSTEAD OF`` trigger program implementing the (incrementalized) update
strategy.  Pipe the output into psql against a real PostgreSQL if you have
one; the in-memory engine executes the identical pipeline natively.

Run:  python examples/sql_export.py
"""

from repro import (DatabaseSchema, UpdateStrategy, compile_strategy_to_sql,
                   validate)
from repro.sql.ddl import create_schema


def main() -> None:
    sources = DatabaseSchema.build(
        items={'iid': 'int', 'iname': 'string', 'price': 'int'})

    strategy = UpdateStrategy.parse('luxuryitems', sources, """
        ⊥ :- luxuryitems(I, N, P), not P > 1000.
        +items(I, N, P) :- luxuryitems(I, N, P), not items(I, N, P).
        expensive(I, N, P) :- items(I, N, P), P > 1000.
        -items(I, N, P) :- expensive(I, N, P), not luxuryitems(I, N, P).
    """, expected_get="luxuryitems(I, N, P) :- items(I, N, P), "
                      "P > 1000.")

    report = validate(strategy)
    report.raise_if_invalid()

    print('-- base tables ' + '-' * 50)
    print(create_schema(sources))
    print()
    sql = compile_strategy_to_sql(strategy, report.view_definition,
                                  incremental=True)
    print(sql)
    print(f'-- total: {len(sql.encode())} bytes of compiled SQL '
          f"(Table 1's last column)")


if __name__ == '__main__':
    main()
