"""The paper's full case study (§3.3): a personnel database with five
layered updatable views.

Layering is the point: ``employees`` and ``retired`` are defined over the
*views* ``residents`` and ``ced``, so updating them cascades through two
strategy layers before touching base tables.

Run:  python examples/case_study.py
"""

from repro import DatabaseSchema, Engine, UpdateStrategy

BASE = DatabaseSchema.build(
    male={'emp_name': 'string', 'birth_date': 'date'},
    female={'emp_name': 'string', 'birth_date': 'date'},
    others={'emp_name': 'string', 'birth_date': 'date',
            'gender': 'string'},
    ed={'emp_name': 'string', 'dept_name': 'string'},
    eed={'emp_name': 'string', 'dept_name': 'string'},
)

VIEW_LAYER = DatabaseSchema.build(
    residents={'emp_name': 'string', 'birth_date': 'date',
               'gender': 'string'},
    ced={'emp_name': 'string', 'dept_name': 'string'},
)


def define_views(engine: Engine) -> None:
    residents = UpdateStrategy.parse('residents', BASE, """
        +male(E, B) :- residents(E, B, 'M'), not male(E, B),
            not others(E, B, 'M').
        -male(E, B) :- male(E, B), not residents(E, B, 'M').
        +female(E, B) :- residents(E, B, G), G = 'F', not female(E, B),
            not others(E, B, G).
        -female(E, B) :- female(E, B), not residents(E, B, 'F').
        +others(E, B, G) :- residents(E, B, G), not G = 'M', not G = 'F',
            not others(E, B, G).
        -others(E, B, G) :- others(E, B, G), not residents(E, B, G).
    """, expected_get="""
        residents(E, B, G) :- others(E, B, G).
        residents(E, B, 'F') :- female(E, B).
        residents(E, B, 'M') :- male(E, B).
    """)

    ced = UpdateStrategy.parse('ced', BASE, """
        +ed(E, D) :- ced(E, D), not ed(E, D).
        -eed(E, D) :- ced(E, D), eed(E, D).
        +eed(E, D) :- ed(E, D), not ced(E, D), not eed(E, D).
    """, expected_get="ced(E, D) :- ed(E, D), not eed(E, D).")

    residents1962 = UpdateStrategy.parse('residents1962', VIEW_LAYER, """
        ⊥ :- residents1962(E, B, G), B > '1962-12-31'.
        ⊥ :- residents1962(E, B, G), B < '1962-01-01'.
        +residents(E, B, G) :- residents1962(E, B, G),
            not residents(E, B, G).
        -residents(E, B, G) :- residents(E, B, G), not B < '1962-01-01',
            not B > '1962-12-31', not residents1962(E, B, G).
    """, expected_get="""
        residents1962(E, B, G) :- residents(E, B, G),
            not B < '1962-01-01', not B > '1962-12-31'.
    """)

    employees = UpdateStrategy.parse('employees', VIEW_LAYER, """
        ⊥ :- employees(E, B, G), not ced(E, _).
        +residents(E, B, G) :- employees(E, B, G),
            not residents(E, B, G).
        -residents(E, B, G) :- residents(E, B, G), ced(E, _),
            not employees(E, B, G).
    """, expected_get="employees(E, B, G) :- residents(E, B, G), "
                      "ced(E, _).")

    retired = UpdateStrategy.parse('retired', VIEW_LAYER, """
        -ced(E, D) :- ced(E, D), retired(E).
        +ced(E, D) :- residents(E, _, _), not retired(E), not ced(E, _),
            D = 'unknown'.
        +residents(E, B, G) :- retired(E), G = 'unknown',
            not residents(E, _, _), B = '0000-00-00'.
    """, expected_get="retired(E) :- residents(E, B, G), not ced(E, _).")

    # Validation of each strategy (Algorithm 1) happens here; pass
    # validate_first=False to skip it when re-running interactively.
    for strategy in (residents, ced, residents1962, employees, retired):
        print(f'  validating {strategy.view.name} ...', end=' ')
        entry = engine.define_view(strategy)
        kind = 'incremental' if entry.use_incremental else 'full put'
        print(f'ok ({kind})')


def show(engine: Engine, *names: str) -> None:
    for name in names:
        print(f'  {name:15s}', sorted(engine.rows(name)))


def main() -> None:
    engine = Engine(BASE)
    try:
        engine.load('male', [('bob', '1960-04-01'),
                             ('dan', '1962-06-15')])
        engine.load('female', [('carol', '1962-03-02')])
        engine.load('others', [('alex', '1970-01-05', 'X')])
        engine.load('ed', [('bob', 'cs'), ('carol', 'math'),
                           ('dan', 'cs'), ('alex', 'bio')])
        engine.load('eed', [('dan', 'cs')])

        print('== defining the five case-study views ==')
        define_views(engine)

        print('\n== initial contents ==')
        show(engine, 'residents', 'ced', 'residents1962', 'employees',
             'retired')

        print("\n== INSERT INTO residents1962 VALUES "
              "('pat','1962-07-07','M')")
        engine.insert('residents1962', ('pat', '1962-07-07', 'M'))
        print('  cascades: residents1962 -> residents -> male')
        show(engine, 'male', 'residents1962')

        print("\n== DELETE FROM employees WHERE emp_name = 'carol' ==")
        engine.delete('employees', where={'emp_name': 'carol'})
        print('  cascades: employees -> residents -> female')
        show(engine, 'female', 'employees')

        print("\n== DELETE FROM retired WHERE emp_name = 'dan' ==")
        engine.delete('retired', where={'emp_name': 'dan'})
        print("  dan is re-employed with an 'unknown' department:")
        show(engine, 'ced', 'eed', 'retired')

        print('\n== constraint rejection ==')
        try:
            engine.insert('employees', ('ghost', '1950-01-01', 'M'))
        except Exception as exc:
            print(f'  insert of unknown employee rejected: {exc}')
    finally:
        engine.close()


if __name__ == '__main__':
    main()
