"""Quickstart: the paper's running example (Example 3.1 / 4.1).

A view ``v`` over two base relations.  We *program* the update strategy —
deletions propagate to both relations, insertions go to ``r1`` — validate
it, let the framework derive the view definition it induces (the union),
and run DML against the view in the in-memory engine.

Run:  python examples/quickstart.py
"""

from repro import DatabaseSchema, Engine, UpdateStrategy, pretty, validate


def main() -> None:
    sources = DatabaseSchema.build(r1={'a': 'int'}, r2={'a': 'int'})

    # The putback program of Example 3.1: how view updates reach the
    # source.  Note there is no view definition here — the strategy alone
    # determines it (Theorem 2.1).
    strategy = UpdateStrategy.parse('v', sources, """
        -r1(X) :- r1(X), not v(X).
        -r2(X) :- r2(X), not v(X).
        +r1(X) :- v(X), not r1(X), not r2(X).
    """)

    print('== validating the update strategy (Algorithm 1) ==')
    report = validate(strategy)
    print(report)
    assert report.valid

    print('\n== the derived view definition ==')
    print(pretty(report.derived_get))   # v(X) :- r1(X).  v(X) :- r2(X).

    print('\n== running it in the engine ==')
    engine = Engine(sources)
    try:
        engine.load('r1', [(1,)])
        engine.load('r2', [(2,), (4,)])
        engine.define_view(strategy, report=report)
        print('view v          :', sorted(engine.rows('v')))

        engine.insert('v', (3,))        # lands in r1 (the strategy says so)
        print("after INSERT 3  : r1 =", sorted(engine.rows('r1')),
              ' v =', sorted(engine.rows('v')))

        engine.delete('v', where={'a': 2})  # removed from r2
        print("after DELETE 2  : r2 =", sorted(engine.rows('r2')),
              ' v =', sorted(engine.rows('v')))

        with engine.transaction() as txn:   # Appendix D: one merged delta
            txn.insert('v', (9,))
            txn.delete('v', where={'a': 9})
        print('after no-op txn : v =', sorted(engine.rows('v')))
    finally:
        engine.close()


if __name__ == '__main__':
    main()
