"""Cross-organisation order sharing (the paper's Dejima-style
data-sharing scenario, Section 7).

Three organisations — a retailer, a supplier, and a carrier — share a
single logical view ``orders(oid, item, status)`` without sharing a
database.  Each keeps its *own* base schema and programs its *own*
update strategy for the shared view; the peer network only ships view
deltas.  When a delta arrives, the receiver runs it through its own
putback, so the same logical order lands

* at the retailer as a ``purchases`` row tagged ``channel='partner'``,
* at the supplier as a ``production`` row with ``plant='unassigned'``,
* at the carrier as a plain ``shipments`` row.

Receiver sovereignty is the point: nobody dictates anyone else's base
tables — only the shared view's contents.  The demo then knocks a link
out to show retry → quarantine → anti-entropy catch-up, and
crash-restarts a peer to show recovery from its durable logs.

Run:  python examples/order_sharing.py
"""

import tempfile
from pathlib import Path

from repro import DatabaseSchema, Engine, UpdateStrategy, validate
from repro.rdbms import PeerNetwork, converged, faults

VIEW = 'orders'

# -- the retailer: private ``channel`` column records order origin ----
RETAILER = DatabaseSchema.build(
    purchases={'oid': 'string', 'item': 'string', 'status': 'string',
               'channel': 'string'})
RETAILER_PUTDELTA = """
    listed(O, I, S) :- purchases(O, I, S, _).
    +purchases(O, I, S, C) :- orders(O, I, S), not listed(O, I, S),
        C = 'partner'.
    -purchases(O, I, S, C) :- purchases(O, I, S, C),
        not orders(O, I, S).
"""
RETAILER_GET = 'orders(O, I, S) :- purchases(O, I, S, _).'

# -- the supplier: partner orders start at an unassigned plant --------
SUPPLIER = DatabaseSchema.build(
    production={'oid': 'string', 'item': 'string', 'status': 'string',
                'plant': 'string'})
SUPPLIER_PUTDELTA = """
    queued(O, I, S) :- production(O, I, S, _).
    +production(O, I, S, P) :- orders(O, I, S), not queued(O, I, S),
        P = 'unassigned'.
    -production(O, I, S, P) :- production(O, I, S, P),
        not orders(O, I, S).
"""
SUPPLIER_GET = 'orders(O, I, S) :- production(O, I, S, _).'

# -- the carrier: base table mirrors the view shape -------------------
CARRIER = DatabaseSchema.build(
    shipments={'oid': 'string', 'item': 'string', 'status': 'string'})
CARRIER_PUTDELTA = """
    +shipments(O, I, S) :- orders(O, I, S), not shipments(O, I, S).
    -shipments(O, I, S) :- shipments(O, I, S), not orders(O, I, S).
"""
CARRIER_GET = 'orders(O, I, S) :- shipments(O, I, S).'


def org_factory(sources, putdelta, expected_get):
    """A peer engine factory: WAL in the peer's directory, the org's
    own strategy adopted on restart via ``exist_ok``."""
    strategy = UpdateStrategy.parse(VIEW, sources, putdelta,
                                    expected_get=expected_get)

    def build(directory: Path) -> Engine:
        engine = Engine(sources, wal=directory / 'engine.wal',
                        wal_sync=False)
        engine.define_view(strategy, validate_first=False,
                           exist_ok=True)
        return engine

    build.strategy = strategy
    return build


def main() -> None:
    retailer = org_factory(RETAILER, RETAILER_PUTDELTA, RETAILER_GET)
    supplier = org_factory(SUPPLIER, SUPPLIER_PUTDELTA, SUPPLIER_GET)
    carrier = org_factory(CARRIER, CARRIER_PUTDELTA, CARRIER_GET)

    print('== validating the retailer strategy (Algorithm 1) ==')
    report = validate(retailer.strategy)
    print(report)
    assert report.valid

    with tempfile.TemporaryDirectory() as tmp:
        base = Path(tmp)
        net = PeerNetwork(retry_backoff=0.001, quarantine_after=3)
        try:
            net.add_peer('retailer', retailer, base / 'retailer',
                         shares=(VIEW,))
            net.add_peer('supplier', supplier, base / 'supplier',
                         shares=(VIEW,))
            net.add_peer('carrier', carrier, base / 'carrier',
                         shares=(VIEW,))
            net.share(VIEW, ('retailer', 'supplier', 'carrier'))

            print('\n== the retailer takes an order ==')
            net.peers['retailer'].engine.insert(
                VIEW, ('o-1001', 'espresso machine', 'placed'))
            net.settle()
            print('supplier production:',
                  sorted(net.peers['supplier'].engine.rows(
                      'production')))
            print('carrier shipments  :',
                  sorted(net.peers['carrier'].engine.rows('shipments')))

            print('\n== the supplier ships it (status change = '
                  'delete + insert, one commit) ==')
            with net.peers['supplier'].engine.transaction() as txn:
                txn.delete(VIEW, where={'oid': 'o-1001'})
                txn.insert(VIEW, ('o-1001', 'espresso machine',
                                  'shipped'))
            net.settle()
            print('retailer purchases :',
                  sorted(net.peers['retailer'].engine.rows(
                      'purchases')))

            print('\n== the carrier drops off the network ==')
            plan = faults.FaultPlan()
            plan.stall_link(link='retailer->carrier', once=False)
            plan.stall_link(link='supplier->carrier', once=False)
            with plan.installed():
                net.peers['retailer'].engine.insert(
                    VIEW, ('o-1002', 'grinder', 'placed'))
                net.settle(max_rounds=50)
            print('quarantined links  :', net.stats()['quarantined'])
            print('carrier shipments  :',
                  sorted(net.peers['carrier'].engine.rows('shipments')))

            print('\n== the outage ends: anti-entropy catch-up ==')
            released = net.heal()
            net.settle()
            print(f'links released     : {released}')
            print('carrier shipments  :',
                  sorted(net.peers['carrier'].engine.rows('shipments')))

            print('\n== the supplier crashes and restarts from its '
                  'logs ==')
            restarted = net.restart_peer('supplier')
            net.settle()
            print('supplier production:',
                  sorted(restarted.engine.rows('production')))

            assert converged(net.peers.values(), VIEW)
            print('\nall three organisations converged on',
                  sorted(net.peers['carrier'].rows(VIEW)))
        finally:
            net.close()


if __name__ == '__main__':
    main()
