"""Translation of safe-range FO formulas into Datalog queries (Appendix B).

The entry point :func:`fol_to_datalog` takes any safe-range formula, runs
the SRNF → RANF pipeline from :mod:`repro.fol.normalize`, and emits a
nonrecursive Datalog program with a fresh goal predicate per composite
sub-formula, following the inductive construction of Appendix B:

* atoms and ``x = a`` equalities become single rules;
* conjunctions become one rule joining the positive sub-goals, keeping
  builtins inline and negating the sub-goals of negated parts;
* disjunctions share one goal predicate across per-disjunct sub-programs;
* existential quantification becomes a projection rule.

The resulting query ``(program, goal)`` is equivalent to the input formula:
for every database ``D``, ``P(D)|goal = { ~t | D |= φ(~t) }``.
"""

from __future__ import annotations

from repro.datalog.ast import (Atom, BuiltinLit, Const, Lit, Program, Rule,
                               Var)
from repro.errors import TransformationError
from repro.fol.formula import (And, Bottom, Exists, FoAtom, FoCmp, FoConst,
                               FoEq, FoVar, Formula, Not, Or, Top,
                               free_variables)
from repro.fol.normalize import to_ranf, to_srnf

__all__ = ['fol_to_datalog', 'ranf_to_datalog']


def _dl_term(term):
    if isinstance(term, FoVar):
        return Var(term.name)
    if isinstance(term, FoConst):
        return Const(term.value)
    raise TransformationError(f'unknown FO term {term!r}')


class _Translator:

    def __init__(self, goal_prefix: str):
        self.goal_prefix = goal_prefix
        self.counter = 0
        self.rules: list[Rule] = []

    def fresh_goal(self) -> str:
        name = f'{self.goal_prefix}_{self.counter}'
        self.counter += 1
        return name

    # -- translation -------------------------------------------------------

    def translate(self, formula: Formula, goal: str,
                  head_vars: tuple[str, ...]) -> None:
        """Emit rules defining ``goal(head_vars)`` as ``formula``."""
        head = Atom(goal, tuple(Var(n) for n in head_vars))
        if isinstance(formula, FoAtom):
            body = Lit(Atom(formula.pred,
                            tuple(_dl_term(t) for t in formula.args)))
            self.rules.append(Rule(head, (body,)))
            return
        if isinstance(formula, (FoEq, FoCmp)):
            self.rules.append(Rule(head, (self._builtin(formula),)))
            return
        if isinstance(formula, Or):
            for part in formula.parts:
                self.translate(part, goal, head_vars)
            return
        if isinstance(formula, Exists):
            inner_free = sorted(free_variables(formula.inner))
            sub_goal = self.fresh_goal()
            self.translate(formula.inner, sub_goal, tuple(inner_free))
            body = Lit(Atom(sub_goal, tuple(Var(n) for n in inner_free)))
            self.rules.append(Rule(head, (body,)))
            return
        if isinstance(formula, And):
            self.rules.append(Rule(head, self._conjunction(formula.parts)))
            return
        if isinstance(formula, Not):
            # Only boolean (closed) negations may stand alone.
            if free_variables(formula) :
                raise TransformationError(
                    f'negation with free variables outside a conjunction '
                    f'is not range restricted: {formula}')
            body = self._negated(formula.inner)
            self.rules.append(Rule(head, (body,)))
            return
        if isinstance(formula, (Top, Bottom)):
            raise TransformationError(
                f'cannot translate propositional constant {formula} into a '
                f'Datalog rule with head variables {head_vars}')
        raise TransformationError(f'unknown formula node {formula!r}')

    def _builtin(self, formula) -> BuiltinLit:
        if isinstance(formula, FoEq):
            return BuiltinLit('=', _dl_term(formula.left),
                              _dl_term(formula.right))
        return BuiltinLit(formula.op, _dl_term(formula.left),
                          _dl_term(formula.right))

    def _conjunction(self, parts) -> tuple:
        literals = []
        for part in parts:
            if isinstance(part, FoAtom):
                literals.append(Lit(Atom(
                    part.pred, tuple(_dl_term(t) for t in part.args))))
            elif isinstance(part, (FoEq, FoCmp)):
                literals.append(self._builtin(part))
            elif isinstance(part, Not):
                literals.append(self._negated(part.inner))
            else:
                # Composite positive part: introduce a sub-goal.
                literals.append(self._subgoal(part, positive=True))
        return tuple(literals)

    def _negated(self, inner: Formula):
        if isinstance(inner, FoAtom):
            return Lit(Atom(inner.pred,
                            tuple(_dl_term(t) for t in inner.args)), False)
        if isinstance(inner, (FoEq, FoCmp)):
            return self._builtin(inner).negate()
        return self._subgoal(inner, positive=False)

    def _subgoal(self, formula: Formula, positive: bool):
        inner_free = sorted(free_variables(formula))
        sub_goal = self.fresh_goal()
        self.translate(formula, sub_goal, tuple(inner_free))
        return Lit(Atom(sub_goal, tuple(Var(n) for n in inner_free)),
                   positive)


def ranf_to_datalog(formula: Formula, goal: str,
                    head_vars: tuple[str, ...] | None = None,
                    goal_prefix: str | None = None
                    ) -> tuple[Program, str]:
    """Translate a RANF formula; see :func:`fol_to_datalog`."""
    if head_vars is None:
        head_vars = tuple(sorted(free_variables(formula)))
    translator = _Translator(goal_prefix or f'{goal}_q')
    translator.translate(formula, goal, head_vars)
    return Program(tuple(translator.rules)), goal


def fol_to_datalog(formula: Formula, goal: str,
                   head_vars: tuple[str, ...] | None = None
                   ) -> tuple[Program, str]:
    """Translate a safe-range FO formula into an equivalent Datalog query.

    Returns ``(program, goal)`` where ``goal`` has the given ``head_vars``
    (defaulting to the formula's free variables in sorted order).  Raises
    :class:`TransformationError` when the formula is not safe range.
    """
    ranf = to_ranf(to_srnf(formula))
    return ranf_to_datalog(ranf, goal, head_vars)
