"""First-order logic substrate: formulas, fragment checks, translations,
and the bounded satisfiability solver (§4, Appendices A/B)."""

from repro.fol.datalog_to_fol import predicate_to_fol, rule_body_to_fol
from repro.fol.fol_to_datalog import fol_to_datalog, ranf_to_datalog
from repro.fol.formula import (BOTTOM, TOP, And, Bottom, Exists, FoAtom,
                               FoCmp, FoConst, FoEq, FoVar, Forall, Formula,
                               Not, Or, Top, free_variables, make_and,
                               make_exists, make_or, substitute)
from repro.fol.guarded import is_gnfo, why_not_gnfo
from repro.fol.normalize import (NOT_SAFE, is_safe_range, range_restricted,
                                 to_ranf, to_srnf)
from repro.fol.solver import (SatResult, SatStatus, SolverConfig,
                              check_satisfiable, unfold_to_clauses)

__all__ = [
    'predicate_to_fol', 'rule_body_to_fol', 'fol_to_datalog',
    'ranf_to_datalog', 'BOTTOM', 'TOP', 'And', 'Bottom', 'Exists', 'FoAtom',
    'FoCmp', 'FoConst', 'FoEq', 'FoVar', 'Forall', 'Formula', 'Not', 'Or',
    'Top', 'free_variables', 'make_and', 'make_exists', 'make_or',
    'substitute', 'is_gnfo', 'why_not_gnfo', 'NOT_SAFE', 'is_safe_range',
    'range_restricted', 'to_ranf', 'to_srnf', 'SatResult', 'SatStatus',
    'SolverConfig', 'check_satisfiable', 'unfold_to_clauses',
]
