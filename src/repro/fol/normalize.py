"""Safe-range normal form (SRNF), range restriction, and RANF.

This module implements the Appendix-B pipeline used to materialise the
derived view definition:

1. :func:`to_srnf` — eliminate ∀ and push negation so no ∧/∨ sits directly
   below a ¬;
2. :func:`range_restricted` — the ``rr`` analysis (a set of variable names,
   or :data:`NOT_SAFE` when some quantified variable is unrestricted);
3. :func:`to_ranf` — rewrite a safe-range SRNF formula into relational
   algebra normal form via the push-into-or / push-into-quantifier /
   push-into-negated-quantifier rules.

The concrete choice the paper leaves nondeterministic ("choose a subset of
sibling conjuncts") is resolved by pushing *all* self-contained siblings,
which is always sufficient.
"""

from __future__ import annotations

from repro.errors import TransformationError
from repro.fol.formula import (BOTTOM, TOP, And, Bottom, Exists, FoAtom,
                               FoCmp, FoConst, FoEq, FoVar, Forall, Formula,
                               Not, Or, Top, free_variables, make_and,
                               make_exists, make_or)

__all__ = ['to_srnf', 'range_restricted', 'NOT_SAFE', 'is_safe_range',
           'to_ranf']


class _NotSafe:
    """Sentinel: some quantified variable is not range restricted (⊥ in
    Appendix B's lattice)."""

    def __repr__(self):
        return 'NOT_SAFE'


NOT_SAFE = _NotSafe()


# ---------------------------------------------------------------------------
# SRNF
# ---------------------------------------------------------------------------


def to_srnf(formula: Formula) -> Formula:
    """Rewrite into safe-range normal form.

    Applies ∀x.ψ ≡ ¬∃x.¬ψ, double-negation elimination, and De Morgan
    pushes so that no conjunction or disjunction occurs directly below a
    negation sign.
    """
    if isinstance(formula, (FoAtom, FoEq, FoCmp, Top, Bottom)):
        return formula
    if isinstance(formula, And):
        return make_and(to_srnf(p) for p in formula.parts)
    if isinstance(formula, Or):
        return make_or(to_srnf(p) for p in formula.parts)
    if isinstance(formula, Exists):
        return make_exists(formula.variables, to_srnf(formula.inner))
    if isinstance(formula, Forall):
        inner = to_srnf(Not(formula.inner))
        return to_srnf(Not(make_exists(formula.variables, inner)))
    if isinstance(formula, Not):
        inner = formula.inner
        if isinstance(inner, Not):
            return to_srnf(inner.inner)
        if isinstance(inner, And):
            return make_or(to_srnf(Not(p)) for p in inner.parts)
        if isinstance(inner, Or):
            return make_and(to_srnf(Not(p)) for p in inner.parts)
        if isinstance(inner, Forall):
            return to_srnf(make_exists(inner.variables, Not(inner.inner)))
        if isinstance(inner, Top):
            return BOTTOM
        if isinstance(inner, Bottom):
            return TOP
        if isinstance(inner, Exists):
            return Not(make_exists(inner.variables, to_srnf(inner.inner)))
        return Not(to_srnf(inner))
    raise TransformationError(f'unknown formula node {formula!r}')


# ---------------------------------------------------------------------------
# Range restriction (Appendix B)
# ---------------------------------------------------------------------------


def range_restricted(formula: Formula):
    """The set of range-restricted variables, or :data:`NOT_SAFE`."""
    if isinstance(formula, FoAtom):
        return {t.name for t in formula.args if isinstance(t, FoVar)}
    if isinstance(formula, FoEq):
        left, right = formula.left, formula.right
        if isinstance(left, FoVar) and isinstance(right, FoConst):
            return {left.name}
        if isinstance(right, FoVar) and isinstance(left, FoConst):
            return {right.name}
        return set()
    if isinstance(formula, (FoCmp, Top, Bottom)):
        return set()
    if isinstance(formula, Not):
        inner = range_restricted(formula.inner)
        if inner is NOT_SAFE:
            return NOT_SAFE
        return set()
    if isinstance(formula, And):
        restricted: set[str] = set()
        var_eqs: list[tuple[str, str]] = []
        for part in formula.parts:
            if isinstance(part, FoEq) and isinstance(part.left, FoVar) \
                    and isinstance(part.right, FoVar):
                var_eqs.append((part.left.name, part.right.name))
                continue
            inner = range_restricted(part)
            if inner is NOT_SAFE:
                return NOT_SAFE
            restricted |= inner
        changed = True
        while changed:
            changed = False
            for x, y in var_eqs:
                if (x in restricted) != (y in restricted):
                    restricted |= {x, y}
                    changed = True
        return restricted
    if isinstance(formula, Or):
        parts = [range_restricted(p) for p in formula.parts]
        if any(p is NOT_SAFE for p in parts):
            return NOT_SAFE
        result = parts[0]
        for p in parts[1:]:
            result = result & p
        return result
    if isinstance(formula, Exists):
        inner = range_restricted(formula.inner)
        if inner is NOT_SAFE:
            return NOT_SAFE
        names = {v.name for v in formula.variables}
        if not names <= inner:
            return NOT_SAFE
        return inner - names
    if isinstance(formula, Forall):
        raise TransformationError('apply to_srnf before range analysis')
    raise TransformationError(f'unknown formula node {formula!r}')


def is_safe_range(formula: Formula) -> bool:
    """True when ``rr(φ) = free(φ)`` (Appendix B)."""
    formula = to_srnf(formula)
    rr = range_restricted(formula)
    if rr is NOT_SAFE:
        return False
    return rr == free_variables(formula)


# ---------------------------------------------------------------------------
# RANF
# ---------------------------------------------------------------------------


def _self_contained(formula: Formula) -> bool:
    rr = range_restricted(formula)
    if rr is NOT_SAFE:
        return False
    return rr == free_variables(formula)


def to_ranf(formula: Formula) -> Formula:
    """Rewrite a safe-range SRNF formula into RANF.

    Raises :class:`TransformationError` when the input is not safe range.
    """
    if isinstance(formula, (FoAtom, FoEq, FoCmp, Top, Bottom)):
        return formula
    if isinstance(formula, Or):
        return make_or(to_ranf(p) for p in formula.parts)
    if isinstance(formula, Exists):
        return make_exists(formula.variables, to_ranf(formula.inner))
    if isinstance(formula, Not):
        # A bare negation is only self-contained when it has no free
        # variables (a boolean test); deeper guarding happens inside And.
        return Not(to_ranf(formula.inner))
    if isinstance(formula, And):
        return _ranf_and(formula)
    raise TransformationError(f'unknown formula node {formula!r}')


def _ranf_and(formula: And) -> Formula:
    parts = list(formula.parts)
    # The "environment": self-contained conjuncts that can be pushed into
    # problematic siblings.  Builtins (equalities/comparisons) stay inline —
    # the Datalog translation evaluates them within the conjunction.
    safe_env = [p for p in parts if _self_contained(p)]
    rewritten: list[Formula] = []
    for part in parts:
        if _self_contained(part) or isinstance(part, (FoEq, FoCmp)):
            rewritten.append(to_ranf(part))
            continue
        if isinstance(part, Not) and isinstance(part.inner, (FoEq, FoCmp,
                                                             FoAtom)):
            rewritten.append(part)
            continue
        rewritten.append(_push_env(part, safe_env))
    return make_and(rewritten)


def _push_env(part: Formula, env: list[Formula]) -> Formula:
    """Push the safe environment into a non-self-contained conjunct."""
    if not env:
        raise TransformationError(
            f'cannot make sub-formula self-contained (no safe siblings): '
            f'{part}')
    if isinstance(part, Or):
        # push-into-or
        return make_or(to_ranf(make_and([disjunct] + env))
                       for disjunct in part.parts)
    if isinstance(part, Exists):
        # push-into-quantifier (alpha-renaming bound variables that occur
        # free in the environment, to avoid capture)
        variables, inner = _alpha_away(part.variables, part.inner, env)
        return make_exists(variables, to_ranf(make_and([inner] + env)))
    if isinstance(part, Not):
        inner = part.inner
        if isinstance(inner, Exists):
            # push-into-negated-quantifier: p ∧ ¬∃x r ≡ p ∧ ¬∃x (p ∧ r)
            variables, body = _alpha_away(inner.variables, inner.inner, env)
            return Not(make_exists(variables,
                                   to_ranf(make_and([body] + env))))
        return Not(to_ranf(make_and([inner] + env)))
    if isinstance(part, And):
        return to_ranf(make_and(list(part.parts) + env))
    raise TransformationError(f'cannot rewrite sub-formula into RANF: {part}')


def _alpha_away(variables: tuple[FoVar, ...], inner: Formula,
                env: list[Formula]) -> tuple[tuple[FoVar, ...], Formula]:
    """Rename quantified ``variables`` that occur free in ``env`` so the
    environment can be pushed under the quantifier without capture."""
    from repro.fol.formula import fresh_fo_vars, substitute
    env_free: set[str] = set()
    for e in env:
        env_free |= free_variables(e)
    clash = {v.name for v in variables} & env_free
    if not clash:
        return variables, inner
    taken = env_free | free_variables(inner) | {v.name for v in variables}
    gen = fresh_fo_vars('RQ', set(taken))
    rename: dict[str, FoVar] = {}
    renamed_vars = []
    for v in variables:
        if v.name in clash:
            fresh = next(gen)
            rename[v.name] = fresh
            renamed_vars.append(fresh)
        else:
            renamed_vars.append(v)
    return tuple(renamed_vars), substitute(inner, rename)
