"""First-order formulas over relational signatures.

This is the logic substrate for the validation algorithm (§4): Datalog
queries are translated into FO formulas (Lemma 3.1), the steady-state view
conditions φ1/φ2/φ3 are FO formulas (Lemma 4.2), and the derived view
definition is obtained from a safe-range FO formula via Appendix B.

The AST mirrors the paper's grammar: relational atoms, equalities,
comparisons (``t1 < t2`` etc.), conjunction, disjunction, negation,
existential and universal quantification, and the constants ⊤/⊥.

All nodes are immutable; constructors perform light normalisation
(flattening nested ∧/∧ and ∨/∨, unit laws for ⊤/⊥) so that formulas built
programmatically stay readable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping, Union

__all__ = ['FoTerm', 'FoVar', 'FoConst', 'Formula', 'FoAtom', 'FoEq',
           'FoCmp', 'Not', 'And', 'Or', 'Exists', 'Forall', 'Top', 'Bottom',
           'TOP', 'BOTTOM', 'free_variables', 'substitute', 'make_and',
           'make_or', 'make_exists', 'fresh_fo_vars']


# ---------------------------------------------------------------------------
# Terms
# ---------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class FoVar:
    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True, slots=True)
class FoConst:
    value: Union[int, float, str]

    def __str__(self) -> str:
        if isinstance(self.value, str):
            return f"'{self.value}'"
        return repr(self.value)


FoTerm = Union[FoVar, FoConst]


def _subst_term(term: FoTerm, binding: Mapping[str, FoTerm]) -> FoTerm:
    if isinstance(term, FoVar):
        return binding.get(term.name, term)
    return term


def fresh_fo_vars(prefix: str, taken: set[str]) -> Iterator[FoVar]:
    """Fresh variables avoiding ``taken`` (which is updated as names are
    handed out)."""
    counter = 0
    while True:
        name = f'{prefix}{counter}'
        counter += 1
        if name in taken:
            continue
        taken.add(name)
        yield FoVar(name)


# ---------------------------------------------------------------------------
# Formulas
# ---------------------------------------------------------------------------


class Formula:
    """Abstract base for FO formulas (nodes defined below)."""

    __slots__ = ()

    # Convenience combinators -------------------------------------------------

    def __and__(self, other: 'Formula') -> 'Formula':
        return make_and([self, other])

    def __or__(self, other: 'Formula') -> 'Formula':
        return make_or([self, other])

    def __invert__(self) -> 'Formula':
        return Not(self)


@dataclass(frozen=True, slots=True)
class Top(Formula):
    def __str__(self) -> str:
        return '⊤'


@dataclass(frozen=True, slots=True)
class Bottom(Formula):
    def __str__(self) -> str:
        return '⊥'


TOP = Top()
BOTTOM = Bottom()


@dataclass(frozen=True, slots=True)
class FoAtom(Formula):
    """A relational atom ``pred(t1, ..., tk)``."""

    pred: str
    args: tuple[FoTerm, ...]

    def __post_init__(self):
        if not isinstance(self.args, tuple):
            object.__setattr__(self, 'args', tuple(self.args))

    def __str__(self) -> str:
        return f"{self.pred}({', '.join(str(a) for a in self.args)})"


@dataclass(frozen=True, slots=True)
class FoEq(Formula):
    left: FoTerm
    right: FoTerm

    def __str__(self) -> str:
        return f'{self.left} = {self.right}'


@dataclass(frozen=True, slots=True)
class FoCmp(Formula):
    """Comparison ``left op right`` with op in ``< > <= >=``."""

    op: str
    left: FoTerm
    right: FoTerm

    def __post_init__(self):
        if self.op not in ('<', '>', '<=', '>='):
            raise ValueError(f'bad comparison operator {self.op!r}')

    def __str__(self) -> str:
        return f'{self.left} {self.op} {self.right}'


@dataclass(frozen=True, slots=True)
class Not(Formula):
    inner: Formula

    def __str__(self) -> str:
        return f'¬({self.inner})'


@dataclass(frozen=True, slots=True)
class And(Formula):
    parts: tuple[Formula, ...]

    def __post_init__(self):
        if not isinstance(self.parts, tuple):
            object.__setattr__(self, 'parts', tuple(self.parts))

    def __str__(self) -> str:
        return ' ∧ '.join(f'({p})' for p in self.parts)


@dataclass(frozen=True, slots=True)
class Or(Formula):
    parts: tuple[Formula, ...]

    def __post_init__(self):
        if not isinstance(self.parts, tuple):
            object.__setattr__(self, 'parts', tuple(self.parts))

    def __str__(self) -> str:
        return ' ∨ '.join(f'({p})' for p in self.parts)


@dataclass(frozen=True, slots=True)
class Exists(Formula):
    variables: tuple[FoVar, ...]
    inner: Formula

    def __post_init__(self):
        if not isinstance(self.variables, tuple):
            object.__setattr__(self, 'variables', tuple(self.variables))

    def __str__(self) -> str:
        names = ' '.join(v.name for v in self.variables)
        return f'∃{names}.({self.inner})'


@dataclass(frozen=True, slots=True)
class Forall(Formula):
    variables: tuple[FoVar, ...]
    inner: Formula

    def __post_init__(self):
        if not isinstance(self.variables, tuple):
            object.__setattr__(self, 'variables', tuple(self.variables))

    def __str__(self) -> str:
        names = ' '.join(v.name for v in self.variables)
        return f'∀{names}.({self.inner})'


# ---------------------------------------------------------------------------
# Smart constructors
# ---------------------------------------------------------------------------


def make_and(parts: Iterable[Formula]) -> Formula:
    """Conjunction with flattening and ⊤/⊥ unit laws."""
    flat: list[Formula] = []
    for part in parts:
        if isinstance(part, Top):
            continue
        if isinstance(part, Bottom):
            return BOTTOM
        if isinstance(part, And):
            flat.extend(part.parts)
        else:
            flat.append(part)
    if not flat:
        return TOP
    if len(flat) == 1:
        return flat[0]
    return And(tuple(flat))


def make_or(parts: Iterable[Formula]) -> Formula:
    """Disjunction with flattening and ⊤/⊥ unit laws."""
    flat: list[Formula] = []
    for part in parts:
        if isinstance(part, Bottom):
            continue
        if isinstance(part, Top):
            return TOP
        if isinstance(part, Or):
            flat.extend(part.parts)
        else:
            flat.append(part)
    if not flat:
        return BOTTOM
    if len(flat) == 1:
        return flat[0]
    return Or(tuple(flat))


def make_exists(variables: Iterable[FoVar], inner: Formula) -> Formula:
    """Existential closure, dropping variables not free in ``inner`` and
    collapsing nested ∃."""
    if isinstance(inner, (Top, Bottom)):
        return inner
    free = free_variables(inner)
    kept = tuple(v for v in variables if v.name in free)
    if isinstance(inner, Exists):
        kept = kept + inner.variables
        inner = inner.inner
    if not kept:
        return inner
    # Deduplicate while preserving order.
    seen: set[str] = set()
    unique = []
    for v in kept:
        if v.name not in seen:
            seen.add(v.name)
            unique.append(v)
    return Exists(tuple(unique), inner)


# ---------------------------------------------------------------------------
# Traversals
# ---------------------------------------------------------------------------


def free_variables(formula: Formula) -> set[str]:
    if isinstance(formula, (Top, Bottom)):
        return set()
    if isinstance(formula, FoAtom):
        return {t.name for t in formula.args if isinstance(t, FoVar)}
    if isinstance(formula, (FoEq, FoCmp)):
        return {t.name for t in (formula.left, formula.right)
                if isinstance(t, FoVar)}
    if isinstance(formula, Not):
        return free_variables(formula.inner)
    if isinstance(formula, (And, Or)):
        result: set[str] = set()
        for part in formula.parts:
            result |= free_variables(part)
        return result
    if isinstance(formula, (Exists, Forall)):
        inner = free_variables(formula.inner)
        return inner - {v.name for v in formula.variables}
    raise TypeError(f'unknown formula node {formula!r}')


def substitute(formula: Formula, binding: Mapping[str, FoTerm]) -> Formula:
    """Capture-avoiding substitution of free variables.

    Bound variables shadow the binding; when a bound variable collides with
    a term introduced by the binding it is renamed first.
    """
    if isinstance(formula, (Top, Bottom)):
        return formula
    if isinstance(formula, FoAtom):
        return FoAtom(formula.pred,
                      tuple(_subst_term(t, binding) for t in formula.args))
    if isinstance(formula, FoEq):
        return FoEq(_subst_term(formula.left, binding),
                    _subst_term(formula.right, binding))
    if isinstance(formula, FoCmp):
        return FoCmp(formula.op, _subst_term(formula.left, binding),
                     _subst_term(formula.right, binding))
    if isinstance(formula, Not):
        return Not(substitute(formula.inner, binding))
    if isinstance(formula, And):
        return make_and(substitute(p, binding) for p in formula.parts)
    if isinstance(formula, Or):
        return make_or(substitute(p, binding) for p in formula.parts)
    if isinstance(formula, (Exists, Forall)):
        bound_names = {v.name for v in formula.variables}
        relevant = {name: term for name, term in binding.items()
                    if name not in bound_names}
        if not relevant:
            return formula
        # Rename bound variables that would capture substituted terms.
        introduced: set[str] = set()
        for term in relevant.values():
            if isinstance(term, FoVar):
                introduced.add(term.name)
        clash = bound_names & introduced
        variables = formula.variables
        inner = formula.inner
        if clash:
            taken = (free_variables(formula.inner) | introduced |
                     bound_names | set(relevant))
            renames: dict[str, FoTerm] = {}
            new_vars = []
            gen = fresh_fo_vars('RN', set(taken))
            for v in variables:
                if v.name in clash:
                    fresh = next(gen)
                    renames[v.name] = fresh
                    new_vars.append(fresh)
                else:
                    new_vars.append(v)
            inner = substitute(inner, renames)
            variables = tuple(new_vars)
        node = Exists if isinstance(formula, Exists) else Forall
        return node(variables, substitute(inner, relevant))
    raise TypeError(f'unknown formula node {formula!r}')
