"""Bounded satisfiability checking for Datalog queries under constraints.

The paper discharges its validation checks (well-definedness, GetPut,
PutGet, steady-state existence — §4) to a decision procedure for guarded
negation first-order logic, implemented with Z3.  This module is the
offline substitute: a *bounded model search* that decides

    "is there a database D, satisfying all ⊥-constraints, on which the
     Datalog query (program, goal) returns a nonempty relation?"

Two complementary search strategies are used, both returning *verified*
witnesses (every candidate is checked by exact bottom-up evaluation, so a
SAT answer is always sound):

1. **Canonical-instance enumeration** — the query is unfolded into clauses
   (conjunctions of positive EDB atoms, builtins, and negated checks);
   for each clause, variable partitions are enumerated (merging variables
   in every way, up to a size cap), comparison constraints are solved by
   synthesizing witness values, and the frozen positive atoms become a
   candidate database.  This mirrors the canonical-database argument
   underlying GNFO's finite model property and finds tiny witnesses fast.
2. **Randomized search** — random small databases over the program's
   constant pool plus fresh values, as a safety net for clauses whose
   canonical instance violates a constraint that a different instance
   would satisfy.

A ``SAT`` verdict carries the witness database.  An ``UNSAT`` verdict is
*bounded*: no model exists within the explored space.  For LVGN-Datalog
(where the paper proves decidability and counterexamples are small) this
is reported as conclusive by the validation layer; for programs outside
the fragment it mirrors the paper's semi-decision via a theorem prover.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass, field
from enum import Enum
from typing import Iterable, Iterator, Sequence

from repro.datalog.ast import (Atom, BuiltinLit, Const, Lit, Literal,
                               Program, Rule, Var)
from repro.datalog.evaluator import constraint_violations, evaluate
from repro.errors import ReproError, SchemaError
from repro.relational.database import Database
from repro.relational.schema import AttributeType, DatabaseSchema

__all__ = ['SolverConfig', 'SatStatus', 'SatResult', 'check_satisfiable',
           'unfold_to_clauses', 'Clause']


# ---------------------------------------------------------------------------
# Configuration and results
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SolverConfig:
    """Search bounds.  The defaults catch every invalid strategy mutation in
    the test suite while keeping validation times in the paper's "a few
    seconds" ballpark."""

    max_clauses: int = 4000
    max_partition_vars: int = 7
    max_partitions_per_clause: int = 880
    random_trials: int = 120
    max_relation_size: int = 3
    seed: int = 2020  # the paper's year; any fixed seed works

    def scaled_down(self) -> 'SolverConfig':
        return SolverConfig(max_clauses=self.max_clauses // 4 or 1,
                            max_partition_vars=self.max_partition_vars,
                            max_partitions_per_clause=64,
                            random_trials=self.random_trials // 4 or 1,
                            max_relation_size=self.max_relation_size,
                            seed=self.seed)


class SatStatus(Enum):
    SAT = 'sat'
    UNSAT = 'unsat (bounded search)'


@dataclass(frozen=True)
class SatResult:
    status: SatStatus
    witness: Database | None = None
    goal: str | None = None
    method: str = ''

    @property
    def is_sat(self) -> bool:
        return self.status is SatStatus.SAT

    def __str__(self) -> str:
        if self.is_sat:
            return (f'SAT({self.goal}) via {self.method}\n'
                    f'witness:\n{self.witness}')
        return f'UNSAT({self.goal}) within bounds'


# ---------------------------------------------------------------------------
# Clause unfolding
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Clause:
    """One disjunct of the unfolded query: a conjunction of positive EDB
    atoms, builtin literals, and negated relational checks."""

    pos_atoms: tuple[Atom, ...]
    builtins: tuple[BuiltinLit, ...]
    neg_atoms: tuple[Atom, ...]

    def variables(self) -> set[str]:
        names: set[str] = set()
        for atom in self.pos_atoms + self.neg_atoms:
            names |= atom.var_names()
        for b in self.builtins:
            names |= b.var_names()
        return names


def unfold_to_clauses(program: Program, goal: str,
                      max_clauses: int = 4000) -> list[Clause]:
    """Unfold the positive part of the query ``(program, goal)`` into
    clauses.  Positive IDB atoms are expanded through their defining rules
    (DNF product); negated atoms are kept as checks (they are re-verified
    by exact evaluation on each candidate).
    """
    idb = program.idb_preds()
    counter = itertools.count()

    def rename_rule(rule: Rule) -> Rule:
        suffix = next(counter)
        binding = {name: Var(f'{name}#{suffix}')
                   for name in rule.variables()}
        return rule.substitute(binding)

    def expand(literals: Sequence[Literal],
               depth: int) -> Iterator[tuple[list[Atom], list[BuiltinLit],
                                             list[Atom]]]:
        if not literals:
            yield [], [], []
            return
        first, rest = literals[0], literals[1:]
        for pos, blt, neg in expand(rest, depth):
            if isinstance(first, BuiltinLit):
                yield pos, [first] + blt, neg
            elif not first.positive:
                yield pos, blt, [first.atom] + neg
            elif first.atom.pred in idb and depth > 0:
                for rule in program.rules_for(first.atom.pred):
                    fresh = rename_rule(rule)
                    # Unify head with the atom via equalities.
                    eqs = [BuiltinLit('=', a, h) for a, h in
                           zip(first.atom.args, fresh.head.args)]
                    sub = list(fresh.body)
                    for spos, sblt, sneg in expand(sub, depth - 1):
                        yield pos + spos, eqs + blt + sblt, neg + sneg
            else:
                yield [first.atom] + pos, blt, neg

    clauses: list[Clause] = []
    for rule in program.rules_for(goal):
        fresh = rename_rule(rule)
        for pos, blt, neg in expand(list(fresh.body), depth=12):
            clauses.append(Clause(tuple(pos), tuple(blt), tuple(neg)))
            if len(clauses) >= max_clauses:
                return clauses
    return clauses


# ---------------------------------------------------------------------------
# Variable partitions
# ---------------------------------------------------------------------------


def _set_partitions(items: list[str]) -> Iterator[list[list[str]]]:
    """All partitions of ``items`` (Bell-number many), smallest blocks
    first for the singleton partition to come out early."""
    if not items:
        yield []
        return
    first, rest = items[0], items[1:]
    for partition in _set_partitions(rest):
        # New singleton block.
        yield [[first]] + partition
        for i in range(len(partition)):
            yield (partition[:i] + [[first] + partition[i]] +
                   partition[i + 1:])


def _candidate_partitions(variables: list[str], config: SolverConfig,
                          rng: random.Random
                          ) -> Iterator[list[list[str]]]:
    if len(variables) <= config.max_partition_vars:
        count = 0
        for partition in _set_partitions(variables):
            yield partition
            count += 1
            if count >= config.max_partitions_per_clause:
                return
        return
    # Too many variables for exhaustive enumeration: identity partition,
    # all single-pair merges, and a handful of random coarser partitions.
    yield [[v] for v in variables]
    for a, b in itertools.combinations(variables, 2):
        merged = [[x] for x in variables if x not in (a, b)]
        yield merged + [[a, b]]
    for _ in range(32):
        blocks: list[list[str]] = []
        for v in variables:
            if blocks and rng.random() < 0.35:
                rng.choice(blocks).append(v)
            else:
                blocks.append([v])
        yield blocks


# ---------------------------------------------------------------------------
# Value synthesis for comparison constraints
# ---------------------------------------------------------------------------


_FRESH_BASE = {'int': 10_000, 'float': 10_000.0, 'string': 'zz'}


def _type_of_value(value) -> str:
    if isinstance(value, bool):
        raise SchemaError('boolean constants are not supported')
    if isinstance(value, int):
        return 'int'
    if isinstance(value, float):
        return 'float'
    return 'string'


def _midpoint(low, high, type_name: str):
    """A value strictly between ``low`` and ``high``, or None."""
    if type_name == 'int':
        if high - low >= 2:
            return (low + high) // 2
        return None
    if type_name == 'float':
        mid = (low + high) / 2
        if low < mid < high:
            return mid
        return None
    # Strings: try extending the lower bound.
    for suffix in ('m', 'a', '0', '~'):
        candidate = low + suffix
        if low < candidate < high:
            return candidate
    if len(high) > 1 and low < high[:-1] < high:
        return high[:-1]
    return None


def _below(high, type_name: str):
    if type_name == 'int':
        return high - 1
    if type_name == 'float':
        return high - 1.0
    if high > ' ':
        return ' '
    return None


def _above(low, type_name: str):
    if type_name == 'int':
        return low + 1
    if type_name == 'float':
        return low + 1.0
    return low + 'z'


def _synthesize(lowers: list, uppers: list, type_name: str, fresh_index: int):
    """A value satisfying all ``(bound, strict)`` constraints, or None.

    When unconstrained, returns a fresh value outside the usual constant
    pools (so negated equalities against constants hold).
    """
    try:
        low = max(lowers, key=lambda b: b[0]) if lowers else None
        high = min(uppers, key=lambda b: b[0]) if uppers else None
    except TypeError:
        return None  # mixed-type bounds
    # The bounds' own value type overrides a weaker inference.
    anchor = low or high
    if anchor is not None:
        bound_type = _type_of_value(anchor[0])
        if bound_type != type_name:
            type_name = bound_type
        if low is not None and high is not None and \
                _type_of_value(low[0]) != _type_of_value(high[0]):
            return None
    # Prefer satisfying a loose bound with equality — cheapest witness.
    if low is not None and not low[1] and _respects(low[0], lowers, uppers):
        return low[0]
    if high is not None and not high[1] and _respects(high[0], lowers,
                                                      uppers):
        return high[0]
    if low is not None and high is not None:
        return _midpoint(low[0], high[0], type_name)
    if low is not None:
        return _above(low[0], type_name)
    if high is not None:
        return _below(high[0], type_name)
    base = _FRESH_BASE[type_name]
    if type_name == 'string':
        return f'{base}{fresh_index}'
    return base + fresh_index


def _respects(value, lowers: list, uppers: list) -> bool:
    try:
        for bound, strict in lowers:
            if value < bound or (strict and value == bound):
                return False
        for bound, strict in uppers:
            if value > bound or (strict and value == bound):
                return False
    except TypeError:
        return False
    return True


# ---------------------------------------------------------------------------
# Candidate construction from a clause + partition
# ---------------------------------------------------------------------------


class _Inconsistent(ReproError):
    pass


class _UnionFind:

    def __init__(self, items: Iterable[str]):
        self.parent = {i: i for i in items}

    def find(self, x: str) -> str:
        while self.parent[x] != x:
            self.parent[x] = self.parent[self.parent[x]]
            x = self.parent[x]
        return x

    def union(self, a: str, b: str) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            self.parent[ra] = rb


def _build_assignment(clause: Clause, partition: list[list[str]],
                      types: dict[str, str], fresh_offset: int
                      ) -> dict[str, object] | None:
    """Assign a concrete value to every clause variable, honouring the
    partition, equalities, disequalities and comparisons.  Returns None
    when inconsistent (caller tries the next partition)."""
    variables = sorted(clause.variables())
    uf = _UnionFind(variables)
    for block in partition:
        for other in block[1:]:
            uf.union(block[0], other)

    const_of: dict[str, object] = {}
    diseq: list[tuple[str, str]] = []          # var-class vs var-class
    diseq_const: list[tuple[str, object]] = []  # var-class vs constant
    # Bounds per variable class: lists of (('const', value) | ('var', name),
    # strict?) entries.
    lowers: dict[str, list] = {}
    uppers: dict[str, list] = {}

    def operand(term):
        if isinstance(term, Const):
            return ('const', term.value)
        return ('var', term.name)

    def add_bound(kind: dict, var: str, other, strict: bool) -> None:
        kind.setdefault(var, []).append((other, strict))

    for b in clause.builtins:
        blt = b if b.positive else b.normalized()
        left = operand(blt.left)
        right = operand(blt.right)
        if blt.op == '=':
            if left[0] == 'const' and right[0] == 'const':
                if left[1] != right[1]:
                    return None
            elif left[0] == 'var' and right[0] == 'var':
                uf.union(left[1], right[1])
            else:
                var = left[1] if left[0] == 'var' else right[1]
                const = left[1] if left[0] == 'const' else right[1]
                const_of.setdefault(var, const)
                if const_of[var] != const:
                    return None
        elif blt.op == '<>':
            if left[0] == 'const' and right[0] == 'const':
                if left[1] == right[1]:
                    return None
            elif left[0] == 'var' and right[0] == 'var':
                diseq.append((left[1], right[1]))
            else:
                var = left[1] if left[0] == 'var' else right[1]
                const = left[1] if left[0] == 'const' else right[1]
                diseq_const.append((var, const))
        else:
            strict = blt.op in ('<', '>')
            if blt.op in ('<', '<='):
                smaller, larger = left, right
            else:
                smaller, larger = right, left
            if smaller[0] == 'const' and larger[0] == 'const':
                if strict and not smaller[1] < larger[1]:
                    return None
                if not strict and not smaller[1] <= larger[1]:
                    return None
            elif smaller[0] == 'var':
                add_bound(uppers, smaller[1], larger, strict)
                if larger[0] == 'var':
                    add_bound(lowers, larger[1], smaller, strict)
            else:
                add_bound(lowers, larger[1], smaller, strict)

    # Re-canonicalise constants after the unions above.
    resolved: dict[str, object] = {}
    for var, const in const_of.items():
        root = uf.find(var)
        if root in resolved and resolved[root] != const:
            return None
        resolved[root] = const

    def class_bounds(kind: dict, root: str, assignment: dict) -> list:
        """Concrete (value, strict) bounds for a class, resolving variable
        bounds via already-assigned classes (unassigned ones are deferred
        to the residual check)."""
        bounds = []
        for var in variables:
            if uf.find(var) != root:
                continue
            for other, strict in kind.get(var, ()):
                if other[0] == 'const':
                    bounds.append((other[1], strict))
                else:
                    other_root = uf.find(other[1])
                    if other_root in assignment:
                        bounds.append((assignment[other_root], strict))
                    elif other_root in resolved:
                        bounds.append((resolved[other_root], strict))
        return bounds

    assignment: dict[str, object] = {}
    fresh_index = fresh_offset
    roots = sorted({uf.find(v) for v in variables})
    for root in roots:
        if root in resolved:
            assignment[root] = resolved[root]
    for root in roots:
        if root in assignment:
            continue
        type_name = types.get(root, None)
        if type_name is None:
            # Any member of the class may carry the type hint.
            for var in variables:
                if uf.find(var) == root and var in types:
                    type_name = types[var]
                    break
            type_name = type_name or 'string'
        lo = class_bounds(lowers, root, assignment)
        hi = class_bounds(uppers, root, assignment)
        value = _synthesize(lo, hi, type_name, fresh_index)
        fresh_index += 7
        if value is None:
            return None
        assignment[root] = value

    # Residual checks over the complete assignment.
    full = {v: assignment[uf.find(v)] for v in variables}
    for a, b in diseq:
        if full[a] == full[b]:
            return None
    for var, const in diseq_const:
        if full[var] == const:
            return None
    try:
        for var, bounds in lowers.items():
            for other, strict in bounds:
                low = other[1] if other[0] == 'const' else full[other[1]]
                if full[var] < low or (strict and full[var] == low):
                    return None
        for var, bounds in uppers.items():
            for other, strict in bounds:
                high = other[1] if other[0] == 'const' else full[other[1]]
                if full[var] > high or (strict and full[var] == high):
                    return None
    except TypeError:
        return None

    return full


def _infer_types(program: Program, schema: DatabaseSchema | None,
                 clause: Clause) -> dict[str, str]:
    """Best-effort type per clause variable: schema column type where the
    variable occurs, else the type of a constant it is compared with."""
    types: dict[str, str] = {}

    def schema_type(pred: str, pos: int) -> str | None:
        if schema is None:
            return None
        from repro.datalog.ast import delta_base
        name = delta_base(pred)
        if name not in schema:
            return None
        declared = schema[name].types[pos]
        if declared == AttributeType.DATE:
            return 'string'
        if declared == AttributeType.FLOAT:
            return 'float'
        if declared == AttributeType.INT:
            return 'int'
        return 'string'

    for atom in clause.pos_atoms + clause.neg_atoms:
        for pos, term in enumerate(atom.args):
            if isinstance(term, Var):
                inferred = schema_type(atom.pred, pos)
                if inferred:
                    types.setdefault(term.name, inferred)
    for b in clause.builtins:
        terms = (b.left, b.right)
        consts = [t for t in terms if isinstance(t, Const)]
        for t in terms:
            if isinstance(t, Var) and consts:
                types.setdefault(t.name, _type_of_value(consts[0].value))
    return types


# ---------------------------------------------------------------------------
# Candidate verification
# ---------------------------------------------------------------------------


def _verify(program: Program, goal: str, candidate: Database,
            constraints: Program | None) -> bool:
    """Exact check: the goal is derivable and no constraint is violated."""
    try:
        idb = evaluate(program, candidate)
    except (SchemaError, ReproError):
        return False
    if not idb[goal]:
        return False
    if constraints is not None and constraints.constraints():
        try:
            if constraint_violations(constraints, candidate):
                return False
        except (SchemaError, ReproError):
            return False
    return True


# ---------------------------------------------------------------------------
# Randomized search
# ---------------------------------------------------------------------------


def _value_pool(program: Program, schema: DatabaseSchema | None
                ) -> dict[str, list]:
    pools: dict[str, list] = {'int': [0, 1, 2], 'float': [0.0, 1.5],
                              'string': ['a', 'b', 'c']}
    for const in program.constants():
        pools[_type_of_value(const.value)].append(const.value)
        # Neighbouring values make comparison boundaries reachable.
        if isinstance(const.value, int) and not isinstance(const.value, bool):
            pools['int'] += [const.value - 1, const.value + 1]
        elif isinstance(const.value, float):
            pools['float'] += [const.value - 0.5, const.value + 0.5]
        elif isinstance(const.value, str):
            pools['string'] += [const.value + 'z']
    for name in pools:
        pools[name] = sorted(set(pools[name]))
    return pools


def _random_database(rng: random.Random, arities: dict[str, int],
                     types_by_pred: dict[str, tuple[str, ...]],
                     pools: dict[str, list], max_size: int) -> Database:
    data: dict[str, set] = {}
    for pred, arity in arities.items():
        rows: set[tuple] = set()
        for _ in range(rng.randint(0, max_size)):
            row = []
            col_types = types_by_pred.get(pred)
            for pos in range(arity):
                type_name = col_types[pos] if col_types else 'string'
                row.append(rng.choice(pools[type_name]))
            rows.add(tuple(row))
        data[pred] = rows
    return Database.from_dict(data)


# ---------------------------------------------------------------------------
# Entry point
# ---------------------------------------------------------------------------


def check_satisfiable(program: Program, goal: str, *,
                      constraints: Program | None = None,
                      schema: DatabaseSchema | None = None,
                      edb_arities: dict[str, int] | None = None,
                      config: SolverConfig | None = None) -> SatResult:
    """Search for a database making ``goal`` nonempty under constraints.

    ``program`` holds the rules (possibly including ⊥ rules, which are
    treated as constraints together with any in ``constraints``).
    ``schema`` (optional) supplies column types for value synthesis;
    ``edb_arities`` (optional) adds EDB relations that should exist in
    randomized candidates even when no clause mentions them.
    """
    config = config or SolverConfig()
    rng = random.Random(config.seed)

    constraint_rules = list(program.constraints())
    if constraints is not None:
        constraint_rules += list(constraints.constraints())
    # One program carrying every rule: evaluation-time constraint checking
    # needs the IDB definitions in scope.
    all_rules = Program(tuple(program.proper_rules()) +
                        (tuple(constraints.proper_rules())
                         if constraints is not None else ()) +
                        tuple(constraint_rules))
    eval_program = Program(tuple(dict.fromkeys(all_rules.rules)))

    clauses = unfold_to_clauses(program, goal, config.max_clauses)

    # -- pass 1: canonical instances -------------------------------------
    for clause in clauses:
        variables = sorted(clause.variables())
        types = _infer_types(program, schema, clause)
        fresh_offset = 1
        for partition in _candidate_partitions(variables, config, rng):
            try:
                assignment = _build_assignment(clause, partition, types,
                                               fresh_offset)
            except _Inconsistent:
                assignment = None
            fresh_offset += len(variables) * 7 + 1
            if assignment is None:
                continue
            data: dict[str, set] = {}
            ok = True
            for atom in clause.pos_atoms:
                row = []
                for term in atom.args:
                    if isinstance(term, Const):
                        row.append(term.value)
                    else:
                        row.append(assignment[term.name])
                data.setdefault(atom.pred, set()).add(tuple(row))
            if not ok:
                continue
            candidate = Database.from_dict(data)
            if _verify(eval_program, goal, candidate, eval_program):
                return SatResult(SatStatus.SAT, candidate, goal,
                                 'canonical instance')

    # -- pass 2: randomized search ------------------------------------------
    arities = dict(program.arities())
    if constraints is not None:
        for pred, arity in constraints.arities().items():
            arities.setdefault(pred, arity)
    if edb_arities:
        for pred, arity in edb_arities.items():
            arities.setdefault(pred, arity)
    edb_names = set(arities) - eval_program.idb_preds()
    edb_arities_only = {p: arities[p] for p in edb_names}
    pools = _value_pool(all_rules, schema)
    types_by_pred: dict[str, tuple[str, ...]] = {}
    if schema is not None:
        from repro.datalog.ast import delta_base
        for pred, arity in edb_arities_only.items():
            base = delta_base(pred)
            if base in schema:
                mapped = []
                for declared in schema[base].types:
                    if declared == AttributeType.INT:
                        mapped.append('int')
                    elif declared == AttributeType.FLOAT:
                        mapped.append('float')
                    else:
                        mapped.append('string')
                types_by_pred[pred] = tuple(mapped)
    for _ in range(config.random_trials):
        candidate = _random_database(rng, edb_arities_only, types_by_pred,
                                     pools, config.max_relation_size)
        if _verify(eval_program, goal, candidate, eval_program):
            return SatResult(SatStatus.SAT, candidate, goal,
                             'randomized search')

    return SatResult(SatStatus.UNSAT, None, goal, 'bounded search')
