"""Translation of nonrecursive Datalog queries into FO formulas.

Implements the construction in the proof of Lemma 3.1: for an IDB predicate
``r`` defined by rules ``r(~X) :- body_i``, the formula is::

    ϕ_r(~X) = ∨_i ∃ ~E_i . ∧_j β_{i,j}

where each body literal becomes an atom / negated formula / equality /
comparison and bound variables (those not in the head) are existentially
quantified.  IDB body atoms are unfolded recursively (the program must be
nonrecursive).  Head constants and repeated head variables are normalised
into equalities against a canonical variable tuple.
"""

from __future__ import annotations

from repro.datalog.ast import (Atom, BuiltinLit, Const, Lit, Program, Rule,
                               Var)
from repro.datalog.dependency import check_nonrecursive
from repro.errors import TransformationError
from repro.fol.formula import (BOTTOM, FoAtom, FoCmp, FoConst, FoEq, FoTerm,
                               FoVar, Formula, Not, free_variables, make_and,
                               make_exists, make_or, substitute)

__all__ = ['predicate_to_fol', 'rule_body_to_fol', 'literal_to_fol',
           'term_to_fol']


def term_to_fol(term) -> FoTerm:
    if isinstance(term, Var):
        return FoVar(term.name)
    if isinstance(term, Const):
        return FoConst(term.value)
    raise TransformationError(f'unknown Datalog term {term!r}')


def literal_to_fol(literal, idb_unfold=None) -> Formula:
    """Translate one body literal.

    ``idb_unfold(pred, args) -> Formula | None`` supplies unfolding for IDB
    predicates; ``None`` keeps the atom opaque (EDB).
    """
    if isinstance(literal, Lit):
        args = tuple(term_to_fol(t) for t in literal.atom.args)
        inner = None
        if idb_unfold is not None:
            inner = idb_unfold(literal.atom.pred, args)
        if inner is None:
            inner = FoAtom(literal.atom.pred, args)
        if literal.positive:
            return inner
        # Anonymous variables inside a negated atom are existentially
        # quantified *inside* the negation: not r(X, _) ≡ ¬∃Y r(X, Y).
        from repro.datalog.ast import is_anonymous
        anon = tuple(FoVar(t.name) for t in literal.atom.args
                     if is_anonymous(t))
        if anon:
            inner = make_exists(anon, inner)
        return Not(inner)
    if isinstance(literal, BuiltinLit):
        left = term_to_fol(literal.left)
        right = term_to_fol(literal.right)
        if literal.op == '=':
            inner = FoEq(left, right)
        else:
            inner = FoCmp(literal.op, left, right)
        return inner if literal.positive else Not(inner)
    raise TransformationError(f'unknown literal {literal!r}')


def rule_body_to_fol(rule: Rule, head_vars: tuple[FoVar, ...],
                     idb_unfold=None) -> Formula:
    """FO formula for a single rule, with head arguments normalised to the
    canonical tuple ``head_vars`` (∃-closing body-only variables)."""
    if rule.head is None:
        raise TransformationError('constraint rules have no head formula; '
                                  'translate the body directly')
    if len(head_vars) != rule.head.arity:
        raise TransformationError(
            f'canonical tuple of length {len(head_vars)} does not match '
            f'head {rule.head}')
    head_names = {v.name for v in head_vars}
    # Standardize apart: body variables colliding with canonical names that
    # are NOT the intended head occurrence get renamed first.
    rename: dict[str, object] = {}
    taken = set(rule.variables()) | head_names
    counter = 0
    for name in sorted(rule.variables()):
        if name in head_names:
            while f'B{counter}' in taken:
                counter += 1
            rename[name] = Var(f'B{counter}')
            taken.add(f'B{counter}')
            counter += 1
    renamed = rule.substitute(rename) if rename else rule

    equalities: list[Formula] = []
    for canon, term in zip(head_vars, renamed.head.args):
        equalities.append(FoEq(canon, term_to_fol(term)))
    body = [literal_to_fol(l, idb_unfold) for l in renamed.body]
    conjunction = make_and(equalities + body)
    bound = sorted(free_variables(conjunction) - head_names)
    return make_exists(tuple(FoVar(n) for n in bound), conjunction)


def predicate_to_fol(program: Program, pred: str,
                     canonical: tuple[FoVar, ...] | None = None,
                     edb: set[str] | None = None) -> tuple[tuple[FoVar, ...],
                                                           Formula]:
    """FO formula equivalent to the Datalog query ``(program, pred)``.

    Every predicate not defined by ``program`` (or listed in ``edb``) stays
    an opaque relational atom.  Returns ``(canonical_vars, formula)``; the
    formula's free variables are exactly the canonical variables.
    """
    check_nonrecursive(program)
    arities = program.arities()
    if pred not in arities:
        raise TransformationError(f'predicate {pred!r} not used in program')
    arity = arities[pred]
    if canonical is None:
        canonical = tuple(FoVar(f'X{i}') for i in range(arity))
    idb = program.idb_preds()
    if edb is not None:
        idb = idb - set(edb)

    cache: dict[tuple, Formula] = {}

    def unfold(name: str, args: tuple[FoTerm, ...]):
        if name not in idb:
            return None
        base_vars = tuple(FoVar(f'U{name}_{i}') for i in range(len(args)))
        key = (name, len(args))
        if key not in cache:
            rules = program.rules_for(name)
            if not rules:
                cache[key] = BOTTOM
            else:
                cache[key] = make_or(
                    rule_body_to_fol(r, base_vars, unfold) for r in rules)
        formula = cache[key]
        binding = {v.name: arg for v, arg in zip(base_vars, args)}
        return substitute(formula, binding)

    result = unfold(pred, canonical)
    if result is None:
        # The goal itself is EDB: identity query.
        result = FoAtom(pred, canonical)
    return canonical, result
