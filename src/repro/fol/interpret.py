"""Direct model checking of FO formulas over finite databases.

``satisfies(db, formula, binding)`` decides ``D ⊨ φ[binding]`` by
structural recursion, quantifying over the database's *active domain*
plus the formula's own constants — the standard finite-model semantics
underlying safe-range queries (Appendix B) and the GNFO satisfiability
arguments (Lemma 3.1).

This module is the independent referee for the translation pipeline: the
test suite checks ``Datalog → FO → Datalog`` round-trips against it, so a
bug would have to hit the evaluator, the translators *and* this
interpreter consistently to go unnoticed.
"""

from __future__ import annotations

from typing import Iterable, Mapping

from repro.errors import SchemaError, TransformationError
from repro.fol.formula import (And, Bottom, Exists, FoAtom, FoCmp, FoConst,
                               FoEq, FoVar, Forall, Formula, Not, Or, Top,
                               free_variables)
from repro.relational.database import Database

__all__ = ['satisfies', 'answers', 'active_domain']


def _formula_constants(formula: Formula) -> set:
    if isinstance(formula, FoAtom):
        return {t.value for t in formula.args if isinstance(t, FoConst)}
    if isinstance(formula, (FoEq, FoCmp)):
        return {t.value for t in (formula.left, formula.right)
                if isinstance(t, FoConst)}
    if isinstance(formula, Not):
        return _formula_constants(formula.inner)
    if isinstance(formula, (And, Or)):
        result: set = set()
        for part in formula.parts:
            result |= _formula_constants(part)
        return result
    if isinstance(formula, (Exists, Forall)):
        return _formula_constants(formula.inner)
    return set()


def active_domain(db: Database, formula: Formula | None = None) -> set:
    """The database's active domain, extended with the formula's
    constants (quantifiers range over this set)."""
    domain = db.active_domain()
    if formula is not None:
        domain |= _formula_constants(formula)
    return domain


def _value(term, binding: Mapping[str, object]):
    if isinstance(term, FoConst):
        return term.value
    try:
        return binding[term.name]
    except KeyError:
        raise TransformationError(
            f'free variable {term.name} has no binding') from None


def _compare(op: str, left, right) -> bool:
    numeric = (int, float)
    same_type = (isinstance(left, numeric) and isinstance(right, numeric)) \
        or (isinstance(left, str) and isinstance(right, str))
    if not same_type:
        raise SchemaError(f'cannot compare {left!r} with {right!r}')
    if op == '<':
        return left < right
    if op == '>':
        return left > right
    if op == '<=':
        return left <= right
    return left >= right


def satisfies(db: Database, formula: Formula,
              binding: Mapping[str, object] | None = None,
              domain: Iterable | None = None) -> bool:
    """Decide ``D ⊨ φ[binding]`` with active-domain quantification."""
    binding = dict(binding or {})
    if domain is None:
        domain = active_domain(db, formula)
    domain = list(domain)

    def check(node: Formula, env: dict) -> bool:
        if isinstance(node, Top):
            return True
        if isinstance(node, Bottom):
            return False
        if isinstance(node, FoAtom):
            row = tuple(_value(t, env) for t in node.args)
            return row in db[node.pred]
        if isinstance(node, FoEq):
            return _value(node.left, env) == _value(node.right, env)
        if isinstance(node, FoCmp):
            return _compare(node.op, _value(node.left, env),
                            _value(node.right, env))
        if isinstance(node, Not):
            return not check(node.inner, env)
        if isinstance(node, And):
            return all(check(part, env) for part in node.parts)
        if isinstance(node, Or):
            return any(check(part, env) for part in node.parts)
        if isinstance(node, Exists):
            return _quantify(node, env, any)
        if isinstance(node, Forall):
            return _quantify(node, env, all)
        raise TransformationError(f'unknown formula node {node!r}')

    def _quantify(node, env: dict, combine) -> bool:
        names = [v.name for v in node.variables]

        def assignments(index: int):
            if index == len(names):
                yield env
                return
            for value in domain:
                env[names[index]] = value
                yield from assignments(index + 1)
            env.pop(names[index], None)

        def results():
            for assignment in assignments(0):
                yield check(node.inner, dict(assignment))

        return combine(results())

    return check(formula, binding)


def answers(db: Database, formula: Formula,
            variables: tuple[FoVar, ...] | None = None,
            domain: Iterable | None = None) -> frozenset:
    """All tuples ``~t`` over the active domain with ``D ⊨ φ(~t)``.

    For safe-range formulas this coincides with the Datalog query result
    (the equivalence of Appendix B); for unsafe formulas it is the
    active-domain semantics.
    """
    if variables is None:
        variables = tuple(FoVar(n) for n in sorted(free_variables(formula)))
    if domain is None:
        domain = active_domain(db, formula)
    domain = list(domain)
    names = [v.name for v in variables]
    result: set[tuple] = set()

    def enumerate_bindings(index: int, binding: dict):
        if index == len(names):
            try:
                if satisfies(db, formula, binding, domain):
                    result.add(tuple(binding[n] for n in names))
            except SchemaError:
                pass  # ill-typed assignment: cannot satisfy comparisons
            return
        for value in domain:
            binding[names[index]] = value
            enumerate_bindings(index + 1, binding)
        binding.pop(names[index], None)

    enumerate_bindings(0, {})
    return frozenset(result)
