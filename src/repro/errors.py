"""Exception hierarchy for the repro (BIRDS reproduction) library.

Every error raised by the library derives from :class:`ReproError` so that
applications can catch library failures with a single ``except`` clause while
still being able to distinguish parse errors from semantic ones.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class DatalogSyntaxError(ReproError):
    """Raised by the lexer/parser on malformed Datalog source text.

    Carries the 1-based ``line`` and ``column`` of the offending token when
    available so that editors and tests can point at the exact location.
    """

    def __init__(self, message: str, line: int | None = None,
                 column: int | None = None):
        location = ''
        if line is not None:
            location = f' at line {line}'
            if column is not None:
                location += f', column {column}'
        super().__init__(message + location)
        self.message = message
        self.line = line
        self.column = column

    def __reduce__(self):
        # Exceptions pickle through ``(cls, self.args)`` by default,
        # which would re-run __init__ on the already-located message
        # (doubling the location) and drop line/column.  The process
        # pool ships exceptions between worker and coordinator, so the
        # round trip must be exact.
        return (type(self), (self.message, self.line, self.column))


class SafetyError(ReproError):
    """A Datalog rule violates the safety (range restriction) condition."""


class RecursionError_(ReproError):
    """The program is recursive; this library handles nonrecursive Datalog."""


class SchemaError(ReproError):
    """A predicate is used with the wrong arity, or a schema is inconsistent."""


class FragmentError(ReproError):
    """A program falls outside a required language fragment (e.g. LVGN)."""


class ContradictionError(ReproError):
    """A computed delta inserts and deletes the same tuple (Def. 3.1)."""

    def __init__(self, relation: str, tuples: frozenset):
        preview = sorted(tuples)[:5]
        super().__init__(
            f'putback program is not well defined: delta for relation '
            f'{relation!r} both inserts and deletes tuple(s) {preview}')
        self.relation = relation
        self.tuples = tuples

    def __reduce__(self):
        # args holds the formatted message, not (relation, tuples) —
        # reconstruct from the real attributes so the process pool's
        # exception round trip is exact (see DatalogSyntaxError).
        return (type(self), (self.relation, self.tuples))


class ValidationError(ReproError):
    """A view update strategy failed validation (Algorithm 1)."""


class ConstraintViolation(ReproError):
    """A view update violates a declared integrity constraint (⊥ rule)."""

    def __init__(self, constraint: str, witness=None):
        message = f'view update rejected: constraint violated: {constraint}'
        if witness is not None:
            message += f' (witness: {witness})'
        super().__init__(message)
        self.constraint = constraint
        self.witness = witness

    def __reduce__(self):
        # See DatalogSyntaxError: reconstruct from the originating
        # attributes, not the formatted args, so pickling is exact.
        return (type(self), (self.constraint, self.witness))


class ViewUpdateError(ReproError):
    """A DML statement against a view could not be translated to the source."""


class ShardUnavailableError(ReproError):
    """A shard's worker process died (or its RPC channel broke) while a
    request was outstanding.  The cluster transaction that hit it is
    rolled back on every other shard; the pool restarts the worker so
    the *next* transaction finds a serving (catalog-recovered) shard.
    """

    def __init__(self, shard: int, reason: str = ''):
        message = f'shard {shard} worker is unavailable'
        if reason:
            message += f': {reason}'
        super().__init__(message)
        self.shard = shard
        self.reason = reason

    def __reduce__(self):
        return (type(self), (self.shard, self.reason))


class TransformationError(ReproError):
    """A formula transformation (SRNF/RANF/FO→Datalog) cannot proceed."""


class SolverLimitError(ReproError):
    """The bounded satisfiability search exceeded its configured limits."""
