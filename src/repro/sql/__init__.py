"""SQL compilation: Datalog → SQL queries, view DDL, trigger programs
(§6.1 of the paper)."""

from repro.sql.ddl import create_schema, create_table, create_view
from repro.sql.translate import (POSTGRES, SQLITE, ColumnNamer, SqlDialect,
                                 constraint_to_sql, dialect_by_name,
                                 plan_to_sql, program_to_ctes, query_to_sql,
                                 rule_to_select, sql_literal)
from repro.sql.triggers import (compile_strategy_to_sql,
                                constraint_checks_sql, delta_queries_sql,
                                trigger_program)

__all__ = [
    'create_schema', 'create_table', 'create_view', 'ColumnNamer',
    'SqlDialect', 'POSTGRES', 'SQLITE', 'dialect_by_name',
    'program_to_ctes', 'query_to_sql', 'constraint_to_sql', 'plan_to_sql',
    'rule_to_select', 'sql_literal',
    'compile_strategy_to_sql', 'constraint_checks_sql',
    'delta_queries_sql', 'trigger_program',
]
