"""Translation of nonrecursive Datalog queries to SQL (§6.1).

Nonrecursive Datalog with negation maps onto SQL directly: each IDB
predicate becomes a CTE (``WITH`` clause) holding the ``UNION`` of its
rules; each rule becomes a ``SELECT`` with

* one ``FROM`` alias per positive body atom,
* ``WHERE`` equalities for join variables / constants,
* builtin predicates as comparisons, and
* ``NOT EXISTS`` subqueries for negated atoms (unbound anonymous
  variables inside a negated atom simply contribute no condition —
  the ¬∃ semantics).

Column naming uses the relation schema when available and ``c0..cN``
otherwise.  The output dialect is PostgreSQL.
"""

from __future__ import annotations

from repro.datalog.ast import (Atom, BuiltinLit, Const, Lit, Program, Rule,
                               Var, is_anonymous)
from repro.datalog.dependency import stratify
from repro.errors import TransformationError
from repro.relational.schema import DatabaseSchema

__all__ = ['sql_literal', 'rule_to_select', 'query_to_sql',
           'program_to_ctes', 'ColumnNamer']


def sql_literal(value) -> str:
    """Render a constant as a SQL literal."""
    if isinstance(value, str):
        escaped = value.replace("'", "''")
        return f"'{escaped}'"
    if isinstance(value, float):
        return repr(value)
    return str(value)


def sql_ident(name: str) -> str:
    """Render a predicate name as a SQL identifier (delta prefixes and the
    ``__nu`` suffix become readable name parts)."""
    if name.startswith('+'):
        return f'delta_ins_{name[1:]}'
    if name.startswith('-'):
        return f'delta_del_{name[1:]}'
    return name


class ColumnNamer:
    """Column names per relation: schema attributes when known."""

    def __init__(self, schema: DatabaseSchema | None = None,
                 extra: dict[str, tuple[str, ...]] | None = None):
        self.schema = schema
        self.extra = extra or {}

    def columns(self, pred: str, arity: int) -> tuple[str, ...]:
        from repro.datalog.ast import delta_base
        if pred in self.extra:
            return self.extra[pred]
        base = delta_base(pred)
        if self.schema is not None and base in self.schema:
            return self.schema[base].attributes
        return tuple(f'c{i}' for i in range(arity))


def _expr_map(rule: Rule, namer: ColumnNamer,
              aliases: list[tuple[str, Atom]]) -> dict[str, str]:
    """Map each variable to a SQL expression (alias.column or literal)."""
    exprs: dict[str, str] = {}
    for alias, atom in aliases:
        cols = namer.columns(atom.pred, atom.arity)
        for col, term in zip(cols, atom.args):
            if isinstance(term, Var) and term.name not in exprs:
                exprs[term.name] = f'{alias}.{col}'
    # Equalities can bind further variables (X = 'a', X = Y).
    changed = True
    while changed:
        changed = False
        for literal in rule.body:
            if not isinstance(literal, BuiltinLit) or literal.op != '=' \
                    or not literal.positive:
                continue
            left, right = literal.left, literal.right
            for a, b in ((left, right), (right, left)):
                if isinstance(a, Var) and a.name not in exprs:
                    if isinstance(b, Const):
                        exprs[a.name] = sql_literal(b.value)
                        changed = True
                    elif isinstance(b, Var) and b.name in exprs:
                        exprs[a.name] = exprs[b.name]
                        changed = True
    return exprs


def _term_expr(term, exprs: dict[str, str]) -> str | None:
    if isinstance(term, Const):
        return sql_literal(term.value)
    if term.name in exprs:
        return exprs[term.name]
    return None


def rule_to_select(rule: Rule, namer: ColumnNamer,
                   head_columns: tuple[str, ...] | None = None) -> str:
    """One rule as a ``SELECT`` statement."""
    positives = [l.atom for l in rule.body
                 if isinstance(l, Lit) and l.positive]
    aliases = [(f't{i}', atom) for i, atom in enumerate(positives)]
    exprs = _expr_map(rule, namer, aliases)
    conditions: list[str] = []

    # Join conditions: repeated variables and constants inside atoms.
    seen: dict[str, str] = {}
    for alias, atom in aliases:
        cols = namer.columns(atom.pred, atom.arity)
        for col, term in zip(cols, atom.args):
            place = f'{alias}.{col}'
            if isinstance(term, Const):
                conditions.append(f'{place} = {sql_literal(term.value)}')
            else:
                if term.name in seen and seen[term.name] != place:
                    conditions.append(f'{seen[term.name]} = {place}')
                else:
                    seen.setdefault(term.name, place)

    op_map = {'=': '=', '<': '<', '>': '>', '<=': '<=', '>=': '>='}
    for literal in rule.body:
        if isinstance(literal, BuiltinLit):
            left = _term_expr(literal.left, exprs)
            right = _term_expr(literal.right, exprs)
            if left is None or right is None:
                raise TransformationError(
                    f'builtin {literal} has an unbound operand in rule '
                    f'{rule}')
            clause = f'{left} {op_map[literal.op]} {right}'
            if literal.op == '=' and literal.positive and left == right:
                continue  # tautology introduced by the expression map
            conditions.append(clause if literal.positive
                              else f'NOT ({clause})')
        elif not literal.positive:
            atom = literal.atom
            cols = namer.columns(atom.pred, atom.arity)
            sub_conditions = []
            for col, term in zip(cols, atom.args):
                if isinstance(term, Var) and is_anonymous(term) \
                        and term.name not in exprs:
                    continue  # wildcard inside ¬∃
                expr = _term_expr(term, exprs)
                if expr is None:
                    raise TransformationError(
                        f'negated atom {atom} has unbound variable {term} '
                        f'in rule {rule}')
                sub_conditions.append(f's.{col} = {expr}')
            where = (' WHERE ' + ' AND '.join(sub_conditions)
                     if sub_conditions else '')
            conditions.append(
                f'NOT EXISTS (SELECT 1 FROM {sql_ident(atom.pred)} s'
                f'{where})')

    if head_columns is None:
        head_columns = tuple(f'c{i}' for i in range(rule.head.arity))
    select_items = []
    for col, term in zip(head_columns, rule.head.args):
        expr = _term_expr(term, exprs)
        if expr is None:
            raise TransformationError(
                f'head term {term} of rule {rule} is unbound')
        select_items.append(f'{expr} AS {col}')
    select = 'SELECT DISTINCT ' + ', '.join(select_items)
    if aliases:
        select += '\n  FROM ' + ', '.join(
            f'{sql_ident(atom.pred)} {alias}' for alias, atom in aliases)
    if conditions:
        select += '\n  WHERE ' + '\n    AND '.join(conditions)
    return select


def program_to_ctes(program: Program, namer: ColumnNamer) -> list[tuple[str,
                                                                        str]]:
    """``(name, select)`` pairs for every IDB predicate, in evaluation
    order (ready to join into a ``WITH`` clause)."""
    proper = program.without_constraints()
    arities = proper.arities()
    ctes: list[tuple[str, str]] = []
    for pred in stratify(proper):
        cols = namer.columns(pred, arities[pred])
        selects = [rule_to_select(rule, namer, cols)
                   for rule in proper.rules_for(pred)]
        ctes.append((sql_ident(pred), '\nUNION\n'.join(selects)))
    return ctes


def query_to_sql(program: Program, goal: str,
                 namer: ColumnNamer | None = None,
                 schema: DatabaseSchema | None = None) -> str:
    """A complete ``WITH ... SELECT`` statement for a Datalog query."""
    namer = namer or ColumnNamer(schema)
    ctes = program_to_ctes(program, namer)
    goal_ident = sql_ident(goal)
    relevant = [(name, body) for name, body in ctes]
    if not relevant:
        raise TransformationError(f'no rules define {goal!r}')
    with_items = ',\n'.join(f'{name} AS (\n{body}\n)'
                            for name, body in relevant)
    return f'WITH {with_items}\nSELECT * FROM {goal_ident}'
