"""Translation of nonrecursive Datalog queries to SQL (§6.1).

Nonrecursive Datalog with negation maps onto SQL directly: each IDB
predicate becomes a CTE (``WITH`` clause) holding the ``UNION`` of its
rules; each rule becomes a ``SELECT`` with

* one ``FROM`` alias per positive body atom,
* ``WHERE`` equalities for join variables / constants,
* builtin predicates as comparisons, and
* ``NOT EXISTS`` subqueries for negated atoms (unbound anonymous
  variables inside a negated atom simply contribute no condition —
  the ¬∃ semantics).

Column naming uses the relation schema when available and ``c0..cN``
otherwise.  Two output dialects are supported: PostgreSQL (the paper's
target, the default) and SQLite (the storage backend of
:mod:`repro.rdbms.backends.sqlite`, which executes compiled plans as
SQL).  The ``WITH`` clause of a translated query contains only the
CTEs in the goal's dependency cone, so per-goal queries (one per delta
relation, one per constraint) stay independent and minimal.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.datalog.ast import (Atom, BuiltinLit, Const, Lit, Program, Rule,
                               Var, is_anonymous)
from repro.datalog.dependency import stratify
from repro.errors import TransformationError
from repro.relational.schema import DatabaseSchema

__all__ = ['SqlDialect', 'POSTGRES', 'SQLITE', 'dialect_by_name',
           'sql_literal', 'rule_to_select', 'query_to_sql',
           'constraint_witness', 'constraint_to_sql', 'plan_to_sql',
           'program_to_ctes', 'relevant_predicates', 'ColumnNamer']


@dataclass(frozen=True)
class SqlDialect:
    """The few rendering choices that differ between target engines."""

    name: str
    true_literal: str = 'TRUE'
    false_literal: str = 'FALSE'


POSTGRES = SqlDialect('postgresql')
#: SQLite has no boolean literals before 3.23 and stores 1/0 regardless.
SQLITE = SqlDialect('sqlite', true_literal='1', false_literal='0')

_DIALECTS = {d.name: d for d in (POSTGRES, SQLITE)}


def dialect_by_name(name: str) -> SqlDialect:
    try:
        return _DIALECTS[name]
    except KeyError:
        raise TransformationError(
            f'unknown SQL dialect {name!r}; expected one of '
            f'{sorted(_DIALECTS)}') from None


def sql_literal(value, dialect: SqlDialect = POSTGRES) -> str:
    """Render a constant as a SQL literal.

    Booleans render per dialect (``TRUE`` on PostgreSQL, ``1`` on
    SQLite) and must be tested before ints — ``bool`` is an ``int``
    subclass.  ``None`` renders as ``NULL``.
    """
    if value is None:
        return 'NULL'
    if isinstance(value, bool):
        return dialect.true_literal if value else dialect.false_literal
    if isinstance(value, str):
        escaped = value.replace("'", "''")
        return f"'{escaped}'"
    if isinstance(value, float):
        return repr(value)
    return str(value)


def sql_ident(name: str) -> str:
    """Render a predicate name as a SQL identifier (delta prefixes and the
    ``__nu`` suffix become readable name parts)."""
    if name.startswith('+'):
        return f'delta_ins_{name[1:]}'
    if name.startswith('-'):
        return f'delta_del_{name[1:]}'
    return name


class ColumnNamer:
    """Column names per relation: schema attributes when known.

    ``extra`` maps predicate names to explicit column tuples; a delta
    predicate (``+v``/``-v``) inherits the columns of its base relation
    from either source, so the staged delta tables of the SQLite backend
    line up with the compiled queries by construction.
    """

    def __init__(self, schema: DatabaseSchema | None = None,
                 extra: dict[str, tuple[str, ...]] | None = None):
        self.schema = schema
        self.extra = extra or {}

    def columns(self, pred: str, arity: int) -> tuple[str, ...]:
        from repro.datalog.ast import delta_base
        if pred in self.extra:
            return self.extra[pred]
        base = delta_base(pred)
        if base in self.extra:
            return self.extra[base]
        if self.schema is not None and base in self.schema:
            return self.schema[base].attributes
        return tuple(f'c{i}' for i in range(arity))


def _expr_map(rule: Rule, namer: ColumnNamer,
              aliases: list[tuple[str, Atom]],
              dialect: SqlDialect) -> dict[str, str]:
    """Map each variable to a SQL expression (alias.column or literal)."""
    exprs: dict[str, str] = {}
    for alias, atom in aliases:
        cols = namer.columns(atom.pred, atom.arity)
        for col, term in zip(cols, atom.args):
            if isinstance(term, Var) and term.name not in exprs:
                exprs[term.name] = f'{alias}.{col}'
    # Equalities can bind further variables (X = 'a', X = Y).
    changed = True
    while changed:
        changed = False
        for literal in rule.body:
            if not isinstance(literal, BuiltinLit) or literal.op != '=' \
                    or not literal.positive:
                continue
            left, right = literal.left, literal.right
            for a, b in ((left, right), (right, left)):
                if isinstance(a, Var) and a.name not in exprs:
                    if isinstance(b, Const):
                        exprs[a.name] = sql_literal(b.value, dialect)
                        changed = True
                    elif isinstance(b, Var) and b.name in exprs:
                        exprs[a.name] = exprs[b.name]
                        changed = True
    return exprs


def _term_expr(term, exprs: dict[str, str],
               dialect: SqlDialect) -> str | None:
    if isinstance(term, Const):
        return sql_literal(term.value, dialect)
    if term.name in exprs:
        return exprs[term.name]
    return None


def rule_to_select(rule: Rule, namer: ColumnNamer,
                   head_columns: tuple[str, ...] | None = None,
                   dialect: SqlDialect = POSTGRES) -> str:
    """One rule as a ``SELECT`` statement."""
    positives = [l.atom for l in rule.body
                 if isinstance(l, Lit) and l.positive]
    aliases = [(f't{i}', atom) for i, atom in enumerate(positives)]
    exprs = _expr_map(rule, namer, aliases, dialect)
    conditions: list[str] = []

    # Join conditions: repeated variables and constants inside atoms.
    seen: dict[str, str] = {}
    for alias, atom in aliases:
        cols = namer.columns(atom.pred, atom.arity)
        for col, term in zip(cols, atom.args):
            place = f'{alias}.{col}'
            if isinstance(term, Const):
                conditions.append(
                    f'{place} = {sql_literal(term.value, dialect)}')
            else:
                if term.name in seen and seen[term.name] != place:
                    conditions.append(f'{seen[term.name]} = {place}')
                else:
                    seen.setdefault(term.name, place)

    op_map = {'=': '=', '<': '<', '>': '>', '<=': '<=', '>=': '>='}
    for literal in rule.body:
        if isinstance(literal, BuiltinLit):
            left = _term_expr(literal.left, exprs, dialect)
            right = _term_expr(literal.right, exprs, dialect)
            if left is None or right is None:
                raise TransformationError(
                    f'builtin {literal} has an unbound operand in rule '
                    f'{rule}')
            clause = f'{left} {op_map[literal.op]} {right}'
            if literal.op == '=' and literal.positive and left == right:
                continue  # tautology introduced by the expression map
            conditions.append(clause if literal.positive
                              else f'NOT ({clause})')
        elif not literal.positive:
            atom = literal.atom
            cols = namer.columns(atom.pred, atom.arity)
            sub_conditions = []
            for col, term in zip(cols, atom.args):
                if isinstance(term, Var) and is_anonymous(term) \
                        and term.name not in exprs:
                    continue  # wildcard inside ¬∃
                expr = _term_expr(term, exprs, dialect)
                if expr is None:
                    raise TransformationError(
                        f'negated atom {atom} has unbound variable {term} '
                        f'in rule {rule}')
                sub_conditions.append(f's.{col} = {expr}')
            where = (' WHERE ' + ' AND '.join(sub_conditions)
                     if sub_conditions else '')
            conditions.append(
                f'NOT EXISTS (SELECT 1 FROM {sql_ident(atom.pred)} s'
                f'{where})')

    if head_columns is None:
        head_columns = tuple(f'c{i}' for i in range(rule.head.arity))
    select_items = []
    for col, term in zip(head_columns, rule.head.args):
        expr = _term_expr(term, exprs, dialect)
        if expr is None:
            raise TransformationError(
                f'head term {term} of rule {rule} is unbound')
        select_items.append(f'{expr} AS {col}')
    select = 'SELECT DISTINCT ' + ', '.join(select_items)
    if aliases:
        select += '\n  FROM ' + ', '.join(
            f'{sql_ident(atom.pred)} {alias}' for alias, atom in aliases)
    if conditions:
        select += '\n  WHERE ' + '\n    AND '.join(conditions)
    return select


def _dependency_cone(program: Program, goals) -> Program:
    """The constraint-free subprogram transitively needed for ``goals``
    (reusing the evaluator's :func:`prune_unreachable`)."""
    from repro.datalog.transform import prune_unreachable
    return prune_unreachable(program.without_constraints(), set(goals))


def relevant_predicates(program: Program, goals) -> set[str]:
    """The IDB predicates in the dependency cone of ``goals``: the goals
    themselves plus every IDB predicate they transitively read.  Only
    these need a CTE in a query computing the goals."""
    return _dependency_cone(program, goals).idb_preds()


def program_to_ctes(program: Program, namer: ColumnNamer,
                    dialect: SqlDialect = POSTGRES) -> list[tuple[str,
                                                                  str]]:
    """``(name, select)`` pairs for every IDB predicate, in evaluation
    order (ready to join into a ``WITH`` clause)."""
    proper = program.without_constraints()
    arities = proper.arities()
    ctes: list[tuple[str, str]] = []
    for pred in stratify(proper):
        cols = namer.columns(pred, arities[pred])
        selects = [rule_to_select(rule, namer, cols, dialect)
                   for rule in proper.rules_for(pred)]
        ctes.append((sql_ident(pred), '\nUNION\n'.join(selects)))
    return ctes


def query_to_sql(program: Program, goal: str,
                 namer: ColumnNamer | None = None,
                 schema: DatabaseSchema | None = None,
                 dialect: SqlDialect = POSTGRES) -> str:
    """A complete ``WITH ... SELECT`` statement for a Datalog query.

    The ``WITH`` clause is pruned to the goal's dependency cone, so a
    program defining many delta relations compiles into one lean query
    per goal rather than one query carrying every CTE — and rules
    outside the cone may contain constructs SQL lowering rejects
    without poisoning the query.
    """
    namer = namer or ColumnNamer(schema)
    cone = _dependency_cone(program, {goal})
    if goal not in cone.idb_preds():
        raise TransformationError(f'no rules define {goal!r}')
    ctes = program_to_ctes(cone, namer, dialect)
    goal_ident = sql_ident(goal)
    with_items = ',\n'.join(f'{name} AS (\n{body}\n)'
                            for name, body in ctes)
    return f'WITH {with_items}\nSELECT * FROM {goal_ident}'


def constraint_witness(rule: Rule, goal: str = '__viol__'
                       ) -> tuple[Rule, tuple[str, ...]]:
    """The witness-query rewrite for one ⊥-rule: a probe rule whose head
    lists the body's named variables in sorted order (the plan
    compiler's convention), plus matching ``v0..vN`` column names.

    A constraint whose variables are all anonymous still needs one
    ``SELECT`` item to be expressible in SQL — its witness head is the
    constant ``1``.
    """
    if rule.head is not None:
        raise TransformationError(f'{rule} is not a constraint rule')
    names = sorted(n for n in rule.variables() if not n.startswith('_'))
    args: tuple = tuple(Var(n) for n in names) or (Const(1),)
    head_cols = tuple(f'v{i}' for i in range(len(args)))
    return Rule(Atom(goal, args), rule.body), head_cols


def constraint_to_sql(program: Program, rule: Rule,
                      namer: ColumnNamer | None = None,
                      schema: DatabaseSchema | None = None,
                      dialect: SqlDialect = POSTGRES) -> str:
    """A witness query for one ⊥-rule of ``program``.

    The constraint body is compiled as a ``SELECT`` over the body's
    named variables (sorted, as in the plan compiler's witness rewrite);
    the ``WITH`` clause carries exactly the IDB cone the body reads.
    The query returns one row per violation witness — wrap it in
    ``EXISTS`` or fetch a row to report.
    """
    namer = namer or ColumnNamer(schema)
    witness, head_cols = constraint_witness(rule)
    ctes = program_to_ctes(_dependency_cone(program, rule.body_preds()),
                           namer, dialect)
    select = rule_to_select(witness, namer, head_cols, dialect)
    if not ctes:
        return select
    with_items = ',\n'.join(f'{name} AS (\n{body}\n)'
                            for name, body in ctes)
    return f'WITH {with_items}\n{select}'


def plan_to_sql(plan, goal: str,
                namer: ColumnNamer | None = None,
                schema: DatabaseSchema | None = None,
                dialect: SqlDialect = POSTGRES) -> str:
    """Lower one goal of a compiled :class:`ExecutionPlan` to SQL.

    Plans carry their source program verbatim, so the lowering runs on
    the same artifact the interpreter executes — the SQLite backend
    compiles each view's plans through this entry point exactly once, at
    ``define_view`` time, and executes the resulting text on every
    update thereafter.
    """
    return query_to_sql(plan.program, goal, namer, schema, dialect)
