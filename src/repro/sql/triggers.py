"""Trigger-program generation: updatable views in PostgreSQL (§6.1).

For a validated strategy the compiler emits one SQL script containing

1. ``CREATE VIEW`` from the (derived or confirmed) view definition;
2. a trigger procedure implementing the paper's three steps — derive the
   view deltas from the DML statement, check the ⊥-constraints, compute
   and apply the source delta relations;
3. the ``INSTEAD OF INSERT OR UPDATE OR DELETE`` trigger wiring.

The delta-relation queries inside the procedure are real SQL translated
from the (optionally incrementalized) putback program; the updated view is
exposed to them as the CTE ``<view>_updated`` (original view minus the
deletion set, union the insertion set) so that the very same Datalog rules
run unchanged.

The emitted script is what the paper measures in Table 1's "Compiled SQL"
column; this library executes the equivalent pipeline natively in
:mod:`repro.rdbms` (the PostgreSQL substitution documented in DESIGN.md).
"""

from __future__ import annotations

from repro.core.incremental import incrementalize
from repro.core.lvgn import is_lvgn
from repro.core.strategy import UpdateStrategy
from repro.datalog.ast import (Program, delete_pred, delta_base,
                               insert_pred)
from repro.datalog.pretty import pretty_rule
from repro.errors import ValidationError
from repro.sql.ddl import create_view
from repro.sql.translate import ColumnNamer, program_to_ctes, query_to_sql

__all__ = ['compile_strategy_to_sql', 'trigger_program',
           'constraint_checks_sql', 'delta_queries_sql']


def _namer(strategy: UpdateStrategy, extra: dict | None = None
           ) -> ColumnNamer:
    extras = {strategy.view.name: strategy.view.attributes}
    ins = insert_pred(strategy.view.name)
    dele = delete_pred(strategy.view.name)
    extras[ins] = strategy.view.attributes
    extras[dele] = strategy.view.attributes
    if extra:
        extras.update(extra)
    return ColumnNamer(strategy.sources, extra=extras)


def constraint_checks_sql(strategy: UpdateStrategy) -> list[tuple[str, str]]:
    """``(constraint_text, exists_query)`` pairs for every ⊥-rule.

    The query selects a witness of the violation over the *updated* view
    (``<view>_updated``), to be wrapped in ``IF EXISTS (...) THEN RAISE``
    by the caller.
    """
    from repro.datalog.transform import rename_predicates
    from repro.sql.translate import constraint_witness
    view = strategy.view.name
    updated = f'{view}_updated'
    checks: list[tuple[str, str]] = []
    intermediates = Program(strategy.intermediate_rules())
    for index, rule in enumerate(strategy.constraints()):
        goal = f'violation_{index}'
        # Anonymous variables inside negated atoms never bind: they
        # cannot appear in the witness columns.
        probe, head_cols = constraint_witness(rule, goal)
        program = rename_predicates(
            Program(intermediates.rules + (probe,)), {view: updated})
        extra_cols = {goal: head_cols,
                      updated: strategy.view.attributes}
        check_namer = _namer(strategy, extra_cols)
        checks.append((pretty_rule(rule),
                       query_to_sql(program, goal, check_namer)))
    return checks


def delta_queries_sql(strategy: UpdateStrategy, *,
                      incremental: bool = False) -> list[tuple[str, str]]:
    """``(delta_predicate, sql)`` for each source delta relation.

    With ``incremental=True`` the queries come from the incrementalized
    program ``∂put`` and read the view-delta temporaries
    ``delta_ins_<view>`` / ``delta_del_<view>`` instead of the full view.
    """
    from repro.datalog.transform import prune_unreachable, rename_predicates
    view = strategy.view.name
    if incremental:
        program = Program(incrementalize(strategy.putdelta,
                                         view).proper_rules())
        extra_cols = {}
    else:
        # The full putback program reads the *updated* view.
        updated = f'{view}_updated'
        program = rename_predicates(
            Program(strategy.putdelta.proper_rules()), {view: updated})
        extra_cols = {updated: strategy.view.attributes}
    namer = _namer(strategy, extra_cols)
    results: list[tuple[str, str]] = []
    for pred in sorted(strategy.delta_preds()):
        if not program.rules_for(pred):
            continue  # dropped by incrementalization (no view dependence)
        sub_program = prune_unreachable(program, {pred})
        results.append((pred, query_to_sql(sub_program, pred, namer)))
    return results


def trigger_program(strategy: UpdateStrategy, *,
                    incremental: bool = True) -> str:
    """The trigger procedure + trigger DDL for one updatable view."""
    view = strategy.view.name
    cols = strategy.view.attributes
    col_list = ', '.join(cols)
    lines: list[str] = []
    lines.append(f'-- Trigger machinery for updatable view {view}')
    lines.append(f'CREATE TEMP TABLE IF NOT EXISTS delta_ins_{view} '
                 f'(LIKE {view});')
    lines.append(f'CREATE TEMP TABLE IF NOT EXISTS delta_del_{view} '
                 f'(LIKE {view});')
    lines.append('')
    lines.append(f'CREATE OR REPLACE FUNCTION {view}_update_strategy()')
    lines.append('RETURNS trigger LANGUAGE plpgsql AS $$')
    lines.append('BEGIN')
    lines.append('  -- Step 1: derive view deltas from the DML statement')
    lines.append('  IF TG_OP = \'INSERT\' OR TG_OP = \'UPDATE\' THEN')
    lines.append(f'    INSERT INTO delta_ins_{view} SELECT NEW.*;')
    lines.append(f'    DELETE FROM delta_del_{view} d WHERE ROW(d.*) = '
                 f'ROW(NEW.*);')
    lines.append('  END IF;')
    lines.append('  IF TG_OP = \'DELETE\' OR TG_OP = \'UPDATE\' THEN')
    lines.append(f'    INSERT INTO delta_del_{view} SELECT OLD.*;')
    lines.append(f'    DELETE FROM delta_ins_{view} d WHERE ROW(d.*) = '
                 f'ROW(OLD.*);')
    lines.append('  END IF;')
    lines.append('')
    lines.append(f'  -- Updated view contents: ({view} \\ Δ-) ∪ Δ+')
    lines.append(f'  CREATE TEMP TABLE {view}_updated AS')
    lines.append(f'    SELECT {col_list} FROM {view}')
    lines.append(f'    EXCEPT SELECT {col_list} FROM delta_del_{view}')
    lines.append(f'    UNION  SELECT {col_list} FROM delta_ins_{view};')
    lines.append('')
    lines.append('  -- Step 2: integrity constraints on the updated view')
    for text, query in constraint_checks_sql(strategy):
        indented = '\n    '.join(query.splitlines())
        lines.append(f'  IF EXISTS (\n    {indented}\n  ) THEN')
        lines.append(f'    RAISE EXCEPTION \'Invalid view update: '
                     f'constraint "{text}" violated\';')
        lines.append('  END IF;')
    lines.append('')
    lines.append('  -- Step 3: compute and apply source delta relations')
    for pred, query in delta_queries_sql(strategy,
                                         incremental=incremental):
        base = delta_base(pred)
        from repro.sql.translate import sql_ident
        temp = sql_ident(pred)
        indented = '\n    '.join(query.splitlines())
        lines.append(f'  CREATE TEMP TABLE {temp}_result AS\n    '
                     f'{indented};')
        if pred.startswith('-'):
            lines.append(f'  DELETE FROM {base} WHERE ROW({base}.*) IN '
                         f'(SELECT ROW(r.*) FROM {temp}_result r);')
        else:
            lines.append(f'  INSERT INTO {base} SELECT * FROM '
                         f'{temp}_result;')
        lines.append(f'  DROP TABLE {temp}_result;')
    lines.append(f'  DROP TABLE {view}_updated;')
    lines.append('  RETURN NULL;')
    lines.append('END;')
    lines.append('$$;')
    lines.append('')
    lines.append(f'CREATE TRIGGER {view}_update_strategy_trigger')
    lines.append(f'INSTEAD OF INSERT OR UPDATE OR DELETE ON {view}')
    lines.append('FOR EACH ROW')
    lines.append(f'EXECUTE PROCEDURE {view}_update_strategy();')
    return '\n'.join(lines)


def compile_strategy_to_sql(strategy: UpdateStrategy,
                            get_program: Program | None = None, *,
                            incremental: bool = True) -> str:
    """Full compilation: view DDL + trigger machinery (§6.1).

    ``get_program`` defaults to the strategy's expected view definition;
    pass ``ValidationReport.view_definition`` to compile the certified
    one.
    """
    get_program = get_program or strategy.expected_get
    if get_program is None:
        raise ValidationError(
            f'no view definition available for {strategy.view.name!r}: '
            f'validate the strategy first and pass report.view_definition')
    view_sql = create_view(strategy.view, get_program, strategy.sources)
    triggers = trigger_program(strategy, incremental=incremental)
    header = (f'-- Compiled by repro (BIRDS reproduction) — updatable view '
              f'{strategy.view.name}\n')
    return f'{header}\n{view_sql}\n\n{triggers}\n'
