"""DDL generation: CREATE TABLE / CREATE VIEW statements (PostgreSQL)."""

from __future__ import annotations

from repro.datalog.ast import Program
from repro.relational.schema import (AttributeType, DatabaseSchema,
                                     RelationSchema)
from repro.sql.translate import ColumnNamer, query_to_sql

__all__ = ['create_table', 'create_schema', 'create_view']

_SQL_TYPES = {
    AttributeType.INT: 'integer',
    AttributeType.FLOAT: 'double precision',
    AttributeType.STRING: 'text',
    AttributeType.DATE: 'date',
}


def create_table(relation: RelationSchema) -> str:
    columns = ',\n  '.join(
        f'{attr} {_SQL_TYPES[type_name]}'
        for attr, type_name in zip(relation.attributes, relation.types))
    return f'CREATE TABLE {relation.name} (\n  {columns}\n);'


def create_schema(schema: DatabaseSchema) -> str:
    return '\n\n'.join(create_table(rel) for rel in schema)


def create_view(view: RelationSchema, get_program: Program,
                sources: DatabaseSchema) -> str:
    """``CREATE VIEW <name> AS <sql-defining-query>`` (§6.1)."""
    from repro.datalog.transform import rename_predicates
    # The defining query's own goal CTE must not shadow the view name.
    defining_goal = f'{view.name}_def'
    mapping = {pred: f'{pred}_def' for pred in get_program.idb_preds()}
    renamed = rename_predicates(get_program, mapping)
    namer = ColumnNamer(sources, extra={defining_goal: view.attributes})
    body = query_to_sql(renamed, defining_goal, namer)
    return (f'CREATE OR REPLACE VIEW {view.name} AS\n{body};')
