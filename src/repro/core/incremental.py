"""Incrementalization of putback programs (§5, Lemma 5.2, Appendix C).

Two paths are provided:

* :func:`incrementalize_lvgn` — for LVGN-Datalog strategies.  By
  Lemma 5.2, substituting the view-delta predicates for the view literals
  (``v(~t)`` → ``+v(~t)``, ``¬v(~t)`` → ``-v(~t)``) in the delta rules
  yields an equivalent incremental program ``∂put``; delta rules that do
  not mention the view contribute nothing effective in a steady state and
  are dropped.

* :func:`incrementalize_general` — the Appendix-C construction for
  arbitrary nonrecursive programs: the program is *binarized* (Lemma C.1:
  every IDB defined from at most two relations), the Figure-7 rewrite
  rules (join/selection, negation, projection, union) derive insertion and
  deletion deltas for every predicate affected by the view, and finally
  only the insertion sets of the source delta relations are kept
  (Proposition 5.1) and renamed back to ``±r``.

The resulting ``∂put`` is an ordinary Datalog program over the EDB
``S ∪ {v, +v, -v}`` (the LVGN path does not read ``v`` at all); the RDBMS
layer evaluates it instead of the full putback program on each update.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from repro.datalog.ast import (Atom, BuiltinLit, Lit, Literal, Program,
                               Rule, Var, delete_pred, delta_base,
                               insert_pred, is_delta_pred)
from repro.datalog.dependency import stratify
from repro.datalog.safety import bound_variables
from repro.datalog.transform import tidy_program
from repro.errors import FragmentError, TransformationError

__all__ = ['incrementalize_lvgn', 'incrementalize_general',
           'incrementalize', 'incrementalize_plan', 'binarize']


# ---------------------------------------------------------------------------
# LVGN shortcut (Lemma 5.2)
# ---------------------------------------------------------------------------


def _substitute_view_deltas(rule: Rule, view: str) -> Rule | None:
    """The Lemma 5.2 substitution on one rule; None when the rule has no
    view literal (its contribution is ineffective in a steady state)."""
    view_lits = [l for l in rule.body
                 if isinstance(l, Lit) and l.atom.pred == view]
    if not view_lits:
        return None
    if len(view_lits) > 1:
        raise FragmentError(
            f'rule {rule} uses the view more than once; apply the '
            f'general incrementalization instead')
    new_body: list[Literal] = []
    for literal in rule.body:
        if isinstance(literal, Lit) and literal.atom.pred == view:
            pred = insert_pred(view) if literal.positive \
                else delete_pred(view)
            new_body.append(Lit(Atom(pred, literal.atom.args), True))
        else:
            new_body.append(literal)
    return Rule(rule.head, tuple(new_body))


def incrementalize_lvgn(putdelta: Program, view: str) -> Program:
    """Substitute view-delta predicates for view literals (Lemma 5.2).

    Constraint (⊥) rules receive the same substitution: assuming the
    constraints held before the update, a new violation must involve an
    inserted tuple (positive ``v`` occurrence) or a deleted one (negated
    occurrence), so checking the substituted bodies over ``S ∪ ΔV`` is
    equivalent to — and much cheaper than — re-checking the whole view.
    """
    rules: list[Rule] = []
    for rule in putdelta.rules:
        if rule.is_constraint:
            substituted = _substitute_view_deltas(rule, view)
            if substituted is not None:
                rules.append(substituted)
            # View-free constraints relate only source relations; the
            # sources are only modified through validated strategies, so
            # the check is delegated to their own update path.
            continue
        if not is_delta_pred(rule.head.pred):
            rules.append(rule)
            continue
        substituted = _substitute_view_deltas(rule, view)
        if substituted is not None:
            rules.append(substituted)
    goals = {r.head.pred for r in rules
             if r.head is not None and is_delta_pred(r.head.pred)}
    constraints = tuple(r for r in rules if r.is_constraint)
    # Predicates the substituted constraints read must survive tidying.
    for rule in constraints:
        goals |= rule.body_preds()
    tidied = tidy_program(Program(tuple(
        r for r in rules if not r.is_constraint)), goals)
    return Program(tidied.rules + constraints)


# ---------------------------------------------------------------------------
# Binarization (Lemma C.1)
# ---------------------------------------------------------------------------


def _schedule_body(rule: Rule) -> list[Literal]:
    """Order body literals for left-to-right evaluability (positive atoms
    bind; builtins and negations follow once bound)."""
    from repro.datalog.plan import schedule_body
    return schedule_body(rule.body)


def binarize(program: Program, *, prefix: str = '__b'
             ) -> Program:
    """Rewrite so every rule is one of the Figure-7 shapes:

    * join: ``h :- p(~Y), q(~Z)`` with ``vars(h) = vars(~Y) ∪ vars(~Z)``
      (``q`` may be replaced by builtins — a selection);
    * negation: ``h :- p(~X), ¬q(~Y)`` with ``vars(~Y) ⊆ vars(~X)``;
    * projection: ``h(~X) :- p(~X, ~Y)``;
    * union: single-atom rules sharing a head.

    Fresh intermediate predicates are named ``{prefix}{n}``.
    """
    counter = itertools.count()
    out: list[Rule] = []

    def fresh(args: tuple[Var, ...], body: tuple[Literal, ...]) -> Atom:
        name = f'{prefix}{next(counter)}'
        head = Atom(name, args)
        out.append(Rule(head, body))
        return head

    for rule in program.rules:
        if rule.is_constraint:
            out.append(rule)
            continue
        ordered = _schedule_body(rule)
        # Accumulate left-to-right: current = positive atom carrying all
        # variables bound so far.
        current: Atom | None = None
        bound: list[Var] = []

        def bound_tuple() -> tuple[Var, ...]:
            return tuple(bound)

        pending: list[Literal] = []

        def flush_step(next_literal: Literal | None) -> None:
            """Combine ``current`` with one more literal (or builtins)."""
            nonlocal current, bound
            if next_literal is None and not pending:
                return
            body: list[Literal] = []
            if current is not None:
                body.append(Lit(current, True))
            new_vars = list(bound)
            if next_literal is not None:
                body.append(next_literal)
                if isinstance(next_literal, Lit) and next_literal.positive:
                    for term in next_literal.atom.args:
                        if isinstance(term, Var) and term not in new_vars:
                            new_vars.append(term)
            body.extend(pending)
            for literal in pending:
                if isinstance(literal, BuiltinLit) and literal.op == '=' \
                        and literal.positive:
                    for term in (literal.left, literal.right):
                        if isinstance(term, Var) and term not in new_vars:
                            new_vars.append(term)
            pending.clear()
            current = fresh(tuple(new_vars), tuple(body))
            bound = new_vars

        for literal in ordered:
            if isinstance(literal, BuiltinLit):
                pending.append(literal)
                continue
            if literal.positive and current is None and not pending:
                current = literal.atom
                bound = [t for t in literal.atom.args
                         if isinstance(t, Var)]
                # Deduplicate while preserving order.
                seen: set[str] = set()
                unique: list[Var] = []
                for v in bound:
                    if v.name not in seen:
                        seen.add(v.name)
                        unique.append(v)
                if len(unique) != len(literal.atom.args) or \
                        any(not isinstance(t, Var)
                            for t in literal.atom.args):
                    # Constants / repeated variables: wrap in a fresh step
                    # so downstream steps see a clean variable tuple.
                    current = fresh(tuple(unique),
                                    (Lit(literal.atom, True),))
                bound = unique
                continue
            flush_step(literal)
        if pending:
            flush_step(None)
        if current is None:
            raise TransformationError(f'cannot binarize rule {rule}')
        # Final projection onto the head.
        head_vars = [t for t in rule.head.args if isinstance(t, Var)]
        out.append(Rule(rule.head, (Lit(current, True),)))
    return Program(tuple(out))


# ---------------------------------------------------------------------------
# Figure-7 delta rules
# ---------------------------------------------------------------------------


@dataclass
class _NamePool:
    """Naming scheme for the derived predicates of one incrementalization:
    ``+p``/``-p`` for delta sets, ``p__nu`` for post-state relations, and
    ``p__old`` for the pre-update value of affected IDB predicates (the
    view's own pre-state is just the EDB relation ``v``)."""

    changed: set[str]
    view: str

    def nu(self, pred: str) -> str:
        return f'{pred}__nu' if pred in self.changed else pred

    def old(self, pred: str) -> str:
        if pred in self.changed and pred != self.view:
            return f'{pred}__old'
        return pred

    def plus(self, pred: str) -> str:
        return insert_pred(pred)

    def minus(self, pred: str) -> str:
        return delete_pred(pred)


def _figure7_rules(rule: Rule, pool: _NamePool) -> list[Rule]:
    """Apply the matching Figure-7 template to one binarized rule.

    Produces rules for ``+h``, ``-h`` and ``h__nu`` where ``h`` is the rule
    head.  Union is handled by emitting per-rule contributions — for the
    deletion case the "not in the other branch" literal references the
    predicate's *other* defining rules, which the caller assembles.
    """
    head = rule.head
    h = head.pred
    plus_h = Atom(pool.plus(h), head.args)
    minus_h = Atom(pool.minus(h), head.args)
    nu_h = Atom(pool.nu(h), head.args)
    body = list(rule.body)
    rel_lits = [l for l in body if isinstance(l, Lit)]
    builtins = [l for l in body if isinstance(l, BuiltinLit)]
    out: list[Rule] = []

    def lit(atom: Atom, positive=True) -> Lit:
        return Lit(atom, positive)

    def renamed(atom: Atom, name: str) -> Atom:
        return Atom(name, atom.args)

    if len(rel_lits) == 1 and rel_lits[0].positive:
        r1 = rel_lits[0].atom
        changed = r1.pred in pool.changed or \
            delta_base(r1.pred) in pool.changed
        head_vars = {t.name for t in head.args if isinstance(t, Var)}
        body_vars = {t.name for t in r1.args if isinstance(t, Var)}
        is_projection = head_vars < body_vars
        if not changed:
            return []
        if is_projection:
            # Projection template (¬h reads the *pre-update* value).
            anon = Atom(pool.nu(r1.pred), tuple(
                t if isinstance(t, Var) and t.name in head_vars
                else Var(f'_anon_pj_{i}')
                for i, t in enumerate(r1.args)))
            old_head = Atom(pool.old(h), head.args)
            out.append(Rule(plus_h,
                            tuple([lit(renamed(r1, pool.plus(r1.pred)))] +
                                  builtins + [lit(old_head, False)])))
            out.append(Rule(minus_h,
                            tuple([lit(renamed(r1, pool.minus(r1.pred)))] +
                                  builtins + [lit(anon, False)])))
            out.append(Rule(nu_h, tuple([lit(renamed(r1, pool.nu(r1.pred)))]
                                        + builtins)))
        else:
            # Selection / copy (union branches fall out of per-rule calls;
            # the caller patches deletion rules for multi-rule heads).
            out.append(Rule(plus_h,
                            tuple([lit(renamed(r1, pool.plus(r1.pred)))] +
                                  builtins)))
            out.append(Rule(minus_h,
                            tuple([lit(renamed(r1, pool.minus(r1.pred)))] +
                                  builtins)))
            out.append(Rule(nu_h, tuple([lit(renamed(r1, pool.nu(r1.pred)))]
                                        + builtins)))
        return out

    if len(rel_lits) == 2 and rel_lits[0].positive \
            and not rel_lits[1].positive:
        r1, r2 = rel_lits[0].atom, rel_lits[1].atom
        r1_changed = r1.pred in pool.changed
        r2_changed = r2.pred in pool.changed
        if not (r1_changed or r2_changed):
            return []
        # Negation template (plain occurrences read the pre-update state).
        if r1_changed:
            out.append(Rule(minus_h, tuple(
                [lit(renamed(r1, pool.minus(r1.pred))),
                 lit(renamed(r2, pool.old(r2.pred)), False)] + builtins)))
            out.append(Rule(plus_h, tuple(
                [lit(renamed(r1, pool.plus(r1.pred))),
                 lit(renamed(r2, pool.nu(r2.pred)), False)] + builtins)))
        if r2_changed:
            out.append(Rule(minus_h, tuple(
                [lit(renamed(r1, pool.old(r1.pred))),
                 lit(renamed(r2, pool.plus(r2.pred)))] + builtins)))
            out.append(Rule(plus_h, tuple(
                [lit(renamed(r1, pool.nu(r1.pred))),
                 lit(renamed(r2, pool.minus(r2.pred)))] + builtins)))
        out.append(Rule(nu_h, tuple(
            [lit(renamed(r1, pool.nu(r1.pred))),
             lit(renamed(r2, pool.nu(r2.pred)), False)] + builtins)))
        return out

    if len(rel_lits) == 2 and rel_lits[0].positive and rel_lits[1].positive:
        r1, r2 = rel_lits[0].atom, rel_lits[1].atom
        r1_changed = r1.pred in pool.changed
        r2_changed = r2.pred in pool.changed
        if not (r1_changed or r2_changed):
            return []
        # Join template.
        if r1_changed:
            out.append(Rule(minus_h, tuple(
                [lit(renamed(r1, pool.minus(r1.pred))),
                 lit(renamed(r2, pool.old(r2.pred)))] + builtins)))
            out.append(Rule(plus_h, tuple(
                [lit(renamed(r1, pool.plus(r1.pred))),
                 lit(renamed(r2, pool.nu(r2.pred)))] + builtins)))
        if r2_changed:
            out.append(Rule(minus_h, tuple(
                [lit(renamed(r1, pool.old(r1.pred))),
                 lit(renamed(r2, pool.minus(r2.pred)))] + builtins)))
            out.append(Rule(plus_h, tuple(
                [lit(renamed(r1, pool.nu(r1.pred))),
                 lit(renamed(r2, pool.plus(r2.pred)))] + builtins)))
        out.append(Rule(nu_h, tuple(
            [lit(renamed(r1, pool.nu(r1.pred))),
             lit(renamed(r2, pool.nu(r2.pred)))] + builtins)))
        return out

    raise TransformationError(
        f'rule {rule} is not in a Figure-7 shape; binarize first')


def _union_deletion_fix(pred: str, rules: list[Rule], derived: list[Rule],
                        pool: _NamePool) -> list[Rule]:
    """For a predicate with multiple defining rules (union), a deletion
    from one branch only deletes from the union when the tuple is not
    produced by any *other* branch's new state (Figure 7, Union)."""
    if len(rules) <= 1:
        return derived
    minus_name = pool.minus(pred)
    patched: list[Rule] = []
    branch_of: dict[int, Rule] = {}
    # Identify which defining rule each -h rule came from by matching the
    # order of generation: simpler and robust — add "not in any other
    # branch's nu" to every -h rule.
    other_nu_bodies: list[list[Lit]] = []
    for rule in rules:
        pass
    for d in derived:
        if d.head.pred != minus_name:
            patched.append(d)
            continue
        extra: list[Lit] = []
        for other in rules:
            # Guard against deleting a tuple still derivable elsewhere:
            # ¬ other_branch__nu(head args).  Branch bodies with their own
            # variables need projection; binarized unions are single-atom
            # copies, so the head args align with the branch atom args.
            body_lits = [l for l in other.body if isinstance(l, Lit)]
            if len(body_lits) != 1 or not body_lits[0].positive:
                continue
            atom = body_lits[0].atom
            if d.body and isinstance(d.body[0], Lit) and \
                    delta_base(d.body[0].atom.pred).replace('__nu', '') \
                    == atom.pred:
                continue  # same branch
            source = Atom(pool.nu(atom.pred), d.head.args)
            extra.append(Lit(source, False))
        patched.append(Rule(d.head, d.body + tuple(extra)))
    return patched


def incrementalize_general(putdelta: Program, view: str) -> Program:
    """Appendix-C incrementalization for arbitrary NR-Datalog strategies.

    Returns a program computing the source delta relations ``±r_i`` from
    ``S ∪ {v, +v, -v}``; Proposition 5.1 justifies keeping only the
    insertion sets of the delta-of-delta relations.
    """
    binary = binarize(putdelta.without_constraints())
    changed: set[str] = {view}
    # Propagate change through the dependency order.
    order = stratify(binary)
    for pred in order:
        for rule in binary.rules_for(pred):
            if rule.body_preds() & changed:
                changed.add(pred)
                break
    pool = _NamePool(changed=changed, view=view)

    derived: list[Rule] = []
    # Pre-update copies of every affected IDB predicate: the original
    # rules, reading the old view and the old versions of affected
    # auxiliaries.  Projection templates reference these.
    for pred in order:
        if pred not in changed or pred == view:
            continue
        for rule in binary.rules_for(pred):
            body = []
            for literal in rule.body:
                if isinstance(literal, Lit):
                    body.append(Lit(Atom(pool.old(literal.atom.pred),
                                         literal.atom.args),
                                    literal.positive))
                else:
                    body.append(literal)
            derived.append(Rule(Atom(pool.old(pred), rule.head.args),
                                tuple(body)))
    # ν-rules for the view itself: v__nu = (v \ -v) ∪ +v.
    arities = binary.arities()
    if view in arities:
        args = tuple(Var(f'VN{i}') for i in range(arities[view]))
        nu = Atom(pool.nu(view), args)
        derived.append(Rule(nu, (Lit(Atom(view, args), True),
                                 Lit(Atom(delete_pred(view), args),
                                     False))))
        derived.append(Rule(nu, (Lit(Atom(insert_pred(view), args),
                                     True),)))

    for pred in order:
        if pred not in changed or pred == view:
            continue
        rules = list(binary.rules_for(pred))
        pred_rules: list[Rule] = []
        for rule in rules:
            pred_rules.extend(_figure7_rules(rule, pool))
        pred_rules = _union_deletion_fix(pred, rules, pred_rules, pool)
        derived.extend(pred_rules)

    # Keep unchanged auxiliary definitions (they are still referenced).
    for rule in binary.rules:
        if rule.head is not None and rule.head.pred not in changed:
            derived.append(rule)

    # Step 4: the insertion sets of the delta relations become the final
    # deltas (Proposition 5.1): rename +(±r) back to ±r and drop -(±r).
    final: list[Rule] = []
    goals: set[str] = set()
    delta_preds = putdelta.delta_preds()
    rename: dict[str, str] = {}
    drop: set[str] = set()
    for dp in delta_preds:
        rename[insert_pred(dp)] = dp          # '+(+r)' -> '+r', '+(-r)' -> '-r'
        drop.add(delete_pred(dp))             # '-(±r)' is redundant
        drop.add(f'{dp}__nu')
    for rule in derived:
        if rule.head.pred in drop:
            continue
        head_pred = rename.get(rule.head.pred, rule.head.pred)
        body = []
        for literal in rule.body:
            if isinstance(literal, Lit) and literal.atom.pred in rename:
                body.append(Lit(Atom(rename[literal.atom.pred],
                                     literal.atom.args), literal.positive))
            else:
                body.append(literal)
        final.append(Rule(Atom(head_pred, rule.head.args), tuple(body)))
        if head_pred in delta_preds:
            goals.add(head_pred)
    return tidy_program(Program(tuple(final)), goals)


def incrementalize(putdelta: Program, view: str, *,
                   lvgn: bool | None = None) -> Program:
    """Incrementalize a putback program, choosing the best path.

    ``lvgn=None`` auto-detects fragment membership; the LVGN shortcut is
    preferred (Lemma 5.2), with the Appendix-C construction as fallback.
    """
    if lvgn is None:
        from repro.core.lvgn import is_lvgn
        lvgn = is_lvgn(putdelta, view)
    if lvgn:
        return incrementalize_lvgn(putdelta, view)
    return incrementalize_general(putdelta, view)


def incrementalize_plan(putdelta: Program, view: str, *,
                        lvgn: bool | None = None, stats=None):
    """Incrementalize and *compile* in one shot.

    Returns ``(∂put, plan)`` where ``plan`` is the compiled
    :class:`~repro.datalog.plan.ExecutionPlan` of the incremental
    program.  Both artifacts are produced exactly once per strategy —
    the RDBMS engine stores them in its view registry and reuses them
    for every subsequent update, so the per-statement cost is pure
    execution.  ``stats`` (a ``{relation: size}`` mapping) seeds the
    planner's join order with observed cardinalities.
    """
    from repro.datalog.plan import compile_program
    program = incrementalize(putdelta, view, lvgn=lvgn)
    return program, compile_program(program, stats=stats)
