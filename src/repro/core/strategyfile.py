"""The ``.dlog`` strategy file format and its loader.

A strategy file bundles everything :class:`UpdateStrategy` needs — the
source schema, the view declaration, the (optional) expected view
definition, and the putback rules — in one BIRDS-style text file::

    % luxuryitems: selection view over items (catalog entry #3)
    .source items(iid: int, iname: string, price: int).
    .view luxuryitems(iid: int, iname: string, price: int).

    .get
    luxuryitems(I, N, P) :- items(I, N, P), P > 1000.
    .end

    ⊥ :- luxuryitems(I, N, P), not P > 1000.
    +items(I, N, P) :- luxuryitems(I, N, P), not items(I, N, P).
    expensive(I, N, P) :- items(I, N, P), P > 1000.
    -items(I, N, P) :- expensive(I, N, P), not luxuryitems(I, N, P).

Directives start with ``.`` at the beginning of a line:

* ``.source name(attr: type, ...).`` — declare a base relation
  (types: ``int``, ``float``, ``string``, ``date``; ``: type`` may be
  omitted and defaults to ``string``);
* ``.view name(attr: type, ...).``  — declare the view;
* ``.get`` ... ``.end``             — the expected view definition block.

Everything else is the putback program (``%`` comments allowed).
"""

from __future__ import annotations

import re
from pathlib import Path

from repro.core.strategy import UpdateStrategy
from repro.datalog.parser import parse_program
from repro.datalog.pretty import pretty
from repro.errors import DatalogSyntaxError, SchemaError
from repro.relational.schema import (AttributeType, DatabaseSchema,
                                     RelationSchema)

__all__ = ['loads_strategy', 'load_strategy', 'dumps_strategy',
           'dump_strategy']

_DECL_RE = re.compile(
    r'^\.\s*(source|view)\s+([a-z][A-Za-z0-9_]*)\s*\((.*)\)\s*\.\s*$')

_TYPE_ALIASES = {
    'int': AttributeType.INT, 'integer': AttributeType.INT,
    'float': AttributeType.FLOAT, 'real': AttributeType.FLOAT,
    'double': AttributeType.FLOAT,
    'string': AttributeType.STRING, 'text': AttributeType.STRING,
    'varchar': AttributeType.STRING,
    'date': AttributeType.DATE, 'datetime': AttributeType.DATE,
}


def _parse_declaration(line: str, lineno: int) -> tuple[str,
                                                        RelationSchema]:
    match = _DECL_RE.match(line)
    if match is None:
        raise DatalogSyntaxError(
            f'malformed declaration: {line.strip()!r}', lineno)
    kind, name, columns = match.groups()
    attributes: list[str] = []
    types: list[str] = []
    for column in columns.split(','):
        column = column.strip()
        if not column:
            raise DatalogSyntaxError(
                f'empty column in declaration of {name!r}', lineno)
        if ':' in column:
            attr, type_name = (part.strip() for part in
                               column.split(':', 1))
        else:
            attr, type_name = column, 'string'
        resolved = _TYPE_ALIASES.get(type_name.lower())
        if resolved is None:
            raise DatalogSyntaxError(
                f'unknown column type {type_name!r} for {name}.{attr}',
                lineno)
        attributes.append(attr)
        types.append(resolved)
    return kind, RelationSchema(name, tuple(attributes), tuple(types))


def loads_strategy(text: str) -> UpdateStrategy:
    """Parse a strategy file from a string."""
    sources: list[RelationSchema] = []
    view: RelationSchema | None = None
    get_lines: list[str] = []
    rule_lines: list[str] = []
    in_get = False
    for lineno, line in enumerate(text.splitlines(), start=1):
        stripped = line.strip()
        if in_get:
            if stripped == '.end':
                in_get = False
            else:
                get_lines.append(line)
            continue
        if stripped == '.get':
            in_get = True
            continue
        if stripped.startswith('.'):
            kind, schema = _parse_declaration(stripped, lineno)
            if kind == 'source':
                sources.append(schema)
            else:
                if view is not None:
                    raise SchemaError('multiple .view declarations')
                view = schema
            continue
        rule_lines.append(line)
    if in_get:
        raise DatalogSyntaxError('.get block not closed with .end')
    if view is None:
        raise SchemaError('strategy file declares no .view')
    if not sources:
        raise SchemaError('strategy file declares no .source relations')
    expected_get = '\n'.join(get_lines).strip() or None
    return UpdateStrategy.parse(view, DatabaseSchema(tuple(sources)),
                                '\n'.join(rule_lines),
                                expected_get=expected_get)


def load_strategy(path: str | Path) -> UpdateStrategy:
    """Parse a strategy file from disk."""
    return loads_strategy(Path(path).read_text(encoding='utf-8'))


def _declaration(kind: str, schema: RelationSchema) -> str:
    columns = ', '.join(f'{attr}: {type_name}' for attr, type_name in
                        zip(schema.attributes, schema.types))
    return f'.{kind} {schema.name}({columns}).'


def dumps_strategy(strategy: UpdateStrategy) -> str:
    """Render a strategy back into the file format (round-trips through
    :func:`loads_strategy`)."""
    lines = [f'% update strategy for view {strategy.view.name}']
    for relation in strategy.sources:
        lines.append(_declaration('source', relation))
    lines.append(_declaration('view', strategy.view))
    lines.append('')
    if strategy.expected_get is not None:
        lines.append('.get')
        lines.append(pretty(strategy.expected_get))
        lines.append('.end')
        lines.append('')
    lines.append(pretty(strategy.putdelta))
    return '\n'.join(lines) + '\n'


def dump_strategy(strategy: UpdateStrategy, path: str | Path) -> None:
    Path(path).write_text(dumps_strategy(strategy), encoding='utf-8')
