"""View update strategies as Datalog putback programs (§3).

:class:`UpdateStrategy` is the central public artifact of the library: a
view name + schema, the source schema, a *putback program* (Datalog rules
defining the delta relations ``+r``/``-r`` of the source, plus optional
⊥-constraints), and optionally the expected view definition.

``put(S, V')`` implements equation (1) of the paper::

    put(S, V') = S ⊕ putdelta(S, V')

raising :class:`ContradictionError` when the computed ΔS is contradictory
and :class:`ConstraintViolation` when ``(S, V')`` violates a constraint.
"""

from __future__ import annotations

import textwrap
from dataclasses import dataclass, field

from repro.datalog.ast import (Program, Rule, delta_base, is_delta_pred)
from repro.datalog.dependency import check_nonrecursive
from repro.datalog.parser import parse_program
from repro.datalog.plan import ExecutionPlan, compile_program
from repro.datalog.pretty import pretty, pretty_rule
from repro.datalog.safety import check_program_safety
from repro.errors import (ConstraintViolation, SchemaError, ViewUpdateError)
from repro.relational.database import Database
from repro.relational.delta import DeltaSet
from repro.relational.schema import DatabaseSchema, RelationSchema

__all__ = ['UpdateStrategy']


def _infer_view_schema(program: Program, get_program: Program | None,
                       view: str, sources: DatabaseSchema
                       ) -> RelationSchema:
    """Infer the view's arity and column types from the programs.

    A view column shares the type of any source column the same variable
    flows through (scanning both the putback rules and the expected get);
    untraceable columns default to ``string``.
    """
    from repro.datalog.ast import Lit, Var

    arities: dict[str, int] = {}
    programs = [program] + ([get_program] if get_program is not None else [])
    for prog in programs:
        arities.update(prog.arities())
    if view not in arities:
        raise SchemaError(
            f'view {view!r} does not occur in the putback program; '
            f'pass a RelationSchema to fix its arity')
    arity = arities[view]
    types: list[str | None] = [None] * arity
    names: list[str | None] = [None] * arity

    def atoms_of(rule):
        heads = [rule.head] if rule.head is not None else []
        return heads + [l.atom for l in rule.body if isinstance(l, Lit)]

    from repro.datalog.ast import BuiltinLit, Const
    from repro.relational.schema import AttributeType

    def _const_type(value) -> str:
        if isinstance(value, int):
            return AttributeType.INT
        if isinstance(value, float):
            return AttributeType.FLOAT
        return AttributeType.STRING

    for prog in programs:
        for rule in prog.rules:
            atoms = atoms_of(rule)
            view_atoms = [a for a in atoms if a.pred == view]
            if not view_atoms:
                continue
            # Map variable -> source column type/name within this rule.
            var_types: dict[str, str] = {}
            var_names: dict[str, str] = {}
            for literal in rule.body:
                if isinstance(literal, BuiltinLit) and literal.op == '=' \
                        and literal.positive:
                    pairs = ((literal.left, literal.right),
                             (literal.right, literal.left))
                    for a, b in pairs:
                        if isinstance(b, Const) and hasattr(a, 'name'):
                            var_types.setdefault(a.name,
                                                 _const_type(b.value))
            for atom in atoms:
                from repro.datalog.ast import delta_base
                base = delta_base(atom.pred)
                if base not in sources:
                    continue
                declared = sources[base].types
                attrs = sources[base].attributes
                for pos, term in enumerate(atom.args):
                    if isinstance(term, Var) and pos < len(declared):
                        # Arity mismatches are reported by _check_shape;
                        # inference just skips the out-of-range columns.
                        var_types.setdefault(term.name, declared[pos])
                        var_names.setdefault(term.name, attrs[pos])
            for atom in view_atoms:
                for pos, term in enumerate(atom.args):
                    if pos >= arity:
                        break
                    if isinstance(term, Var):
                        if term.name in var_types and types[pos] is None:
                            types[pos] = var_types[term.name]
                        if term.name in var_names and names[pos] is None:
                            names[pos] = var_names[term.name]
                    elif isinstance(term, Const) and types[pos] is None:
                        types[pos] = _const_type(term.value)
    resolved = tuple(t or AttributeType.STRING for t in types)
    # Column names inherit the source attribute the variable flows
    # through; collisions and unknowns fall back to positional names.
    attrs: list[str] = []
    for pos in range(arity):
        candidate = names[pos] or f'col{pos}'
        if candidate in attrs:
            candidate = f'{candidate}_{pos}'
        attrs.append(candidate)
    return RelationSchema(view, tuple(attrs), resolved)


@dataclass(frozen=True)
class UpdateStrategy:
    """A programmable view update strategy (putback transformation)."""

    view: RelationSchema
    sources: DatabaseSchema
    putdelta: Program
    expected_get: Program | None = None

    def __post_init__(self):
        self._check_shape()
        # Compile-once: the putback and expected-get plans are memoized
        # for the lifetime of the strategy, so every `put` after the
        # first pays execution cost only (no re-stratification, no
        # re-scheduling).  The dataclass is frozen; the plans are
        # derived state, set via object.__setattr__ like a cached field.
        object.__setattr__(self, '_putdelta_plan',
                           compile_program(self.putdelta))
        object.__setattr__(
            self, '_get_plan',
            compile_program(self.expected_get)
            if self.expected_get is not None else None)

    # -- construction ------------------------------------------------------

    @classmethod
    def parse(cls, view: RelationSchema | str, sources: DatabaseSchema,
              putdelta: str, expected_get: str | None = None
              ) -> 'UpdateStrategy':
        """Build a strategy from Datalog source text.

        ``view`` may be a full :class:`RelationSchema` or just a name, in
        which case the view arity is inferred from the program text.
        """
        program = parse_program(textwrap.dedent(putdelta))
        get_program = None
        if expected_get is not None:
            get_program = parse_program(textwrap.dedent(expected_get))
        if isinstance(view, str):
            view = _infer_view_schema(program, get_program, view, sources)
        return cls(view, sources, program, get_program)

    # -- well-formedness of the program shape ----------------------------------

    def _check_shape(self) -> None:
        program = self.putdelta
        check_program_safety(program)
        check_nonrecursive(program)
        arities = program.arities()
        if self.view.name in program.idb_preds():
            raise SchemaError(
                f'the view {self.view.name!r} must not be defined by the '
                f'putback program (it is an input)')
        if self.view.name in arities \
                and arities[self.view.name] != self.view.arity:
            raise SchemaError(
                f'view {self.view.name!r} has declared arity '
                f'{self.view.arity} but is used with arity '
                f'{arities[self.view.name]}')
        for pred in program.idb_preds():
            if not is_delta_pred(pred):
                continue
            base = delta_base(pred)
            if base == self.view.name:
                raise SchemaError(
                    f'delta rules must target source relations, not the '
                    f'view itself: {pred}')
            if base not in self.sources and base not in arities:
                raise SchemaError(f'delta predicate {pred} targets unknown '
                                  f'relation {base!r}')
            if base in self.sources \
                    and arities[pred] != self.sources.arity(base):
                raise SchemaError(
                    f'delta predicate {pred} has arity {arities[pred]} but '
                    f'relation {base!r} has arity '
                    f'{self.sources.arity(base)}')
        for rel in self.sources:
            if rel.name in program.idb_preds():
                raise SchemaError(
                    f'source relation {rel.name!r} must not be redefined '
                    f'by the putback program')
        if self.expected_get is not None:
            if self.view.name not in self.expected_get.idb_preds():
                raise SchemaError(
                    f'expected_get must define the view '
                    f'{self.view.name!r}')

    # -- introspection -----------------------------------------------------------

    @property
    def name(self) -> str:
        return self.view.name

    @property
    def putdelta_plan(self) -> ExecutionPlan:
        """The compiled putback program (one plan per strategy object)."""
        return self._putdelta_plan

    @property
    def get_plan(self) -> ExecutionPlan | None:
        """The compiled expected view definition, when one was given."""
        return self._get_plan

    def delta_preds(self) -> set[str]:
        return self.putdelta.delta_preds()

    def updated_relations(self) -> set[str]:
        """Source relations this strategy may modify."""
        return {delta_base(p) for p in self.delta_preds()}

    def constraints(self) -> tuple[Rule, ...]:
        return self.putdelta.constraints()

    def intermediate_rules(self) -> tuple[Rule, ...]:
        """Non-delta, non-constraint rules (auxiliary IDB definitions)."""
        return tuple(r for r in self.putdelta.proper_rules()
                     if not is_delta_pred(r.head.pred))

    def delta_rules(self) -> tuple[Rule, ...]:
        return tuple(r for r in self.putdelta.proper_rules()
                     if is_delta_pred(r.head.pred))

    def program_size(self) -> int:
        """Lines of Datalog code (rule count), the paper's Table 1 metric."""
        return len(self.putdelta.rules)

    # -- semantics --------------------------------------------------------------

    def _combined(self, source: Database, view_rows) -> Database:
        if not isinstance(view_rows, (frozenset, set)):
            view_rows = set(view_rows)
        for row in view_rows:
            self.view.validate_tuple(tuple(row))
        return source.with_relation(self.view.name, view_rows)

    def check_constraints(self, source: Database, view_rows) -> None:
        """Raise :class:`ConstraintViolation` when ``(S, V')`` violates a
        declared ⊥-constraint.  The check short-circuits: enumeration
        stops at the first witness of the first violated rule."""
        instance = self._combined(source, view_rows)
        violations = self._putdelta_plan.constraint_violations(
            instance, first_witness=True)
        if violations:
            rule, witness = violations[0]
            raise ConstraintViolation(pretty_rule(rule), witness)

    def compute_delta(self, source: Database, view_rows) -> DeltaSet:
        """Evaluate the putback program: ``putdelta(S, V')`` (§3.1).

        Runs the memoized plan with the delta predicates as goals, so
        auxiliary predicates that are only probed never materialise.
        """
        instance = self._combined(source, view_rows)
        plan = self._putdelta_plan
        output = plan.evaluate(instance, goals=plan.delta_goals)
        return DeltaSet.from_database(output,
                                      relations=self.updated_relations())

    def put(self, source: Database, view_rows, *,
            enforce_constraints: bool = True) -> Database:
        """The putback transformation: ``put(S, V') = S ⊕ putdelta(S, V')``.
        """
        if enforce_constraints:
            self.check_constraints(source, view_rows)
        delta = self.compute_delta(source, view_rows)
        return delta.apply_to(source)

    def get(self, source: Database) -> frozenset:
        """Evaluate the expected view definition over ``source``.

        Only available when ``expected_get`` was supplied; the validation
        layer can *derive* a get for strategies without one.
        """
        if self.expected_get is None:
            raise ViewUpdateError(
                f'strategy for {self.view.name!r} has no expected_get; run '
                f'validation to derive one')
        name = self.view.name
        return self._get_plan.evaluate(source, goals=(name,))[name]

    def __str__(self) -> str:
        lines = [f'-- update strategy for view {self.view}',
                 pretty(self.putdelta)]
        if self.expected_get is not None:
            lines += ['-- expected view definition',
                      pretty(self.expected_get)]
        return '\n'.join(lines)
