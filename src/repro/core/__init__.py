"""The paper's primary contribution: programmable view update strategies —
putback programs, fragment checks, validation (Algorithm 1), view
derivation, and incrementalization."""

from repro.core.get_derivation import (GetDerivation, analyze_steady_state,
                                       derive_get)
from repro.core.incremental import (binarize, incrementalize,
                                    incrementalize_general,
                                    incrementalize_lvgn)
from repro.core.lvgn import (FragmentReport, check_guarded_rule,
                             check_linear_view, classify, is_lvgn)
from repro.core.putget import (getput_check_programs, new_source_rules,
                               putget_check_program)
from repro.core.strategy import UpdateStrategy
from repro.core.validation import (CheckResult, ValidationReport, validate,
                                   well_definedness_programs)

__all__ = [
    'GetDerivation', 'analyze_steady_state', 'derive_get', 'binarize',
    'incrementalize', 'incrementalize_general', 'incrementalize_lvgn',
    'FragmentReport', 'check_guarded_rule', 'check_linear_view', 'classify',
    'is_lvgn', 'getput_check_programs', 'new_source_rules',
    'putget_check_program', 'UpdateStrategy', 'CheckResult',
    'ValidationReport', 'validate', 'well_definedness_programs',
]
