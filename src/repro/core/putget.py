"""Datalog compositions for the GetPut and PutGet checks (§4.3–§4.4).

* :func:`getput_check_programs` — with the view defined by a candidate
  ``get`` over the source, GetPut holds iff applying the putback program
  leaves every source relation unchanged, i.e. each *effective* delta
  (eq. 11: ``Δ⁻Ri ∩ Ri`` and ``Δ⁺Ri \\ Ri``) is unsatisfiable.

* :func:`putget_check_program` — builds the paper's ``putget`` program:
  the putback rules, the ``r_new`` rules materialising ``S ⊕ ΔS``, and the
  ``get`` query re-targeted at the new source.  PutGet holds iff both test
  predicates (``v_new \\ v`` and ``v \\ v_new``) are unsatisfiable —
  sentences Φ1/Φ2 of (9)/(10).
"""

from __future__ import annotations

from repro.datalog.ast import (Atom, Lit, Program, Rule, Var, delete_pred,
                               delta_base, insert_pred, is_delta_pred)
from repro.datalog.transform import rename_predicates
from repro.relational.schema import DatabaseSchema

__all__ = ['getput_check_programs', 'putget_check_program',
           'new_source_rules', 'NEW_SUFFIX', 'PG_EXTRA', 'PG_MISSING']

NEW_SUFFIX = '_new'
PG_EXTRA = '__pg_extra__'      # tuples produced by get∘put but not in V
PG_MISSING = '__pg_missing__'  # tuples of V lost by get∘put


def _vars(prefix: str, arity: int) -> tuple[Var, ...]:
    return tuple(Var(f'{prefix}{i}') for i in range(arity))


def _source_arities(putdelta: Program, sources: DatabaseSchema
                    ) -> dict[str, int]:
    arities = {rel.name: rel.arity for rel in sources}
    for pred, arity in putdelta.arities().items():
        if is_delta_pred(pred):
            arities.setdefault(delta_base(pred), arity)
    return arities


def new_source_rules(putdelta: Program, sources: DatabaseSchema
                     ) -> tuple[dict[str, str], tuple[Rule, ...]]:
    """Rules defining ``r_new = r ⊕ Δr`` for every updated relation.

    Returns ``(rename_map, rules)`` where the map sends each *updated*
    source relation to its ``_new`` predicate (unchanged relations are
    read directly, no alias indirection needed).
    """
    deltas = putdelta.delta_preds()
    updated = {delta_base(p) for p in deltas}
    arities = _source_arities(putdelta, sources)
    rename: dict[str, str] = {}
    rules: list[Rule] = []
    for name in sorted(updated):
        new_name = name + NEW_SUFFIX
        rename[name] = new_name
        args = _vars('N', arities[name])
        head = Atom(new_name, args)
        body: list = [Lit(Atom(name, args), True)]
        if delete_pred(name) in deltas:
            body.append(Lit(Atom(delete_pred(name), args), False))
        rules.append(Rule(head, tuple(body)))
        if insert_pred(name) in deltas:
            rules.append(Rule(head, (Lit(Atom(insert_pred(name), args),
                                         True),)))
    return rename, tuple(rules)


def _retarget_get(get_program: Program, view: str, prefix: str,
                  view_target: str, source_rename: dict[str, str]
                  ) -> Program:
    """Rename the get query so its IDB predicates cannot clash with the
    putback program's, its view output becomes ``view_target``, and its
    source references follow ``source_rename``."""
    mapping = dict(source_rename)
    for pred in get_program.idb_preds():
        mapping[pred] = view_target if pred == view else prefix + pred
    return rename_predicates(get_program, mapping)


def getput_check_programs(putdelta: Program, get_program: Program,
                          view: str, sources: DatabaseSchema
                          ) -> list[tuple[str, Program]]:
    """One ``(goal, program)`` satisfiability check per effective delta.

    The combined program defines the view from the source via ``get`` and
    runs the putback rules on top; GetPut holds iff every goal is
    unsatisfiable (over source databases satisfying the constraints).
    """
    get_rules = _retarget_get(get_program, view, 'gp__', view, {})
    arities = _source_arities(putdelta, sources)
    checks: list[tuple[str, Program]] = []
    base_rules = putdelta.rules + get_rules.rules
    for pred in sorted(putdelta.delta_preds()):
        base = delta_base(pred)
        args = _vars('G', arities[base])
        goal = f'__gp_{pred[0]}{base}__'.replace('+', 'ins_') \
            .replace('-', 'del_')
        if pred.startswith('-'):
            # Effective deletion: Δ⁻R ∩ R
            body = (Lit(Atom(pred, args), True), Lit(Atom(base, args), True))
        else:
            # Effective insertion: Δ⁺R \ R
            body = (Lit(Atom(pred, args), True),
                    Lit(Atom(base, args), False))
        program = Program(base_rules + (Rule(Atom(goal, args), body),))
        checks.append((goal, program))
    return checks


def putget_check_program(putdelta: Program, get_program: Program,
                         view: str, view_arity: int,
                         sources: DatabaseSchema
                         ) -> tuple[Program, str, str]:
    """The paper's ``putget`` composition plus the Φ1/Φ2 test predicates.

    Returns ``(program, extra_goal, missing_goal)``; PutGet holds iff both
    goals are unsatisfiable over ``(S, V)`` instances satisfying the
    constraints.
    """
    source_rename, rnew_rules = new_source_rules(putdelta, sources)
    vnew = f'{view}{NEW_SUFFIX}'
    get_rules = _retarget_get(get_program, view, 'pg__', vnew,
                              source_rename)
    args = _vars('Y', view_arity)
    extra_rule = Rule(Atom(PG_EXTRA, args),
                      (Lit(Atom(vnew, args), True),
                       Lit(Atom(view, args), False)))
    missing_rule = Rule(Atom(PG_MISSING, args),
                        (Lit(Atom(view, args), True),
                         Lit(Atom(vnew, args), False)))
    program = Program(putdelta.rules + rnew_rules + get_rules.rules +
                      (extra_rule, missing_rule))
    return program, PG_EXTRA, PG_MISSING
