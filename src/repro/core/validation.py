"""Validation of view update strategies — Algorithm 1 of the paper (§4).

The pipeline has three passes (Fig. 4):

1. **Well-definedness** (§4.2): the computed ΔS is never contradictory —
   the predicates ``d_i :- +r_i, -r_i`` are unsatisfiable.
2. **GetPut / view derivation** (§4.3): the expected view definition (when
   supplied) satisfies GetPut; otherwise a view definition is derived from
   the steady-state analysis (φ1/φ2/φ3).
3. **PutGet** (§4.4): the composition ``get ∘ put`` reproduces the view.

Every check is discharged through the bounded satisfiability solver
(:mod:`repro.fol.solver`).  The resulting :class:`ValidationReport` mirrors
Theorem 4.3: for LVGN-Datalog strategies the verdict is *conclusive*
(the fragment's decidability), otherwise it is *bounded* (the paper's
semi-decision via an automated prover).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.datalog.ast import (Atom, Lit, Program, Rule, Var, delete_pred,
                               delta_base, insert_pred)
from repro.datalog.pretty import pretty
from repro.core.get_derivation import derive_get
from repro.core.lvgn import FragmentReport, classify
from repro.core.putget import getput_check_programs, putget_check_program
from repro.core.strategy import UpdateStrategy
from repro.errors import ValidationError
from repro.fol.solver import (SatResult, SolverConfig, check_satisfiable)
from repro.relational.database import Database

__all__ = ['CheckResult', 'ValidationReport', 'validate',
           'well_definedness_programs']


@dataclass(frozen=True)
class CheckResult:
    """Outcome of one satisfiability-based check."""

    name: str
    passed: bool
    detail: str = ''
    witness: Database | None = None
    elapsed: float = 0.0

    def __str__(self) -> str:
        status = 'PASS' if self.passed else 'FAIL'
        text = f'[{status}] {self.name} ({self.elapsed:.3f}s)'
        if self.detail:
            text += f' — {self.detail}'
        return text


@dataclass
class ValidationReport:
    """Everything Algorithm 1 produced for one strategy."""

    strategy: UpdateStrategy
    valid: bool
    conclusive: bool
    fragment: FragmentReport
    checks: list[CheckResult] = field(default_factory=list)
    derived_get: Program | None = None
    expected_get_confirmed: bool | None = None
    elapsed: float = 0.0

    @property
    def view_definition(self) -> Program | None:
        """The view definition certified by validation (derived, or the
        confirmed expected one)."""
        if self.derived_get is not None:
            return self.derived_get
        if self.expected_get_confirmed:
            return self.strategy.expected_get
        return None

    def failures(self) -> list[CheckResult]:
        return [c for c in self.checks if not c.passed]

    def raise_if_invalid(self) -> None:
        if not self.valid:
            first = self.failures()[0]
            raise ValidationError(
                f'strategy for view {self.strategy.name!r} is invalid: '
                f'{first.name} failed — {first.detail}')

    def __str__(self) -> str:
        verdict = 'VALID' if self.valid else 'INVALID'
        certainty = 'conclusive' if self.conclusive else 'bounded search'
        lines = [f'validation of view {self.strategy.name!r}: {verdict} '
                 f'({certainty}, {self.elapsed:.3f}s, fragment: '
                 f'{self.fragment})']
        lines += [f'  {check}' for check in self.checks]
        if self.derived_get is not None:
            lines.append('  derived view definition:')
            lines += [f'    {line}'
                      for line in pretty(self.derived_get).splitlines()]
        if self.expected_get_confirmed is not None:
            lines.append(f'  expected get confirmed: '
                         f'{self.expected_get_confirmed}')
        return '\n'.join(lines)


# ---------------------------------------------------------------------------
# Pass 1: well-definedness
# ---------------------------------------------------------------------------


def well_definedness_programs(strategy: UpdateStrategy
                              ) -> list[tuple[str, Program]]:
    """The ``d_i :- +r_i(~X), -r_i(~X)`` checks of §4.2 (rule (2))."""
    putdelta = strategy.putdelta
    deltas = putdelta.delta_preds()
    arities = putdelta.arities()
    checks: list[tuple[str, Program]] = []
    for base in sorted({delta_base(p) for p in deltas}):
        plus, minus = insert_pred(base), delete_pred(base)
        if plus not in deltas or minus not in deltas:
            continue  # only one kind of delta: trivially non-contradictory
        args = tuple(Var(f'D{i}') for i in range(arities[plus]))
        goal = f'__wd_{base}__'
        rule = Rule(Atom(goal, args),
                    (Lit(Atom(plus, args), True),
                     Lit(Atom(minus, args), True)))
        checks.append((goal, Program(putdelta.rules + (rule,))))
    return checks


# ---------------------------------------------------------------------------
# The validator
# ---------------------------------------------------------------------------


def _run_check(name: str, goal: str, program: Program, strategy,
               config: SolverConfig, fail_detail: str) -> CheckResult:
    started = time.perf_counter()
    result = check_satisfiable(
        program, goal, schema=strategy.sources.extend(strategy.view),
        edb_arities={strategy.view.name: strategy.view.arity},
        config=config)
    elapsed = time.perf_counter() - started
    if result.is_sat:
        return CheckResult(name, False, fail_detail, result.witness,
                           elapsed)
    return CheckResult(name, True, '', None, elapsed)


def validate(strategy: UpdateStrategy, *,
             config: SolverConfig | None = None,
             derive_when_expected_fails: bool = True) -> ValidationReport:
    """Run Algorithm 1 on ``strategy`` and return the full report.

    When the strategy carries an ``expected_get``, it is tried first as the
    GetPut candidate (and ``expected_get_confirmed`` reports whether it was
    certified); otherwise — or when it fails and
    ``derive_when_expected_fails`` — the view definition is derived from
    the steady-state analysis.
    """
    config = config or SolverConfig()
    started = time.perf_counter()
    fragment = classify(strategy.putdelta, strategy.view.name)
    checks: list[CheckResult] = []
    report = ValidationReport(strategy=strategy, valid=False,
                              conclusive=fragment.lvgn, fragment=fragment,
                              checks=checks)

    def finish() -> ValidationReport:
        report.elapsed = time.perf_counter() - started
        report.valid = all(c.passed for c in checks) and bool(checks)
        return report

    # -- pass 1: well-definedness ---------------------------------------
    for goal, program in well_definedness_programs(strategy):
        base = goal.strip('_').removeprefix('wd_')
        checks.append(_run_check(
            f'well-definedness of Δ{base}', goal, program, strategy,
            config,
            f'putdelta can both insert and delete the same {base} tuple'))
        if not checks[-1].passed:
            return finish()
    if not checks:
        checks.append(CheckResult('well-definedness', True,
                                  'no relation has both +r and -r rules'))

    # -- pass 2: GetPut (expected get, then derivation) --------------------
    get_program: Program | None = None
    if strategy.expected_get is not None:
        ok = True
        for goal, program in getput_check_programs(
                strategy.putdelta, strategy.expected_get,
                strategy.view.name, strategy.sources):
            check = _run_check(
                f'GetPut with expected get ({goal.strip("_")})', goal,
                program, strategy, config,
                'put modifies a source that already matches the expected '
                'view')
            checks.append(check)
            if not check.passed:
                ok = False
                break
        if ok:
            get_program = strategy.expected_get
            report.expected_get_confirmed = True
        elif not derive_when_expected_fails:
            return finish()
        else:
            report.expected_get_confirmed = False

    if get_program is None:
        derive_started = time.perf_counter()
        derivation = derive_get(
            strategy.putdelta, strategy.view.name, strategy.view.arity,
            set(strategy.sources.names()),
            schema=strategy.sources.extend(strategy.view), config=config)
        derive_elapsed = time.perf_counter() - derive_started
        if not derivation.ok:
            # Drop the failed expected-get checks' verdicts from blocking —
            # the derivation verdict subsumes them.
            checks.append(CheckResult(
                'existence of a view definition satisfying GetPut',
                False, derivation.reason or 'derivation failed',
                (derivation.phi3_result.witness
                 if derivation.phi3_result and derivation.phi3_result.is_sat
                 else (derivation.phi12_result.witness
                       if derivation.phi12_result and
                       derivation.phi12_result.is_sat else None)),
                derive_elapsed))
            return finish()
        checks.append(CheckResult(
            'existence of a view definition satisfying GetPut (derived)',
            True, 'steady-state view constructed from φ2', None,
            derive_elapsed))
        get_program = derivation.get_program
        report.derived_get = derivation.get_program
        # The derived get must itself satisfy GetPut; when the expected
        # get failed we keep validating against the derived one, and the
        # earlier failures stop counting toward validity.
        if report.expected_get_confirmed is False:
            report.checks[:] = [
                c for c in checks
                if not c.name.startswith('GetPut with expected get')]
            checks = report.checks
        for goal, program in getput_check_programs(
                strategy.putdelta, get_program, strategy.view.name,
                strategy.sources):
            check = _run_check(
                f'GetPut with derived get ({goal.strip("_")})', goal,
                program, strategy, config,
                'the derived view definition does not satisfy GetPut')
            checks.append(check)
            if not check.passed:
                return finish()

    # -- pass 3: PutGet -------------------------------------------------------
    program, extra_goal, missing_goal = putget_check_program(
        strategy.putdelta, get_program, strategy.view.name,
        strategy.view.arity, strategy.sources)
    checks.append(_run_check(
        'PutGet (no extra tuples: Φ1)', extra_goal, program, strategy,
        config,
        'get(put(S, V)) can contain a tuple outside the updated view'))
    if not checks[-1].passed:
        return finish()
    checks.append(_run_check(
        'PutGet (no missing tuples: Φ2)', missing_goal, program, strategy,
        config,
        'get(put(S, V)) can lose a tuple of the updated view'))
    return finish()
