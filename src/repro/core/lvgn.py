"""LVGN-Datalog fragment membership (§3.2).

LVGN-Datalog = nonrecursive guarded-negation Datalog with equalities,
constants and comparisons, plus the *linear view* restriction:

* **Guarded negation** (§3.2.1): for every atom/equality occurring in a
  rule head or negated in a rule body, some positive body atom (helped by
  equalities against constants) contains all of its variables.
* **Comparisons** are restricted to the forms ``X < c`` / ``X > c``.
* **Linear view** (Def. 3.2): the view occurs only in delta rules and
  ⊥-constraint rules, at most one view atom per rule, and no anonymous
  variable inside a view atom.

:func:`classify` returns a :class:`FragmentReport` explaining membership —
this feeds the Table 1 columns ``LVGN-Datalog`` / ``NR-Datalog``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.datalog.ast import (BuiltinLit, Const, Lit, Program, Rule, Var,
                               is_anonymous, is_delta_pred)
from repro.datalog.dependency import is_nonrecursive
from repro.datalog.pretty import pretty_rule
from repro.datalog.safety import is_safe

__all__ = ['FragmentReport', 'classify', 'is_lvgn', 'check_guarded_rule',
           'check_linear_view']


@dataclass(frozen=True)
class FragmentReport:
    """Which fragments the putback program belongs to, with reasons."""

    nr_datalog: bool
    lvgn: bool
    reasons: tuple[str, ...] = ()

    def __str__(self) -> str:
        fragment = ('LVGN-Datalog' if self.lvgn
                    else 'NR-Datalog¬' if self.nr_datalog
                    else 'not expressible')
        if self.reasons and not self.lvgn:
            return f'{fragment} ({"; ".join(self.reasons)})'
        return fragment


def _const_equated_vars(rule: Rule) -> set[str]:
    """Variables forced equal to a constant by a positive body equality."""
    bound: set[str] = set()
    for literal in rule.body:
        if isinstance(literal, BuiltinLit) and literal.op == '=' \
                and literal.positive:
            left, right = literal.left, literal.right
            if isinstance(left, Var) and isinstance(right, Const):
                bound.add(left.name)
            if isinstance(right, Var) and isinstance(left, Const):
                bound.add(right.name)
    return bound


def check_guarded_rule(rule: Rule) -> str | None:
    """None when the rule is negation guarded (§3.2.1), else a reason.

    The guard for each checked element may be any single positive body atom
    combined with equalities to constants, following the constant handling
    in the proof of Lemma 3.1.
    """
    const_bound = _const_equated_vars(rule)
    guards = [atom.var_names() for atom in rule.positive_atoms()]

    def guarded(var_names: set[str]) -> bool:
        needed = var_names - const_bound
        if not needed:
            return True
        return any(needed <= g for g in guards)

    if rule.head is not None and not guarded(rule.head.var_names()):
        return (f'head of rule "{pretty_rule(rule)}" is not guarded by a '
                f'positive body atom')
    for literal in rule.body:
        if isinstance(literal, Lit) and not literal.positive:
            named = {t.name for t in literal.atom.variables()
                     if not is_anonymous(t)}
            if not guarded(named):
                return (f'negated atom {literal.atom} in rule '
                        f'"{pretty_rule(rule)}" is not guarded')
        elif isinstance(literal, BuiltinLit):
            if literal.op == '=' and not literal.positive:
                if not guarded(literal.var_names()):
                    return (f'negated equality {literal} in rule '
                            f'"{pretty_rule(rule)}" is not guarded')
            elif literal.op in ('<', '>', '<=', '>='):
                if literal.op in ('<=', '>='):
                    return (f'comparison {literal} uses {literal.op}; '
                            f'LVGN-Datalog admits only strict < and >')
                sides = (literal.left, literal.right)
                n_vars = sum(isinstance(t, Var) for t in sides)
                n_consts = sum(isinstance(t, Const) for t in sides)
                if n_vars != 1 or n_consts != 1:
                    return (f'comparison {literal} is not of the X < c / '
                            f'X > c form required by LVGN-Datalog')
                if not literal.positive and not guarded(
                        literal.var_names()):
                    return (f'negated comparison {literal} in rule '
                            f'"{pretty_rule(rule)}" is not guarded')
    return None


def check_linear_view(program: Program, view: str) -> str | None:
    """None when the program conforms to Def. 3.2, else a reason."""
    for rule in program.rules:
        view_lits = [l for l in rule.body
                     if isinstance(l, Lit) and l.atom.pred == view]
        if not view_lits:
            continue
        is_delta_rule = rule.head is not None \
            and is_delta_pred(rule.head.pred)
        if not (is_delta_rule or rule.is_constraint):
            return (f'view {view!r} may occur only in delta rules and '
                    f'constraints, but occurs in "{pretty_rule(rule)}"')
        if len(view_lits) > 1:
            return (f'self-join on the view in rule "{pretty_rule(rule)}" '
                    f'violates the linear view restriction')
        atom = view_lits[0].atom
        if any(is_anonymous(t) for t in atom.args):
            return (f'anonymous variable (projection) in view atom {atom} '
                    f'of rule "{pretty_rule(rule)}" violates the linear '
                    f'view restriction')
    return None


def classify(program: Program, view: str) -> FragmentReport:
    """Classify a putback program for Table 1 reporting."""
    reasons: list[str] = []
    nr = is_nonrecursive(program) and all(is_safe(r) for r in program.rules)
    if not nr:
        reasons.append('not nonrecursive safe Datalog')
        return FragmentReport(False, False, tuple(reasons))
    linear = check_linear_view(program, view)
    if linear:
        reasons.append(linear)
    guard_reason = None
    for rule in program.rules:
        guard_reason = check_guarded_rule(rule)
        if guard_reason:
            reasons.append(guard_reason)
            break
    lvgn = linear is None and guard_reason is None
    return FragmentReport(True, lvgn, tuple(reasons))


def is_lvgn(program: Program, view: str) -> bool:
    return classify(program, view).lvgn
