"""Deriving the view definition from a putback program (§4.3, Lemma 4.2).

Given an update strategy ``put`` (delta rules + constraints), a view
instance ``V`` is a *steady state* for a source ``S`` when ``(S, V)``
satisfies every constraint and ``S ⊕ putdelta(S, V) = S``, i.e. (eq. 11)::

    Δ⁻Ri ∩ Ri = ∅     and     Δ⁺Ri \\ Ri = ∅      for every source Ri.

Each delta rule and each view-referencing constraint therefore contributes
one *condition* — a conjunction that must be unsatisfiable in a steady
state.  The linear-view restriction makes every condition contain at most
one view literal, so the conditions partition into (Lemma 4.2):

* φ1 — residues of conditions with a **positive** view literal
  (they bound V from above:  V ⊆ ¬φ1);
* φ2 — residues of conditions with a **negative** view literal
  (they bound V from below:  φ2 ⊆ V);
* φ3 — view-free conditions (must be unsatisfiable outright).

A steady state exists for every source iff φ3 is unsatisfiable and
``∃Y. φ1(Y) ∧ φ2(Y)`` is unsatisfiable; choosing ``V_min = φ2`` yields the
derived view definition, materialised as Datalog via Appendix B.

Source-only constraints (no view atom) are treated as *axioms* on the
source database — the paper's "satisfiability under Σ" (Theorem 3.2) —
rather than as φ3 contributions, so that e.g. a foreign key among base
tables does not spuriously invalidate every strategy.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.datalog.ast import (Atom, BuiltinLit, Const, Lit, Literal,
                               Program, Rule, Var, delta_base,
                               is_delete_pred, is_delta_pred, is_insert_pred)
from repro.datalog.pretty import pretty_rule
from repro.datalog.transform import tidy_program
from repro.errors import FragmentError, TransformationError, ValidationError
from repro.fol.datalog_to_fol import literal_to_fol, term_to_fol
from repro.fol.fol_to_datalog import fol_to_datalog
from repro.fol.formula import (FoEq, FoVar, Formula, free_variables,
                               make_and, make_exists, make_or)
from repro.fol.solver import SatResult, SolverConfig, check_satisfiable

__all__ = ['Condition', 'SteadyStateAnalysis', 'analyze_steady_state',
           'derive_get']


@dataclass(frozen=True)
class Condition:
    """One steady-state condition: ``origin`` explains which rule produced
    it; ``view_literal`` is its unique view literal (None for φ3
    conditions); ``residue`` is everything else."""

    origin: str
    view_literal: Lit | None
    residue: tuple[Literal, ...]

    @property
    def polarity(self) -> str:
        if self.view_literal is None:
            return 'none'
        return 'positive' if self.view_literal.positive else 'negative'


@dataclass
class SteadyStateAnalysis:
    """The φ1/φ2/φ3 decomposition plus everything needed for the checks."""

    view: str
    view_arity: int
    positive_conditions: list[Condition]
    negative_conditions: list[Condition]
    viewfree_conditions: list[Condition]
    intermediates: Program            # auxiliary IDB rules (view-free)
    source_axioms: Program            # source-only ⊥-constraints
    phi2: Formula | None = None       # the V_min formula (lazy)


def _rename_condition(index: int, literals: list[Literal]
                      ) -> list[Literal]:
    """Standardize a condition's variables apart with a ``#cN`` suffix."""
    names: set[str] = set()
    for literal in literals:
        names |= literal.var_names()
    binding = {name: Var(f'{name}#c{index}') for name in names}
    return [l.substitute(binding) for l in literals]


def _split_view(literals: list[Literal], view: str, origin: str
                ) -> tuple[Lit | None, list[Literal]]:
    view_lits = [l for l in literals
                 if isinstance(l, Lit) and l.atom.pred == view]
    if len(view_lits) > 1:
        raise FragmentError(
            f'{origin}: more than one view literal; the steady-state '
            f'construction requires the linear view restriction (Def. 3.2)')
    view_lit = view_lits[0] if view_lits else None
    residue = [l for l in literals if l is not view_lit]
    return view_lit, residue


def analyze_steady_state(putdelta: Program, view: str, view_arity: int,
                         source_relations: set[str]) -> SteadyStateAnalysis:
    """Decompose the strategy into steady-state conditions (Lemma 4.2)."""
    positive: list[Condition] = []
    negative: list[Condition] = []
    viewfree: list[Condition] = []
    index = 0

    def add(origin: str, literals: list[Literal]) -> None:
        nonlocal index
        renamed = _rename_condition(index, literals)
        index += 1
        view_lit, residue = _split_view(renamed, view, origin)
        condition = Condition(origin, view_lit, tuple(residue))
        if view_lit is None:
            viewfree.append(condition)
        elif view_lit.positive:
            positive.append(condition)
        else:
            negative.append(condition)

    for rule in putdelta.proper_rules():
        pred = rule.head.pred
        if not is_delta_pred(pred):
            continue
        base = delta_base(pred)
        base_atom = Atom(base, rule.head.args)
        if is_delete_pred(pred):
            # Δ⁻R ∩ R ≠ ∅  ⇝  body ∧ r(head)
            extra: Literal = Lit(base_atom, True)
        else:
            # Δ⁺R \ R ≠ ∅  ⇝  body ∧ ¬r(head)
            extra = Lit(base_atom, False)
        add(f'delta rule "{pretty_rule(rule)}"',
            list(rule.body) + [extra])

    source_axiom_rules: list[Rule] = []
    for rule in putdelta.constraints():
        has_view = any(isinstance(l, Lit) and l.atom.pred == view
                       for l in rule.body)
        if has_view:
            add(f'constraint "{pretty_rule(rule)}"', list(rule.body))
        else:
            source_axiom_rules.append(rule)

    intermediates = Program(tuple(
        r for r in putdelta.proper_rules()
        if not is_delta_pred(r.head.pred)))

    return SteadyStateAnalysis(
        view=view, view_arity=view_arity,
        positive_conditions=positive, negative_conditions=negative,
        viewfree_conditions=viewfree, intermediates=intermediates,
        source_axioms=Program(tuple(source_axiom_rules)))


# ---------------------------------------------------------------------------
# Satisfiability checks (φ3; ∃Y φ1 ∧ φ2)
# ---------------------------------------------------------------------------

PHI3_GOAL = '__phi3__'
PHI12_GOAL = '__phi12__'


def phi3_check_program(analysis: SteadyStateAnalysis) -> Program:
    """Datalog program whose goal is satisfiable iff φ3 is."""
    rules = [Rule(Atom(PHI3_GOAL, ()), condition.residue)
             for condition in analysis.viewfree_conditions]
    return Program(tuple(rules) + analysis.intermediates.rules +
                   analysis.source_axioms.rules)


def _alignment_equalities(condition: Condition,
                          shared: tuple[Var, ...]) -> list[Literal]:
    """Equalities binding the shared Y-tuple to the condition's view-atom
    arguments."""
    atom = condition.view_literal.atom
    return [BuiltinLit('=', y, term) for y, term in zip(shared, atom.args)]


def phi12_check_program(analysis: SteadyStateAnalysis) -> Program:
    """Datalog program whose goal is satisfiable iff ∃Y φ1(Y) ∧ φ2(Y) is.

    One rule per (positive condition, negative condition) pair, with the
    two view tuples unified through a shared variable vector.
    """
    shared = tuple(Var(f'Y{i}#s') for i in range(analysis.view_arity))
    rules: list[Rule] = []
    for pos in analysis.positive_conditions:
        for neg in analysis.negative_conditions:
            body = (list(pos.residue) + list(neg.residue) +
                    _alignment_equalities(pos, shared) +
                    _alignment_equalities(neg, shared))
            rules.append(Rule(Atom(PHI12_GOAL, ()), tuple(body)))
    return Program(tuple(rules) + analysis.intermediates.rules +
                   analysis.source_axioms.rules)


# ---------------------------------------------------------------------------
# φ2 as an FO formula and the derived get
# ---------------------------------------------------------------------------


def _residue_to_fol(condition: Condition) -> Formula:
    """FO conjunction of the residue (intermediates stay opaque atoms)."""
    return make_and(literal_to_fol(l) for l in condition.residue)


def phi2_formula(analysis: SteadyStateAnalysis,
                 head_vars: tuple[FoVar, ...]) -> Formula:
    """φ2(Y) = ∨ over negative conditions of ∃Z (eqs ∧ residue)."""
    disjuncts: list[Formula] = []
    for condition in analysis.negative_conditions:
        atom = condition.view_literal.atom
        equalities = [FoEq(y, term_to_fol(t))
                      for y, t in zip(head_vars, atom.args)]
        conj = make_and(equalities + [_residue_to_fol(condition)])
        head_names = {v.name for v in head_vars}
        bound = sorted(free_variables(conj) - head_names)
        disjuncts.append(make_exists(tuple(FoVar(n) for n in bound), conj))
    return make_or(disjuncts)


@dataclass
class GetDerivation:
    """Outcome of §4.3: either a derived get or the failing check."""

    ok: bool
    get_program: Program | None = None
    phi3_result: SatResult | None = None
    phi12_result: SatResult | None = None
    reason: str | None = None


def derive_get(putdelta: Program, view: str, view_arity: int,
               source_relations: set[str], *,
               schema=None,
               config: SolverConfig | None = None) -> GetDerivation:
    """Construct a view definition satisfying GetPut, or explain failure.

    Implements §4.3: check φ3 and ∃Y φ1∧φ2 unsatisfiable (under the
    source-only axioms), then materialise ``get := φ2`` through the
    safe-range FO → Datalog translation of Appendix B.
    """
    try:
        analysis = analyze_steady_state(putdelta, view, view_arity,
                                        source_relations)
    except FragmentError as exc:
        return GetDerivation(ok=False, reason=str(exc))

    phi3 = check_satisfiable(phi3_check_program(analysis), PHI3_GOAL,
                             schema=schema, config=config)
    if phi3.is_sat:
        return GetDerivation(
            ok=False, phi3_result=phi3,
            reason=('no steady-state view exists: a view-independent '
                    'condition (φ3) is satisfiable — some source database '
                    'is always modified by put'))

    phi12 = check_satisfiable(phi12_check_program(analysis), PHI12_GOAL,
                              schema=schema, config=config)
    if phi12.is_sat:
        return GetDerivation(
            ok=False, phi3_result=phi3, phi12_result=phi12,
            reason=('no steady-state view exists: the lower bound φ2 and '
                    'upper bound ¬φ1 of the view cross (∃Y φ1 ∧ φ2 is '
                    'satisfiable)'))

    head_vars = tuple(FoVar(f'GY{i}') for i in range(view_arity))
    phi2 = phi2_formula(analysis, head_vars)
    analysis.phi2 = phi2
    if not analysis.negative_conditions:
        return GetDerivation(
            ok=False, phi3_result=phi3, phi12_result=phi12,
            reason=('the strategy never deletes view tuples from the '
                    'source (no negative view condition), so V_min is '
                    'empty everywhere; the derived get would be the empty '
                    'view — refusing to construct a degenerate definition'))
    try:
        program, _goal = fol_to_datalog(phi2, view,
                                        tuple(v.name for v in head_vars))
    except TransformationError as exc:
        return GetDerivation(ok=False, phi3_result=phi3,
                             phi12_result=phi12,
                             reason=f'φ2 is not safe range: {exc}')
    full = Program(program.rules + analysis.intermediates.rules)
    get_program = tidy_program(full, {view})
    return GetDerivation(ok=True, get_program=get_program,
                         phi3_result=phi3, phi12_result=phi12)
