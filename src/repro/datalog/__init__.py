"""Nonrecursive Datalog with negation and builtin predicates (§2.1, §3).

This package is the language substrate of the reproduction: AST, parser,
pretty-printer, safety and dependency analyses, and a bottom-up evaluator.
"""

from repro.datalog.ast import (Atom, BuiltinLit, Const, Lit, Literal,
                               Program, Rule, Var, delete_pred, delta_base,
                               insert_pred, is_anonymous, is_delete_pred,
                               is_delta_pred, is_insert_pred)
from repro.datalog.dependency import (check_nonrecursive, dependency_graph,
                                      is_nonrecursive, stratify)
from repro.datalog.evaluator import (constraint_violations, evaluate,
                                     evaluate_query, execute_plan, holds)
from repro.datalog.parser import parse_atom, parse_program, parse_rule
from repro.datalog.plan import (ExecutionPlan, RulePlan, compile_program,
                                compile_rule)
from repro.datalog.pretty import pretty
from repro.datalog.safety import (check_program_safety, check_rule_safety,
                                  is_safe)

__all__ = [
    'Atom', 'BuiltinLit', 'Const', 'Lit', 'Literal', 'Program', 'Rule',
    'Var', 'delete_pred', 'delta_base', 'insert_pred', 'is_anonymous',
    'is_delete_pred', 'is_delta_pred', 'is_insert_pred',
    'check_nonrecursive', 'dependency_graph', 'is_nonrecursive', 'stratify',
    'constraint_violations', 'evaluate', 'evaluate_query', 'holds',
    'execute_plan', 'ExecutionPlan', 'RulePlan', 'compile_program',
    'compile_rule',
    'parse_atom', 'parse_program', 'parse_rule', 'pretty',
    'check_program_safety', 'check_rule_safety', 'is_safe',
]
