"""Recursive-descent parser for BIRDS-style Datalog programs.

Grammar (terminals from :mod:`repro.datalog.lexer`)::

    program    ::= rule*
    rule       ::= head ':-' body '.' | head '.'
    head       ::= atom | FALSUM
    body       ::= literal (',' literal)*
    literal    ::= [NOT] atom | [NOT] builtin
    atom       ::= ['+'|'-'] IDENT '(' term (',' term)* ')'
    builtin    ::= term OP term
    term       ::= VARIABLE | ANON | INT | FLOAT | STRING

Anonymous ``_`` markers are expanded into fresh variables named
``_anonN`` so that downstream analyses can treat them as ordinary variables
while :func:`repro.datalog.ast.is_anonymous` still recognises them.
"""

from __future__ import annotations

from repro.datalog.ast import (Atom, BuiltinLit, Const, Lit, Program, Rule,
                               Term, Var)
from repro.datalog.lexer import Token, TokenKind, tokenize
from repro.errors import DatalogSyntaxError

__all__ = ['parse_program', 'parse_rule', 'parse_atom']


class _Parser:

    def __init__(self, text: str):
        self.tokens = tokenize(text)
        self.pos = 0
        self.anon_counter = 0

    # -- token helpers ----------------------------------------------------

    @property
    def current(self) -> Token:
        return self.tokens[self.pos]

    def advance(self) -> Token:
        token = self.tokens[self.pos]
        if token.kind != TokenKind.EOF:
            self.pos += 1
        return token

    def expect(self, kind: str) -> Token:
        token = self.current
        if token.kind != kind:
            raise DatalogSyntaxError(
                f'expected {kind} but found {token.kind} ({token.text!r})',
                token.line, token.column)
        return self.advance()

    def at(self, kind: str) -> bool:
        return self.current.kind == kind

    # -- grammar ------------------------------------------------------------

    def parse_program(self) -> Program:
        rules: list[Rule] = []
        while not self.at(TokenKind.EOF):
            rules.append(self.parse_rule())
        return Program(tuple(rules))

    def parse_rule(self) -> Rule:
        head: Atom | None
        if self.at(TokenKind.FALSUM):
            self.advance()
            head = None
        else:
            head = self.parse_atom()
            if head.var_names() and any(
                    t.name.startswith('_anon')
                    for t in head.variables()):
                token = self.current
                raise DatalogSyntaxError(
                    'anonymous variable not allowed in a rule head',
                    token.line, token.column)
        body: list = []
        if self.at(TokenKind.ARROW):
            self.advance()
            body.append(self.parse_literal())
            while self.at(TokenKind.COMMA):
                self.advance()
                body.append(self.parse_literal())
        self.expect(TokenKind.DOT)
        return Rule(head, tuple(body))

    def parse_literal(self):
        positive = True
        if self.at(TokenKind.NOT):
            self.advance()
            positive = False
        # Distinguish an atom from a builtin by lookahead: a builtin starts
        # with a term (variable/constant) followed by an operator; '+'/'-'
        # starts an atom only when a predicate name follows (otherwise it
        # is a signed numeric literal).
        sign_starts_atom = (
            (self.at(TokenKind.PLUS) or self.at(TokenKind.MINUS))
            and self.pos + 1 < len(self.tokens)
            and self.tokens[self.pos + 1].kind == TokenKind.IDENT)
        if self.at(TokenKind.IDENT) or sign_starts_atom:
            atom = self.parse_atom()
            return Lit(atom, positive)
        left = self.parse_term()
        op_token = self.expect(TokenKind.OP)
        right = self.parse_term()
        op = op_token.value
        if op == '<>':
            # Canonical form: '<>' is represented as negated equality so the
            # guardedness rules (§3.2.1) see a single equality predicate.
            return BuiltinLit('=', left, right, not positive)
        return BuiltinLit(op, left, right, positive)

    def parse_atom(self) -> Atom:
        prefix = ''
        if self.at(TokenKind.PLUS):
            self.advance()
            prefix = '+'
        elif self.at(TokenKind.MINUS):
            self.advance()
            prefix = '-'
        name_token = self.expect(TokenKind.IDENT)
        self.expect(TokenKind.LPAREN)
        args: list[Term] = [self.parse_term()]
        while self.at(TokenKind.COMMA):
            self.advance()
            args.append(self.parse_term())
        self.expect(TokenKind.RPAREN)
        return Atom(prefix + name_token.text, tuple(args))

    def parse_term(self) -> Term:
        token = self.current
        if token.kind == TokenKind.VARIABLE:
            self.advance()
            return Var(token.text)
        if token.kind == TokenKind.ANON:
            self.advance()
            name = f'_anon{self.anon_counter}'
            self.anon_counter += 1
            return Var(name)
        if token.kind == TokenKind.MINUS:
            # Negative numeric literal (the delta-marker reading of '-'
            # never occurs in term position).
            self.advance()
            number = self.current
            if number.kind not in (TokenKind.INT, TokenKind.FLOAT):
                raise DatalogSyntaxError(
                    f"expected a number after '-' but found "
                    f'{number.kind} ({number.text!r})',
                    number.line, number.column)
            self.advance()
            return Const(-number.value)
        if token.kind in (TokenKind.INT, TokenKind.FLOAT, TokenKind.STRING):
            self.advance()
            return Const(token.value)
        raise DatalogSyntaxError(
            f'expected a term but found {token.kind} ({token.text!r})',
            token.line, token.column)


def parse_program(text: str) -> Program:
    """Parse a full Datalog program from source text."""
    return _Parser(text).parse_program()


def parse_rule(text: str) -> Rule:
    """Parse a single rule; raises if trailing input remains."""
    parser = _Parser(text)
    rule = parser.parse_rule()
    if not parser.at(TokenKind.EOF):
        token = parser.current
        raise DatalogSyntaxError('trailing input after rule',
                                 token.line, token.column)
    return rule


def parse_atom(text: str) -> Atom:
    """Parse a single atom such as ``r(X, 'a', 3)``."""
    parser = _Parser(text)
    atom = parser.parse_atom()
    if not parser.at(TokenKind.EOF):
        token = parser.current
        raise DatalogSyntaxError('trailing input after atom',
                                 token.line, token.column)
    return atom
