"""Safety (range restriction) analysis for Datalog rules.

A rule is *safe* when every variable it mentions is *bound*:

* variables occurring in a positive relational atom are bound;
* an equality ``X = c`` (or ``c = X``) binds ``X``;
* an equality ``X = Y`` propagates boundness between ``X`` and ``Y``;
* negated literals and comparisons bind nothing — all of their variables
  must be bound elsewhere (the "safe way" of §2.1).

The same fixpoint drives literal scheduling in the evaluator (sideways
information passing), so safety here guarantees evaluability there.
"""

from __future__ import annotations

from repro.datalog.ast import BuiltinLit, Lit, Program, Rule, Var
from repro.errors import SafetyError

__all__ = ['bound_variables', 'check_rule_safety', 'check_program_safety',
           'is_safe']


def bound_variables(rule: Rule) -> set[str]:
    """The set of variables of ``rule`` bound per the rules above."""
    bound: set[str] = set()
    for literal in rule.body:
        if isinstance(literal, Lit) and literal.positive:
            bound |= literal.var_names()
    # Fixpoint over positive equalities.
    changed = True
    while changed:
        changed = False
        for literal in rule.body:
            if not isinstance(literal, BuiltinLit) or literal.op != '=' \
                    or not literal.positive:
                continue
            left, right = literal.left, literal.right
            left_bound = not isinstance(left, Var) or left.name in bound
            right_bound = not isinstance(right, Var) or right.name in bound
            if left_bound and isinstance(right, Var) \
                    and right.name not in bound:
                bound.add(right.name)
                changed = True
            if right_bound and isinstance(left, Var) \
                    and left.name not in bound:
                bound.add(left.name)
                changed = True
    return bound


def _exempt_variables(rule: Rule) -> set[str]:
    """Anonymous variables inside *negated* atoms are implicitly
    existentially quantified inside the negation (``not r(X, _)`` reads
    ¬∃Y r(X, Y), as used throughout the paper's case study) and therefore
    need no range restriction."""
    from repro.datalog.ast import is_anonymous
    exempt: set[str] = set()
    for literal in rule.body:
        if isinstance(literal, Lit) and not literal.positive:
            exempt |= {t.name for t in literal.atom.args
                       if is_anonymous(t)}
    return exempt


def check_rule_safety(rule: Rule) -> None:
    """Raise :class:`SafetyError` when ``rule`` is unsafe."""
    bound = bound_variables(rule)
    unbound = rule.variables() - bound - _exempt_variables(rule)
    if unbound:
        raise SafetyError(
            f'unsafe rule {rule}: variable(s) '
            f"{', '.join(sorted(unbound))} are not range restricted")


def is_safe(rule: Rule) -> bool:
    try:
        check_rule_safety(rule)
    except SafetyError:
        return False
    return True


def check_program_safety(program: Program) -> None:
    """Raise on the first unsafe rule of ``program``."""
    for rule in program.rules:
        check_rule_safety(rule)
