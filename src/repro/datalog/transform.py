"""Program transformations: simplification, renaming, pruning.

These keep machine-derived programs (the constructed ``get`` of §4.3, the
incrementalized ``∂put`` of §5, the ``putget`` composition of §4.4)
readable and free of redundant literals, without changing semantics.
"""

from __future__ import annotations

import re

from repro.datalog.ast import (Atom, BuiltinLit, Const, Lit, Literal,
                               Program, Rule, Term, Var)

__all__ = ['simplify_rule', 'simplify_program', 'prune_unreachable',
           'rename_rule_variables', 'tidy_program', 'rename_predicates']


def _substitute_rule(rule: Rule, binding: dict[str, Term]) -> Rule:
    return rule.substitute(binding)


def eliminate_var_equalities(rule: Rule) -> Rule:
    """Remove positive ``X = Y`` literals by substitution.

    Head variables are preferred as representatives so the head keeps its
    original names.  ``X = c`` equalities are also folded in by replacing
    ``X`` with the constant everywhere.
    """
    head_names = set() if rule.head is None else rule.head.var_names()
    changed = True
    while changed:
        changed = False
        for i, literal in enumerate(rule.body):
            if not isinstance(literal, BuiltinLit) or literal.op != '=' \
                    or not literal.positive:
                continue
            left, right = literal.left, literal.right
            binding: dict[str, Term] | None = None
            if isinstance(left, Var) and isinstance(right, Var):
                if left.name == right.name:
                    binding = {}
                elif right.name in head_names and \
                        left.name not in head_names:
                    binding = {left.name: right}
                else:
                    binding = {right.name: left}
            elif isinstance(left, Var) and isinstance(right, Const):
                if left.name not in head_names:
                    binding = {left.name: right}
            elif isinstance(right, Var) and isinstance(left, Const):
                if right.name not in head_names:
                    binding = {right.name: left}
            elif isinstance(left, Const) and isinstance(right, Const) \
                    and left.value == right.value:
                binding = {}
            if binding is None:
                continue
            rest = rule.body[:i] + rule.body[i + 1:]
            rule = Rule(rule.head, rest).substitute(binding)
            changed = True
            break
    return rule


def dedupe_literals(rule: Rule) -> Rule:
    seen: set = set()
    kept: list[Literal] = []
    for literal in rule.body:
        if literal in seen:
            continue
        seen.add(literal)
        kept.append(literal)
    return Rule(rule.head, tuple(kept))


def drop_trivial_builtins(rule: Rule) -> Rule:
    """Remove tautological builtins (``t = t``, true ground comparisons)."""
    kept: list[Literal] = []
    for literal in rule.body:
        if isinstance(literal, BuiltinLit):
            left, right = literal.left, literal.right
            if literal.op == '=' and literal.positive and left == right:
                continue
            if isinstance(left, Const) and isinstance(right, Const):
                from repro.datalog.evaluator import _compare
                try:
                    value = _compare(literal.op if literal.op != '=' else
                                     '=', left.value, right.value)
                except Exception:  # mixed types: keep literal, fails later
                    kept.append(literal)
                    continue
                if value == literal.positive:
                    continue  # always true: drop
        kept.append(literal)
    return Rule(rule.head, tuple(kept))


def simplify_rule(rule: Rule) -> Rule:
    return dedupe_literals(drop_trivial_builtins(
        eliminate_var_equalities(rule)))


def rename_rule_variables(rule: Rule) -> Rule:
    """Strip machine-generated suffixes (``X#3`` → ``X``) when unambiguous,
    else fall back to ``V0, V1, ...``; anonymity is preserved."""
    names = sorted(rule.variables())
    mapping: dict[str, Term] = {}
    used: set[str] = set()
    counter = 0
    for name in names:
        base = name.split('#', 1)[0]
        candidate = base
        if candidate in used or not candidate:
            prefix = '_V' if name.startswith('_') else 'V'
            while f'{prefix}{counter}' in used or f'{prefix}{counter}' \
                    in names:
                counter += 1
            candidate = f'{prefix}{counter}'
            counter += 1
        used.add(candidate)
        if candidate != name:
            mapping[name] = Var(candidate)
    return rule.substitute(mapping) if mapping else rule


def simplify_program(program: Program) -> Program:
    rules = []
    seen: set[Rule] = set()
    for rule in program.rules:
        simplified = rename_rule_variables(simplify_rule(rule))
        if simplified not in seen:
            seen.add(simplified)
            rules.append(simplified)
    return Program(tuple(rules))


def prune_unreachable(program: Program, goals: set[str]) -> Program:
    """Keep only rules (transitively) needed to compute ``goals``;
    constraint rules are always kept."""
    needed = set(goals)
    changed = True
    while changed:
        changed = False
        for rule in program.rules:
            if rule.head is None or rule.head.pred in needed:
                for pred in rule.body_preds():
                    if pred not in needed:
                        needed.add(pred)
                        changed = True
    kept = tuple(r for r in program.rules
                 if r.head is None or r.head.pred in needed)
    return Program(kept)


def rename_predicates(program: Program, mapping: dict[str, str]) -> Program:
    """Rename predicate symbols throughout (heads and bodies)."""
    def rename_atom(atom: Atom) -> Atom:
        return Atom(mapping.get(atom.pred, atom.pred), atom.args)

    rules = []
    for rule in program.rules:
        head = None if rule.head is None else rename_atom(rule.head)
        body = tuple(Lit(rename_atom(l.atom), l.positive)
                     if isinstance(l, Lit) else l for l in rule.body)
        rules.append(Rule(head, body))
    return Program(tuple(rules))


def inline_single_rule_predicates(program: Program,
                                  keep: set[str]) -> Program:
    """Unfold IDB predicates defined by exactly one rule into their
    (positive) uses — a standard Datalog cleanup that removes the
    projection indirections produced by the FO → Datalog translation.

    Predicates in ``keep``, predicates with multiple rules, and predicates
    that occur negated anywhere are left untouched (unfolding under ¬
    would change semantics).
    """
    changed = True
    while changed:
        changed = False
        negated: set[str] = set()
        use_count: dict[str, int] = {}
        for rule in program.rules:
            for literal in rule.body:
                if isinstance(literal, Lit):
                    use_count[literal.atom.pred] = \
                        use_count.get(literal.atom.pred, 0) + 1
                    if not literal.positive:
                        negated.add(literal.atom.pred)
        candidates = [p for p in program.idb_preds()
                      if p not in keep and p not in negated
                      and len(program.rules_for(p)) == 1]
        for pred in candidates:
            definition = program.rules_for(pred)[0]
            if pred in definition.body_preds():
                continue  # self-reference (cannot happen when acyclic)
            new_rules: list[Rule] = []
            for rule in program.rules:
                if rule is definition:
                    continue
                new_rules.append(_inline_into(rule, pred, definition))
            program = Program(tuple(new_rules))
            changed = True
            break
    return program


def _inline_into(rule: Rule, pred: str, definition: Rule) -> Rule:
    """Replace every positive ``pred`` literal in ``rule`` by the body of
    ``definition`` (standardized apart, head unified via equalities)."""
    if pred not in rule.body_preds():
        return rule
    counter = 0
    body: list[Literal] = []
    for literal in rule.body:
        if not isinstance(literal, Lit) or literal.atom.pred != pred \
                or not literal.positive:
            body.append(literal)
            continue
        def fresh_name(name: str) -> str:
            # Preserve the '_' prefix so anonymity survives renaming.
            if name.startswith('_'):
                return f'_I{counter}_{name.lstrip("_")}'
            return f'I{counter}_{name}'

        renamed = definition.substitute(
            {name: Var(fresh_name(name))
             for name in definition.variables()})
        counter += 1
        for head_term, arg in zip(renamed.head.args, literal.atom.args):
            body.append(BuiltinLit('=', head_term, arg))
        body.extend(renamed.body)
    return simplify_rule(Rule(rule.head, tuple(body)))


def tidy_program(program: Program, goals: set[str]) -> Program:
    """The standard cleanup pipeline for machine-derived programs."""
    pruned = prune_unreachable(program, goals)
    inlined = inline_single_rule_predicates(pruned, goals)
    return simplify_program(prune_unreachable(inlined, goals))
