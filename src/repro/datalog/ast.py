"""Abstract syntax for nonrecursive Datalog with negation and builtins.

The surface language follows the paper (§2.1, §3): a program is a set of
rules ``H :- L1, ..., Ln.`` where each ``Li`` is a possibly negated
relational atom, an equality, or a comparison.  Three syntactic conventions
from the paper are encoded directly in the data model:

* Delta predicates ``+r`` / ``-r`` denote insertions into / deletions from
  the base relation ``r`` (§3.1).  They are represented as ordinary predicate
  symbols whose name carries the ``+``/``-`` prefix; the helpers
  :func:`is_insert_pred`, :func:`is_delete_pred`, :func:`is_delta_pred` and
  :func:`delta_base` interpret the prefix.
* Constraint rules have the truth constant ``⊥`` as their head (§3.2.3);
  they are represented with ``head=None`` (see :attr:`Rule.is_constraint`).
* Anonymous variables ``_`` are expanded by the parser into fresh variables
  whose name starts with ``'_'``; :func:`is_anonymous` recognises them
  (needed by the linear-view check, Def. 3.2).

All AST nodes are immutable (frozen dataclasses) so they can be used as
dictionary keys and set members, shared freely, and safely cached.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Mapping, Sequence, Union

__all__ = [
    'Term', 'Var', 'Const', 'Atom', 'Literal', 'BuiltinLit', 'Lit', 'Rule',
    'Program', 'COMPARISON_OPS', 'BUILTIN_OPS', 'insert_pred', 'delete_pred',
    'is_insert_pred', 'is_delete_pred', 'is_delta_pred', 'delta_base',
    'is_anonymous', 'fresh_var_factory', 'substitute_term',
]

# ---------------------------------------------------------------------------
# Terms
# ---------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class Var:
    """A Datalog variable.  Names conventionally start with an uppercase
    letter; anonymous variables expand to names starting with ``'_'``."""

    name: str

    def __repr__(self) -> str:
        return f'Var({self.name!r})'

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True, slots=True)
class Const:
    """A typed constant: ``int``, ``float`` or ``str``.

    Dates are modelled as ISO-8601 strings (``'1962-01-01'``), which makes
    lexicographic string comparison coincide with chronological order — the
    same trick the paper's case study relies on for ``residents1962``.
    """

    value: Union[int, float, str]

    def __repr__(self) -> str:
        return f'Const({self.value!r})'

    def __str__(self) -> str:
        if isinstance(self.value, str):
            return f"'{self.value}'"
        return repr(self.value)


Term = Union[Var, Const]


def is_anonymous(term: Term) -> bool:
    """True for variables produced from the anonymous ``_`` marker."""
    return isinstance(term, Var) and term.name.startswith('_')


def substitute_term(term: Term, binding: Mapping[str, Term]) -> Term:
    """Apply a variable binding to a term (identity for constants)."""
    if isinstance(term, Var):
        return binding.get(term.name, term)
    return term


def fresh_var_factory(prefix: str = 'FV') -> Iterator[Var]:
    """Yield an endless supply of fresh variables ``FV0, FV1, ...``."""
    counter = 0
    while True:
        yield Var(f'{prefix}{counter}')
        counter += 1


# ---------------------------------------------------------------------------
# Delta predicate naming (§3.1)
# ---------------------------------------------------------------------------


def insert_pred(name: str) -> str:
    """Predicate symbol for insertions into relation ``name`` (``+name``)."""
    return '+' + name


def delete_pred(name: str) -> str:
    """Predicate symbol for deletions from relation ``name`` (``-name``)."""
    return '-' + name


def is_insert_pred(pred: str) -> bool:
    return pred.startswith('+')


def is_delete_pred(pred: str) -> bool:
    return pred.startswith('-')


def is_delta_pred(pred: str) -> bool:
    return pred[:1] in '+-'


def delta_base(pred: str) -> str:
    """The base relation of a delta predicate (``'+r' -> 'r'``); identity
    for ordinary predicates."""
    if is_delta_pred(pred):
        return pred[1:]
    return pred


# ---------------------------------------------------------------------------
# Atoms and literals
# ---------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class Atom:
    """A relational atom ``pred(t1, ..., tk)``."""

    pred: str
    args: tuple[Term, ...]

    def __post_init__(self):
        # Defensive: accept any sequence but store a tuple.
        if not isinstance(self.args, tuple):
            object.__setattr__(self, 'args', tuple(self.args))

    @property
    def arity(self) -> int:
        return len(self.args)

    def variables(self) -> tuple[Var, ...]:
        """The variables of the atom, in order of occurrence (with repeats)."""
        return tuple(t for t in self.args if isinstance(t, Var))

    def var_names(self) -> set[str]:
        return {t.name for t in self.args if isinstance(t, Var)}

    def is_ground(self) -> bool:
        return all(isinstance(t, Const) for t in self.args)

    def substitute(self, binding: Mapping[str, Term]) -> 'Atom':
        return Atom(self.pred, tuple(substitute_term(t, binding)
                                     for t in self.args))

    def __str__(self) -> str:
        return f"{self.pred}({', '.join(str(a) for a in self.args)})"


# Comparison operators supported in rule bodies.  ``=`` and ``<>`` are the
# equality builtins; the four order comparisons require a totally ordered
# domain (§3.2.1).
COMPARISON_OPS = ('<', '>', '<=', '>=')
BUILTIN_OPS = ('=', '<>') + COMPARISON_OPS

_NEGATED_OP = {'=': '<>', '<>': '=', '<': '>=', '>': '<=',
               '<=': '>', '>=': '<'}


@dataclass(frozen=True, slots=True)
class Lit:
    """A possibly negated relational atom occurring in a rule body."""

    atom: Atom
    positive: bool = True

    def negate(self) -> 'Lit':
        return Lit(self.atom, not self.positive)

    def variables(self) -> tuple[Var, ...]:
        return self.atom.variables()

    def var_names(self) -> set[str]:
        return self.atom.var_names()

    def substitute(self, binding: Mapping[str, Term]) -> 'Lit':
        return Lit(self.atom.substitute(binding), self.positive)

    def __str__(self) -> str:
        prefix = '' if self.positive else 'not '
        return prefix + str(self.atom)


@dataclass(frozen=True, slots=True)
class BuiltinLit:
    """A builtin literal ``t1 op t2`` (possibly negated, e.g. ``not Z = 1``).

    ``op`` is one of :data:`BUILTIN_OPS`.  The paper restricts comparisons in
    LVGN-Datalog to the forms ``X < c`` / ``X > c`` (§3.2.1); the general
    language — and this AST — permits arbitrary term operands, and the LVGN
    fragment checker enforces the restriction separately.
    """

    op: str
    left: Term
    right: Term
    positive: bool = True

    def __post_init__(self):
        if self.op not in BUILTIN_OPS:
            raise ValueError(f'unknown builtin operator {self.op!r}')

    def negate(self) -> 'BuiltinLit':
        return BuiltinLit(self.op, self.left, self.right, not self.positive)

    def normalized(self) -> 'BuiltinLit':
        """Push negation into the operator: ``not X = 1`` becomes
        ``X <> 1``.  The result is always positive."""
        if self.positive:
            return self
        return BuiltinLit(_NEGATED_OP[self.op], self.left, self.right, True)

    def variables(self) -> tuple[Var, ...]:
        return tuple(t for t in (self.left, self.right)
                     if isinstance(t, Var))

    def var_names(self) -> set[str]:
        return {t.name for t in (self.left, self.right)
                if isinstance(t, Var)}

    def substitute(self, binding: Mapping[str, Term]) -> 'BuiltinLit':
        return BuiltinLit(self.op, substitute_term(self.left, binding),
                          substitute_term(self.right, binding), self.positive)

    def __str__(self) -> str:
        body = f'{self.left} {self.op} {self.right}'
        return body if self.positive else f'not {body}'


Literal = Union[Lit, BuiltinLit]


# ---------------------------------------------------------------------------
# Rules and programs
# ---------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class Rule:
    """A Datalog rule ``head :- body.``

    Constraint rules (⊥ head, §3.2.3) are represented with ``head=None``.
    """

    head: Atom | None
    body: tuple[Literal, ...]

    def __post_init__(self):
        if not isinstance(self.body, tuple):
            object.__setattr__(self, 'body', tuple(self.body))

    @property
    def is_constraint(self) -> bool:
        return self.head is None

    @property
    def head_pred(self) -> str | None:
        return None if self.head is None else self.head.pred

    def positive_atoms(self) -> tuple[Atom, ...]:
        return tuple(l.atom for l in self.body
                     if isinstance(l, Lit) and l.positive)

    def negative_atoms(self) -> tuple[Atom, ...]:
        return tuple(l.atom for l in self.body
                     if isinstance(l, Lit) and not l.positive)

    def builtins(self) -> tuple[BuiltinLit, ...]:
        return tuple(l for l in self.body if isinstance(l, BuiltinLit))

    def body_preds(self) -> set[str]:
        return {l.atom.pred for l in self.body if isinstance(l, Lit)}

    def variables(self) -> set[str]:
        names: set[str] = set()
        if self.head is not None:
            names |= self.head.var_names()
        for literal in self.body:
            names |= literal.var_names()
        return names

    def substitute(self, binding: Mapping[str, Term]) -> 'Rule':
        head = None if self.head is None else self.head.substitute(binding)
        return Rule(head, tuple(l.substitute(binding) for l in self.body))

    def rename_apart(self, taken: set[str],
                     prefix: str = 'R') -> 'Rule':
        """Rename this rule's variables away from ``taken`` (standardizing
        apart before unfolding)."""
        binding: dict[str, Term] = {}
        counter = 0
        for name in sorted(self.variables()):
            if name in taken:
                while f'{prefix}{counter}' in taken or \
                        f'{prefix}{counter}' in self.variables():
                    counter += 1
                binding[name] = Var(f'{prefix}{counter}')
                counter += 1
        if not binding:
            return self
        return self.substitute(binding)

    def __str__(self) -> str:
        head = '⊥' if self.head is None else str(self.head)
        if not self.body:
            return f'{head}.'
        return f"{head} :- {', '.join(str(l) for l in self.body)}."


@dataclass(frozen=True)
class Program:
    """An ordered, immutable collection of Datalog rules.

    The program does not assume a schema: EDB/IDB classification is derived
    (a predicate is IDB iff it heads a rule).  Constraint rules are carried
    alongside ordinary rules, as in the paper's extended LVGN-Datalog.
    """

    rules: tuple[Rule, ...]
    _rules_by_head: dict = field(default=None, compare=False, repr=False)

    def __post_init__(self):
        if not isinstance(self.rules, tuple):
            object.__setattr__(self, 'rules', tuple(self.rules))
        by_head: dict[str, list[Rule]] = {}
        for rule in self.rules:
            if rule.head is not None:
                by_head.setdefault(rule.head.pred, []).append(rule)
        object.__setattr__(self, '_rules_by_head', by_head)

    def __iter__(self) -> Iterator[Rule]:
        return iter(self.rules)

    def __len__(self) -> int:
        return len(self.rules)

    def idb_preds(self) -> set[str]:
        """Predicates defined by at least one rule."""
        return set(self._rules_by_head)

    def edb_preds(self) -> set[str]:
        """Predicates used in bodies but never defined."""
        used: set[str] = set()
        for rule in self.rules:
            used |= rule.body_preds()
        return used - self.idb_preds()

    def all_preds(self) -> set[str]:
        preds = self.idb_preds()
        for rule in self.rules:
            preds |= rule.body_preds()
        return preds

    def rules_for(self, pred: str) -> tuple[Rule, ...]:
        return tuple(self._rules_by_head.get(pred, ()))

    def constraints(self) -> tuple[Rule, ...]:
        return tuple(r for r in self.rules if r.is_constraint)

    def proper_rules(self) -> tuple[Rule, ...]:
        return tuple(r for r in self.rules if not r.is_constraint)

    def delta_preds(self) -> set[str]:
        """IDB delta predicates (``+r``/``-r``) defined by this program."""
        return {p for p in self.idb_preds() if is_delta_pred(p)}

    def constants(self) -> set[Const]:
        """All constants mentioned anywhere in the program."""
        consts: set[Const] = set()
        for rule in self.rules:
            atoms: list[Atom] = []
            if rule.head is not None:
                atoms.append(rule.head)
            for literal in rule.body:
                if isinstance(literal, Lit):
                    atoms.append(literal.atom)
                else:
                    for t in (literal.left, literal.right):
                        if isinstance(t, Const):
                            consts.add(t)
            for atom in atoms:
                for t in atom.args:
                    if isinstance(t, Const):
                        consts.add(t)
        return consts

    def arities(self) -> dict[str, int]:
        """Observed arity of every predicate; raises on inconsistency."""
        from repro.errors import SchemaError
        seen: dict[str, int] = {}
        for rule in self.rules:
            atoms = [rule.head] if rule.head is not None else []
            atoms += [l.atom for l in rule.body if isinstance(l, Lit)]
            for atom in atoms:
                prior = seen.setdefault(atom.pred, atom.arity)
                if prior != atom.arity:
                    raise SchemaError(
                        f'predicate {atom.pred!r} used with arities '
                        f'{prior} and {atom.arity}')
        return seen

    def extend(self, more: Iterable[Rule]) -> 'Program':
        return Program(self.rules + tuple(more))

    def without_constraints(self) -> 'Program':
        return Program(self.proper_rules())

    def __str__(self) -> str:
        return '\n'.join(str(r) for r in self.rules)


def _sequence_to_program(rules: Sequence[Rule] | Program) -> Program:
    if isinstance(rules, Program):
        return rules
    return Program(tuple(rules))
