"""Predicate dependency analysis: recursion check and stratification.

For the nonrecursive programs this library targets, "stratification" is a
topological order of IDB predicates in the dependency graph (each predicate
depends on every predicate used in the bodies of its defining rules).
Constraint rules (⊥ heads) contribute dependencies for the synthetic
predicate ``⊥`` so that constraints are checked after everything they read.
"""

from __future__ import annotations

import networkx as nx

from repro.datalog.ast import Lit, Program
from repro.errors import RecursionError_

__all__ = ['dependency_graph', 'is_nonrecursive', 'check_nonrecursive',
           'stratify', 'depends_on_view', 'FALSUM']

FALSUM = '⊥'


def dependency_graph(program: Program) -> nx.DiGraph:
    """Directed graph with an edge ``body_pred -> head_pred`` for every
    body literal.  Edges carry ``negative=True`` when *some* occurrence is
    negated."""
    graph = nx.DiGraph()
    for pred in program.all_preds():
        graph.add_node(pred)
    graph.add_node(FALSUM)
    for rule in program.rules:
        head = FALSUM if rule.head is None else rule.head.pred
        for literal in rule.body:
            if not isinstance(literal, Lit):
                continue
            pred = literal.atom.pred
            negative = not literal.positive
            if graph.has_edge(pred, head):
                if negative:
                    graph[pred][head]['negative'] = True
            else:
                graph.add_edge(pred, head, negative=negative)
    return graph


def is_nonrecursive(program: Program) -> bool:
    return nx.is_directed_acyclic_graph(dependency_graph(program))


def check_nonrecursive(program: Program) -> None:
    graph = dependency_graph(program)
    try:
        cycle = nx.find_cycle(graph)
    except nx.NetworkXNoCycle:
        return
    path = ' -> '.join(edge[0] for edge in cycle) + f' -> {cycle[-1][1]}'
    raise RecursionError_(
        f'program is recursive (cycle: {path}); this library handles '
        f'nonrecursive Datalog only')


def stratify(program: Program) -> list[str]:
    """Topological evaluation order of the program's IDB predicates.

    EDB predicates are omitted (they are inputs).  Raises
    :class:`RecursionError_` on recursion.
    """
    check_nonrecursive(program)
    graph = dependency_graph(program)
    idb = program.idb_preds()
    order = [p for p in nx.topological_sort(graph) if p in idb]
    return order


def depends_on_view(program: Program, view: str) -> set[str]:
    """IDB predicates whose value can change when relation ``view``
    changes (i.e. predicates reachable from ``view`` in the dependency
    graph).  Used by the incrementalizer."""
    graph = dependency_graph(program)
    if view not in graph:
        return set()
    reachable = nx.descendants(graph, view)
    return reachable & program.idb_preds()
