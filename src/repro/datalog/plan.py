"""Compilation of Datalog programs into immutable execution plans.

The planner performs *once* all the static work the evaluator used to
redo on every call:

* safety analysis and stratification (a topological order of the IDB);
* per-rule sideways-information-passing schedules, computed statically
  from the bound-variable sets the schedule itself induces;
* resolution of every literal into a low-level *step* with a fixed
  binding mask: variables become integer slots, atom arguments become
  (slot | constant) key templates, and repeated-variable consistency
  checks are pre-extracted;
* declaration of the hash-index masks the plan will probe at run time
  (``index_requirements``), so long-lived engines can build persistent
  indexes ahead of the first update;
* pre-splitting of the rule set into delta rules, intermediate rules
  and constraints, which the RDBMS layer previously re-derived per
  statement.

The result is an :class:`ExecutionPlan` — a frozen, shareable artifact.
:mod:`repro.datalog.evaluator` executes plans; callers that evaluate the
same program repeatedly (the engine's trigger pipeline, the validation
solver's model enumeration) compile once and run many times.

Join ordering is static.  The scheduler prefers, in order: ready
filters (builtins, negations, fully bound atoms), delta-input scans
(``+v``/``-v`` EDB relations are small by construction — the §5
"delta-first" order), EDB scans over IDB scans (so lazily materialised
predicates are not forced early), and finally scans with more bound
columns.  Remaining ties break by observed relation cardinality when
the caller supplies ``stats`` (a ``{relation: row count}`` mapping —
the engine passes current base-table sizes at ``define_view`` time),
then by source order.  Set semantics make the results independent of
the order; only running time differs.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Mapping, Sequence

from repro.datalog.ast import (Atom, BuiltinLit, Const, Lit, Literal,
                               Program, Rule, Var, is_anonymous,
                               is_delta_pred)
from repro.datalog.dependency import stratify
from repro.datalog.safety import check_program_safety
from repro.errors import SafetyError

__all__ = ['ExecutionPlan', 'RulePlan', 'ConstraintPlan', 'Step',
           'ScanStep', 'ProbeStep', 'NegationStep', 'CompareStep',
           'BindStep', 'compile_program', 'compile_rule',
           'schedule_body', 'plan_cache_info', 'clear_plan_cache']

#: Sentinel slot index marking a constant operand in a key template.
CONST = -1

#: Estimated size for relations absent from a ``stats`` mapping: assume
#: large, so relations with *known* cardinalities are scheduled first
#: and two unknown relations still fall back to source order.
_UNKNOWN_SIZE = 2 ** 62


def _freeze_stats(stats) -> tuple | None:
    """Normalise a ``{relation: size}`` mapping into a hashable,
    order-independent key for the plan cache (``None`` stays ``None``)."""
    if stats is None:
        return None
    return tuple(sorted(stats.items() if isinstance(stats, Mapping)
                        else stats))


# ---------------------------------------------------------------------------
# Steps: the executable micro-operations of a compiled rule
# ---------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class ScanStep:
    """Join with a relation: probe the index at ``positions`` with the
    key built from ``key`` and bind the ``free`` row positions."""

    pred: str
    arity: int
    positions: tuple[int, ...]            # bound argument positions
    key: tuple[tuple[int, object], ...]   # (slot, const) per position
    free: tuple[tuple[int, int], ...]     # (row position, slot) to bind
    checks: tuple[tuple[int, int], ...]   # repeated-variable positions


@dataclass(frozen=True, slots=True)
class ProbeStep:
    """Membership test of a fully bound positive atom (top-down for
    pending IDB predicates — no materialisation)."""

    pred: str
    arity: int
    key: tuple[tuple[int, object], ...]   # covers all argument positions


@dataclass(frozen=True, slots=True)
class NegationStep:
    """A negated atom, reached with every non-anonymous variable bound;
    unbound anonymous variables act as wildcards."""

    pred: str
    arity: int
    positions: tuple[int, ...]
    key: tuple[tuple[int, object], ...]


@dataclass(frozen=True, slots=True)
class CompareStep:
    """A builtin comparison with both operands resolved.  ``expect`` is
    the required outcome of evaluating ``op`` (negation and ``<>`` are
    folded into it at compile time)."""

    op: str                               # '=', '<', '>', '<=', '>='
    left: tuple[int, object]              # (slot, const)
    right: tuple[int, object]
    expect: bool


@dataclass(frozen=True, slots=True)
class BindStep:
    """A positive equality with exactly one unbound side: an
    assignment into ``slot``."""

    slot: int
    source: tuple[int, object]            # (slot, const)


Step = ScanStep | ProbeStep | NegationStep | CompareStep | BindStep


# ---------------------------------------------------------------------------
# Compiled rules and plans
# ---------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class RulePlan:
    """One rule compiled against a fixed slot layout.

    ``steps`` is the bottom-up schedule (empty initial binding);
    ``probe_steps`` is the alternative schedule used for top-down
    probes, compiled with every head variable pre-bound.  The probe
    preamble (``match_*``) maps a candidate head row onto the slots.
    """

    rule: Rule
    nslots: int
    steps: tuple[Step, ...]
    head: tuple[tuple[int, object], ...]      # (slot, const) per head arg
    match_consts: tuple[tuple[int, object], ...]  # (row pos, value)
    match_binds: tuple[tuple[int, int], ...]      # (row pos, slot)
    match_checks: tuple[tuple[int, int], ...]     # (row pos, slot)
    probe_steps: tuple[Step, ...]
    # Executor scratch: the specialised run/probe functions the
    # evaluator generates lazily on the hot path (see
    # ``repro.datalog.evaluator._seal_run``).  Not part of the plan's
    # identity; written once via object.__setattr__ (a benign
    # last-writer-wins race — every writer produces equivalent code).
    sealed: object = field(default=None, compare=False, repr=False)

    def __getstate__(self):
        # Generated executor functions are not picklable (and are
        # cheap to regenerate): strip them, keep the plan itself.
        return {slot: getattr(self, slot) for slot in self.__slots__
                if slot != 'sealed'}

    def __setstate__(self, state):
        for name, value in state.items():
            object.__setattr__(self, name, value)
        object.__setattr__(self, 'sealed', None)


@dataclass(frozen=True, slots=True)
class ConstraintPlan:
    """A ⊥-rule compiled as a witness query: the synthetic head lists
    the rule's named variables in sorted order."""

    rule: Rule
    rule_plan: RulePlan


@dataclass(frozen=True)
class ExecutionPlan:
    """The immutable compiled form of a :class:`Program`.

    Instances are safe to share between threads and across evaluations:
    every container is a tuple or frozenset and every nested node is a
    frozen dataclass.  ``rule_plans`` is a plain dict (not a mapping
    proxy) so plans — and the strategies that cache them — stay
    picklable and deep-copyable; treat it as read-only.
    """

    program: Program                       # the source program, verbatim
    order: tuple[str, ...]                 # topological order of the IDB
    idb: frozenset
    rule_plans: Mapping[str, tuple[RulePlan, ...]]
    constraint_plans: tuple[ConstraintPlan, ...]
    delta_goals: tuple[str, ...]           # delta predicates, sorted
    intermediate_preds: frozenset          # auxiliary (non-delta) IDB
    index_requirements: frozenset          # {(pred, positions), ...}

    def rules_for(self, pred: str) -> tuple[RulePlan, ...]:
        return self.rule_plans.get(pred, ())

    # -- execution (delegated to the executor module) -------------------

    def evaluate(self, edb, *, goals=None):
        """Run this plan over ``edb``; see :func:`repro.datalog.
        evaluator.evaluate` for the contract."""
        from repro.datalog.evaluator import execute_plan
        return execute_plan(self, edb, goals=goals)

    def constraint_violations(self, edb, *, first_witness: bool = False):
        """Evaluate the compiled ⊥-rules over ``edb``; with
        ``first_witness``, short-circuit at the first violation."""
        from repro.datalog.evaluator import execute_constraints
        return execute_constraints(self, edb, first_witness=first_witness)

    def holds(self, edb, goal: str) -> bool:
        from repro.datalog.evaluator import execute_plan
        return bool(execute_plan(self, edb, goals=(goal,))[goal])

    # -- lowering (delegated to the SQL translator) ---------------------

    def to_sql(self, goal: str, *, namer=None, schema=None,
               dialect=None) -> str:
        """Lower ``goal`` to a ``WITH ... SELECT`` statement over the
        plan's source program; see :func:`repro.sql.translate.
        plan_to_sql`.  ``dialect`` is a :class:`~repro.sql.translate.
        SqlDialect` or its name ('postgresql', 'sqlite')."""
        from repro.sql.translate import (POSTGRES, dialect_by_name,
                                         plan_to_sql)
        if dialect is None:
            dialect = POSTGRES
        elif isinstance(dialect, str):
            dialect = dialect_by_name(dialect)
        return plan_to_sql(self, goal, namer, schema, dialect)


# ---------------------------------------------------------------------------
# Literal scheduling
# ---------------------------------------------------------------------------


def _ready(literal: Literal, bound: set[str]) -> bool:
    """Can ``literal`` be evaluated once ``bound`` variables are known?"""
    if isinstance(literal, Lit):
        if literal.positive:
            return True
        required = {t.name for t in literal.atom.variables()
                    if not is_anonymous(t)}
        return required <= bound
    if literal.op == '=' and literal.positive:
        left_ok = not isinstance(literal.left, Var) \
            or literal.left.name in bound
        right_ok = not isinstance(literal.right, Var) \
            or literal.right.name in bound
        return left_ok or right_ok
    return literal.var_names() <= bound


def _binds(literal: Literal) -> set[str]:
    if isinstance(literal, Lit) and literal.positive:
        return literal.var_names()
    if isinstance(literal, BuiltinLit) and literal.op == '=' \
            and literal.positive:
        return literal.var_names()
    return set()


def schedule_body(body: Sequence[Literal]) -> list[Literal]:
    """Order body literals so each is evaluable when reached (greedy,
    order-preserving).  This is the schedule the binarizer relies on;
    the planner's cost-aware variant is :func:`_schedule_static`.
    """
    remaining = list(body)
    ordered: list[Literal] = []
    bound: set[str] = set()
    while remaining:
        progressed = False
        for i, literal in enumerate(remaining):
            if _ready(literal, bound):
                ordered.append(literal)
                bound |= _binds(literal)
                del remaining[i]
                progressed = True
                break
        if not progressed:
            raise SafetyError(
                f'cannot schedule literals {[str(l) for l in remaining]}; '
                f'rule is unsafe')
    return ordered


def _bound_position_count(atom: Atom, bound: set[str]) -> int:
    count = 0
    for term in atom.args:
        if isinstance(term, Const) or term.name in bound:
            count += 1
    return count


def _schedule_static(body: Sequence[Literal], initial_bound: frozenset,
                     idb: frozenset,
                     stats: Mapping[str, int] | None = None
                     ) -> list[Literal]:
    """The planner's static schedule.

    Filters (builtins, negations, fully bound atoms) run as soon as
    they are ready; among join candidates the scheduler prefers
    delta-input relations (statically small), then EDB over IDB (so
    lazy predicates are not materialised just to drive a join), then
    the scan with the most bound columns, then — when ``stats`` carries
    observed cardinalities — the estimated-smallest relation, then
    source order.
    """
    remaining = list(body)
    ordered: list[Literal] = []
    bound: set[str] = set(initial_bound)
    sizes = stats or {}
    while remaining:
        filter_index = None
        best_index = None
        best_score = None
        for i, literal in enumerate(remaining):
            if not _ready(literal, bound):
                continue
            is_join = isinstance(literal, Lit) and literal.positive \
                and not literal.var_names() <= bound
            if not is_join:
                filter_index = i
                break
            pred = literal.atom.pred
            score = (0 if is_delta_pred(pred) and pred not in idb else 1,
                     1 if pred in idb else 0,
                     -_bound_position_count(literal.atom, bound),
                     sizes.get(pred, _UNKNOWN_SIZE),
                     i)
            if best_score is None or score < best_score:
                best_score = score
                best_index = i
        index = filter_index if filter_index is not None else best_index
        if index is None:
            raise SafetyError(
                f'cannot schedule literals {[str(l) for l in remaining]}; '
                f'rule is unsafe')
        literal = remaining.pop(index)
        ordered.append(literal)
        bound |= _binds(literal)
    return ordered


# ---------------------------------------------------------------------------
# Step compilation
# ---------------------------------------------------------------------------


class _Slots:
    """Deterministic variable → slot assignment for one rule."""

    def __init__(self):
        self._map: dict[str, int] = {}

    def slot(self, name: str) -> int:
        index = self._map.get(name)
        if index is None:
            index = len(self._map)
            self._map[name] = index
        return index

    def __len__(self) -> int:
        return len(self._map)


def _operand(term, slots: _Slots, bound: set[str]) -> tuple[int, object]:
    """Resolve a term into a (slot, const) pair; the term must be a
    constant or a bound variable."""
    if isinstance(term, Const):
        return (CONST, term.value)
    assert term.name in bound, term
    return (slots.slot(term.name), None)


def _compile_positive(atom: Atom, slots: _Slots,
                      bound: set[str]) -> ScanStep | ProbeStep:
    positions: list[int] = []
    key: list[tuple[int, object]] = []
    free: list[tuple[int, int]] = []
    checks: list[tuple[int, int]] = []
    seen: dict[str, int] = {}
    for pos, term in enumerate(atom.args):
        if isinstance(term, Const):
            positions.append(pos)
            key.append((CONST, term.value))
        elif term.name in bound:
            positions.append(pos)
            key.append((slots.slot(term.name), None))
        elif term.name in seen:
            checks.append((seen[term.name], pos))
        else:
            seen[term.name] = pos
            free.append((pos, slots.slot(term.name)))
    if not free and not checks:
        return ProbeStep(atom.pred, atom.arity, tuple(key))
    return ScanStep(atom.pred, atom.arity, tuple(positions), tuple(key),
                    tuple(free), tuple(checks))


def _compile_negated(atom: Atom, slots: _Slots,
                     bound: set[str]) -> NegationStep:
    positions: list[int] = []
    key: list[tuple[int, object]] = []
    for pos, term in enumerate(atom.args):
        if isinstance(term, Const):
            positions.append(pos)
            key.append((CONST, term.value))
        elif term.name in bound:
            positions.append(pos)
            key.append((slots.slot(term.name), None))
        elif is_anonymous(term):
            continue                       # wildcard column
        else:
            raise SafetyError(f'negated atom {atom} reached with unbound '
                              f'variable {term}')
    return NegationStep(atom.pred, atom.arity, tuple(positions),
                        tuple(key))


def _compile_builtin(literal: BuiltinLit, slots: _Slots,
                     bound: set[str]) -> CompareStep | BindStep:
    left, right = literal.left, literal.right
    left_bound = isinstance(left, Const) or left.name in bound
    right_bound = isinstance(right, Const) or right.name in bound
    if literal.op == '=' and literal.positive \
            and not (left_bound and right_bound):
        if left_bound:
            return BindStep(slots.slot(right.name),
                            _operand(left, slots, bound))
        return BindStep(slots.slot(left.name),
                        _operand(right, slots, bound))
    if not (left_bound and right_bound):
        raise SafetyError(
            f'builtin {literal} reached with unbound variable')
    # `<>` is equality with the expectation flipped; explicit negation
    # flips it once more.
    if literal.op == '<>':
        op, expect = '=', not literal.positive
    else:
        op, expect = literal.op, literal.positive
    return CompareStep(op, _operand(left, slots, bound),
                       _operand(right, slots, bound), expect)


def _compile_steps(body: Sequence[Literal], slots: _Slots,
                   initial_bound: frozenset,
                   idb: frozenset,
                   stats: Mapping[str, int] | None = None
                   ) -> tuple[Step, ...]:
    ordered = _schedule_static(body, initial_bound, idb, stats)
    bound: set[str] = set(initial_bound)
    steps: list[Step] = []
    for literal in ordered:
        if isinstance(literal, Lit):
            if literal.positive:
                steps.append(_compile_positive(literal.atom, slots, bound))
            else:
                steps.append(_compile_negated(literal.atom, slots, bound))
        else:
            steps.append(_compile_builtin(literal, slots, bound))
        bound |= _binds(literal)
    return tuple(steps)


def compile_rule(rule: Rule, *, idb: frozenset = frozenset(),
                 stats: Mapping[str, int] | None = None) -> RulePlan:
    """Compile one (non-constraint) rule against a fixed slot layout.

    ``idb`` informs the static scheduler which body predicates are
    derived (and therefore lazily materialised) in the enclosing
    program; passing the default compiles the rule as if every body
    predicate were EDB, which is the :func:`evaluate_rule` contract.
    ``stats`` optionally carries observed relation cardinalities to
    break the scheduler's remaining ties.
    """
    if rule.head is None:
        raise ValueError('constraint rules are compiled via the program '
                         'planner, not compile_rule')
    slots = _Slots()
    # Deterministic layout: head variables first, then body variables in
    # source order — independent of either schedule.
    for term in rule.head.args:
        if isinstance(term, Var):
            slots.slot(term.name)
    for literal in rule.body:
        for var in literal.variables():
            slots.slot(var.name)

    steps = _compile_steps(rule.body, slots, frozenset(), idb, stats)
    head: list[tuple[int, object]] = []
    for term in rule.head.args:
        if isinstance(term, Const):
            head.append((CONST, term.value))
        else:
            head.append((slots.slot(term.name), None))

    # Probe preamble: map a candidate head row onto the slots.
    match_consts: list[tuple[int, object]] = []
    match_binds: list[tuple[int, int]] = []
    match_checks: list[tuple[int, int]] = []
    head_bound: set[str] = set()
    for pos, term in enumerate(rule.head.args):
        if isinstance(term, Const):
            match_consts.append((pos, term.value))
        elif term.name in head_bound:
            match_checks.append((pos, slots.slot(term.name)))
        else:
            head_bound.add(term.name)
            match_binds.append((pos, slots.slot(term.name)))
    probe_steps = _compile_steps(rule.body, slots, frozenset(head_bound),
                                 idb, stats)
    return RulePlan(rule=rule, nslots=len(slots), steps=steps,
                    head=tuple(head), match_consts=tuple(match_consts),
                    match_binds=tuple(match_binds),
                    match_checks=tuple(match_checks),
                    probe_steps=probe_steps)


def _compile_constraint(rule: Rule, idb: frozenset,
                        stats: Mapping[str, int] | None = None
                        ) -> ConstraintPlan:
    """Rewrite ``⊥ :- body`` into a witness query over the body's named
    variables (anonymous variables stay unbound inside negations and
    cannot appear in the witness)."""
    names = sorted(n for n in rule.variables() if not n.startswith('_'))
    probe = Rule(Atom('__viol__', tuple(Var(n) for n in names)), rule.body)
    return ConstraintPlan(rule=rule,
                          rule_plan=compile_rule(probe, idb=idb,
                                                 stats=stats))


# ---------------------------------------------------------------------------
# Index requirements
# ---------------------------------------------------------------------------


def _index_requirements(rule_plans, constraint_plans) -> frozenset:
    """Every (pred, positions) hash-index mask the plan's steps will
    probe.  Fully bound probes and full scans need no index."""
    masks: set[tuple[str, tuple[int, ...]]] = set()

    def visit(steps):
        for step in steps:
            if isinstance(step, ScanStep) and step.positions:
                masks.add((step.pred, step.positions))
            elif isinstance(step, NegationStep) \
                    and 0 < len(step.positions) < step.arity:
                masks.add((step.pred, step.positions))

    for plans in rule_plans.values():
        for rplan in plans:
            visit(rplan.steps)
            visit(rplan.probe_steps)
    for cplan in constraint_plans:
        visit(cplan.rule_plan.steps)
    return frozenset(masks)


# ---------------------------------------------------------------------------
# Program compilation
# ---------------------------------------------------------------------------


def _compile(program: Program, check_safety: bool,
             stats_key: tuple | None = None) -> ExecutionPlan:
    proper = program.without_constraints()
    if check_safety:
        check_program_safety(proper)
    stats = dict(stats_key) if stats_key else None
    order = tuple(stratify(proper))        # rejects recursion up front
    idb = frozenset(proper.idb_preds())
    rule_plans = {pred: tuple(compile_rule(rule, idb=idb, stats=stats)
                              for rule in proper.rules_for(pred))
                  for pred in order}
    constraint_plans = tuple(_compile_constraint(rule, idb, stats)
                             for rule in program.constraints())
    delta_goals = tuple(sorted(p for p in idb if is_delta_pred(p)))
    intermediate = frozenset(p for p in idb if not is_delta_pred(p))
    return ExecutionPlan(
        program=program, order=order, idb=idb,
        rule_plans=rule_plans,
        constraint_plans=constraint_plans,
        delta_goals=delta_goals, intermediate_preds=intermediate,
        index_requirements=_index_requirements(rule_plans,
                                               constraint_plans))


@lru_cache(maxsize=256)
def _compile_cached(program: Program, check_safety: bool,
                    stats_key: tuple | None) -> ExecutionPlan:
    return _compile(program, check_safety, stats_key)


#: Serialises cached compiles.  ``lru_cache`` alone keeps its dict
#: consistent under CPython, but two threads missing on the same key
#: would each run a full compile and race to publish distinct (equal)
#: plan objects — under the parallel sharded engine two shards
#: re-planning the same view must share ONE plan, both for the
#: compile-once guarantee and so per-plan executor caches are not
#: duplicated.  RLock: a compile may itself request another cached
#: compile (``incrementalize_plan`` lowers through ``compile_program``).
_COMPILE_LOCK = threading.RLock()


def compile_program(program: Program, *, check_safety: bool = True,
                    cache: bool = True,
                    stats: Mapping[str, int] | None = None
                    ) -> ExecutionPlan:
    """Compile ``program`` into an :class:`ExecutionPlan`.

    Plans are memoized (bounded LRU) keyed by program equality (and the
    ``stats`` seed, when given), so callers that re-parse equal
    programs still share one plan; pass ``cache=False`` to force a
    fresh compilation (used by benchmarks to measure the compile cost
    itself).  ``stats`` seeds the greedy join order with observed
    relation cardinalities — the engine passes current base-relation
    sizes at ``define_view`` time so scheduling ties break toward the
    estimated-smallest scan.

    The cached path is thread-safe: concurrent callers (per-shard
    worker threads re-planning the same view) are serialised by
    ``_COMPILE_LOCK`` and observe the same plan instance.
    """
    stats_key = _freeze_stats(stats)
    if cache:
        with _COMPILE_LOCK:
            return _compile_cached(program, check_safety, stats_key)
    return _compile(program, check_safety, stats_key)


def plan_cache_info():
    """Hit/miss statistics of the shared plan cache."""
    return _compile_cached.cache_info()


def clear_plan_cache() -> None:
    _compile_cached.cache_clear()
