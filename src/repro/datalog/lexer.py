"""Tokenizer for the BIRDS-style Datalog surface syntax.

The token stream feeds :mod:`repro.datalog.parser`.  Supported lexemes:

* identifiers — ``lowercase`` start for predicates, ``Uppercase`` or ``_``
  start for variables (the paper's convention, §2.1);
* integer / float / single-quoted string literals (``''`` escapes a quote);
* punctuation ``( ) , .`` and the rule arrow ``:-``;
* delta markers ``+`` / ``-`` (immediately preceding a predicate name);
* builtin operators ``=  <>  !=  \\=  <  >  <=  >=``;
* negation ``not`` / ``¬`` and the falsum head ``⊥`` / ``_|_`` / ``false``;
* ``%`` line comments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.errors import DatalogSyntaxError

__all__ = ['Token', 'tokenize', 'TokenKind']


class TokenKind:
    """Token kind names (plain strings, kept in a namespace class)."""

    IDENT = 'IDENT'          # lowercase-led identifier (predicate name)
    VARIABLE = 'VARIABLE'    # uppercase-led identifier
    ANON = 'ANON'            # bare underscore
    INT = 'INT'
    FLOAT = 'FLOAT'
    STRING = 'STRING'
    LPAREN = 'LPAREN'
    RPAREN = 'RPAREN'
    COMMA = 'COMMA'
    DOT = 'DOT'
    ARROW = 'ARROW'          # :-
    PLUS = 'PLUS'
    MINUS = 'MINUS'
    OP = 'OP'                # builtin comparison / equality operator
    NOT = 'NOT'
    FALSUM = 'FALSUM'
    EOF = 'EOF'


@dataclass(frozen=True, slots=True)
class Token:
    kind: str
    text: str
    value: object
    line: int
    column: int

    def __str__(self) -> str:
        return f'{self.kind}({self.text!r})@{self.line}:{self.column}'


_SINGLE_CHAR = {
    '(': TokenKind.LPAREN,
    ')': TokenKind.RPAREN,
    ',': TokenKind.COMMA,
    '.': TokenKind.DOT,
    '+': TokenKind.PLUS,
    '-': TokenKind.MINUS,
}

# Multi-character operators must be matched longest-first.
_OPERATORS = ('<=', '>=', '<>', '!=', '\\=', '=', '<', '>')
_OP_CANON = {'!=': '<>', '\\=': '<>'}


def _is_ident_start(ch: str) -> bool:
    return ch.isalpha() or ch == '_'


def _is_ident_char(ch: str) -> bool:
    return ch.isalnum() or ch == '_'


def tokenize(text: str) -> list[Token]:
    """Tokenize ``text`` into a list ending with an EOF token.

    Raises :class:`DatalogSyntaxError` on unterminated strings or characters
    outside the language.
    """
    return list(_scan(text))


def _scan(text: str) -> Iterator[Token]:
    i = 0
    line = 1
    col = 1
    n = len(text)

    def make(kind: str, lexeme: str, value: object = None) -> Token:
        return Token(kind, lexeme, value, line, col)

    while i < n:
        ch = text[i]

        # -- whitespace / newlines ---------------------------------------
        if ch == '\n':
            i += 1
            line += 1
            col = 1
            continue
        if ch.isspace():
            i += 1
            col += 1
            continue

        # -- comments -----------------------------------------------------
        if ch == '%':
            while i < n and text[i] != '\n':
                i += 1
            continue

        # -- rule arrow ----------------------------------------------------
        if text.startswith(':-', i):
            yield make(TokenKind.ARROW, ':-')
            i += 2
            col += 2
            continue

        # -- falsum forms ----------------------------------------------------
        if ch == '⊥':
            yield make(TokenKind.FALSUM, ch)
            i += 1
            col += 1
            continue
        if text.startswith('_|_', i):
            yield make(TokenKind.FALSUM, '_|_')
            i += 3
            col += 3
            continue
        if ch == '¬':
            yield make(TokenKind.NOT, ch)
            i += 1
            col += 1
            continue

        # -- operators (before single-char punctuation so '<=' wins) --------
        matched_op = None
        for op in _OPERATORS:
            if text.startswith(op, i):
                matched_op = op
                break
        if matched_op is not None:
            canon = _OP_CANON.get(matched_op, matched_op)
            yield make(TokenKind.OP, matched_op, canon)
            i += len(matched_op)
            col += len(matched_op)
            continue

        # -- punctuation -----------------------------------------------------
        if ch in _SINGLE_CHAR:
            # '.' may start a float only when preceded by a digit, which the
            # number branch below already consumed; a bare '.' is end-of-rule.
            yield make(_SINGLE_CHAR[ch], ch)
            i += 1
            col += 1
            continue

        # -- string literals --------------------------------------------------
        if ch == "'":
            j = i + 1
            buf: list[str] = []
            while True:
                if j >= n:
                    raise DatalogSyntaxError('unterminated string literal',
                                             line, col)
                if text[j] == "'":
                    if j + 1 < n and text[j + 1] == "'":
                        buf.append("'")
                        j += 2
                        continue
                    break
                if text[j] == '\n':
                    raise DatalogSyntaxError('newline in string literal',
                                             line, col)
                buf.append(text[j])
                j += 1
            lexeme = text[i:j + 1]
            yield make(TokenKind.STRING, lexeme, ''.join(buf))
            col += j + 1 - i
            i = j + 1
            continue

        # -- numbers ------------------------------------------------------------
        if ch.isdigit():
            j = i
            while j < n and text[j].isdigit():
                j += 1
            is_float = False
            if j < n and text[j] == '.' and j + 1 < n and text[j + 1].isdigit():
                is_float = True
                j += 1
                while j < n and text[j].isdigit():
                    j += 1
            lexeme = text[i:j]
            if is_float:
                yield make(TokenKind.FLOAT, lexeme, float(lexeme))
            else:
                yield make(TokenKind.INT, lexeme, int(lexeme))
            col += j - i
            i = j
            continue

        # -- identifiers / keywords ------------------------------------------
        if _is_ident_start(ch):
            j = i
            while j < n and _is_ident_char(text[j]):
                j += 1
            lexeme = text[i:j]
            if lexeme == 'not':
                yield make(TokenKind.NOT, lexeme)
            elif lexeme == 'false':
                yield make(TokenKind.FALSUM, lexeme)
            elif lexeme == '_':
                yield make(TokenKind.ANON, lexeme)
            elif lexeme[0].isupper() or lexeme[0] == '_':
                yield make(TokenKind.VARIABLE, lexeme)
            else:
                yield make(TokenKind.IDENT, lexeme)
            col += j - i
            i = j
            continue

        raise DatalogSyntaxError(f'unexpected character {ch!r}', line, col)

    yield Token(TokenKind.EOF, '', None, line, col)
