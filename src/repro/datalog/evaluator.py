"""Bottom-up evaluation of nonrecursive Datalog with negation and builtins.

The evaluator processes IDB predicates in stratification (topological) order
and evaluates each rule with sideways information passing:

* positive relational atoms are joined left-to-right using lazy hash indexes
  keyed on the currently bound argument positions (hash-join behaviour);
* equalities bind variables as soon as one side is known;
* comparisons and negated literals run once all their variables are bound
  (safety guarantees this succeeds).

Semantics are set-based, matching §3.1.  ``evaluate`` returns a
:class:`~repro.relational.database.Database` holding *all* IDB relations;
callers project out what they need (e.g. the delta predicates).
"""

from __future__ import annotations

from typing import Iterator, Mapping, Sequence

from repro.datalog.ast import (Atom, BuiltinLit, Const, Lit, Literal,
                               Program, Rule, Term, Var)
from repro.datalog.dependency import stratify
from repro.datalog.safety import check_program_safety
from repro.errors import SchemaError
from repro.relational.database import Database

__all__ = ['evaluate', 'evaluate_rule', 'evaluate_query',
           'holds', 'constraint_violations']

Row = tuple
Binding = dict[str, object]


class IndexedRelation:
    """A relation with lazily built hash indexes per bound-position mask.

    Fully-bound probes short-circuit to set membership so they never pay
    an index build.  Instances can be *persistent* (owned by the RDBMS
    engine and shared across evaluations): :meth:`add` / :meth:`discard`
    keep every built index consistent under mutation, so repeated
    incremental updates pay O(|Δ| · #indexes), not O(|R|)."""

    __slots__ = ('rows', '_indexes')

    def __init__(self, rows):
        self.rows = rows
        self._indexes: dict[tuple[int, ...], dict] = {}

    def contains(self, row: tuple) -> bool:
        return row in self.rows

    def lookup(self, positions: tuple[int, ...], key: tuple) -> Sequence[Row]:
        """Rows whose values at ``positions`` equal ``key``."""
        if not positions:
            return self.rows
        index = self._indexes.get(positions)
        if index is None:
            index = {}
            for row in self.rows:
                row_key = tuple(row[p] for p in positions)
                index.setdefault(row_key, []).append(row)
            self._indexes[positions] = index
        return index.get(key, ())

    def exists(self, positions: tuple[int, ...], key: tuple,
               arity: int) -> bool:
        """Is there a row matching ``key`` at ``positions``?"""
        if len(positions) == arity:
            return tuple(key) in self.rows
        return bool(self.lookup(positions, key))

    # -- persistent-mode mutation (requires ``rows`` to be a set) -------

    def add(self, row: tuple) -> None:
        if row in self.rows:
            return
        self.rows.add(row)
        for positions, index in self._indexes.items():
            key = tuple(row[p] for p in positions)
            index.setdefault(key, []).append(row)

    def discard(self, row: tuple) -> None:
        if row not in self.rows:
            return
        self.rows.discard(row)
        for positions, index in self._indexes.items():
            key = tuple(row[p] for p in positions)
            bucket = index.get(key)
            if bucket is not None:
                try:
                    bucket.remove(row)
                except ValueError:
                    pass
                if not bucket:
                    del index[key]


# Backwards-compatible internal alias.
_IndexedRelation = IndexedRelation


class _EvalContext:
    """Shared relation store for one evaluation run.

    Accepts a :class:`Database` or a plain ``{name: rows}`` mapping whose
    values may be sets/frozensets or pre-indexed :class:`IndexedRelation`
    objects (the RDBMS engine shares its persistent indexes this way).

    When constructed with a program, IDB relations are materialised *on
    demand*: iterating a predicate materialises it (and its dependencies),
    while fully-bound probes of an unmaterialised predicate are answered
    top-down without materialising anything — the key to O(|ΔV|)
    incremental updates (§5)."""

    def __init__(self, edb, program: Program | None = None):
        self._store: dict[str, IndexedRelation] = {}
        if isinstance(edb, Database):
            items = edb.relations.items()
        else:
            items = edb.items()
        for name, rows in items:
            if isinstance(rows, IndexedRelation):
                self._store[name] = rows
            else:
                self._store[name] = IndexedRelation(rows)
        self.program = program
        self._idb: set[str] = set()
        self._materialized: set[str] = set()
        self._in_progress: set[str] = set()
        if program is not None:
            self._idb = program.without_constraints().idb_preds()
            # Shadowing: IDB names hide same-named EDB input relations.
            for name in self._idb & set(self._store):
                del self._store[name]

    def is_pending_idb(self, name: str) -> bool:
        return name in self._idb and name not in self._materialized

    def relation(self, name: str) -> IndexedRelation:
        if self.is_pending_idb(name):
            self.materialize(name)
        rel = self._store.get(name)
        if rel is None:
            rel = IndexedRelation(frozenset())
            self._store[name] = rel
        return rel

    def estimated_size(self, name: str) -> int:
        """Relation size for join ordering; pending IDB predicates are
        treated as large so the scheduler does not force materialisation
        just to measure them."""
        if self.is_pending_idb(name):
            return 10 ** 9
        rel = self._store.get(name)
        return len(rel.rows) if rel is not None else 0

    def materialize(self, name: str) -> None:
        if name in self._in_progress:
            from repro.errors import RecursionError_
            raise RecursionError_(f'cycle through predicate {name!r}')
        self._in_progress.add(name)
        try:
            rows: set[Row] = set()
            for rule in self.program.rules_for(name):
                _eval_rule_into(rule, self, rows)
            self._store[name] = IndexedRelation(frozenset(rows))
            self._materialized.add(name)
        finally:
            self._in_progress.discard(name)

    def probe(self, name: str, row: tuple) -> bool:
        """Top-down existence check of ``name(row)`` for a pending IDB
        predicate — no materialisation."""
        for rule in self.program.rules_for(name):
            binding: Binding = {}
            matched = True
            for term, value in zip(rule.head.args, row):
                if isinstance(term, Const):
                    if term.value != value:
                        matched = False
                        break
                else:
                    if term.name in binding and binding[term.name] != value:
                        matched = False
                        break
                    binding[term.name] = value
            if not matched:
                continue
            if _body_satisfiable(rule.body, self, binding):
                return True
        return False

    def set_relation(self, name: str, rows) -> None:
        self._store[name] = IndexedRelation(rows)
        self._materialized.add(name)

    def snapshot(self, names) -> Database:
        return Database({name: frozenset(self._store[name].rows)
                         for name in names if name in self._store})


def _compare(op: str, left, right) -> bool:
    """Evaluate a builtin comparison, guarding against cross-type compares."""
    if op == '=':
        return left == right
    numeric = (int, float)
    if isinstance(left, bool) or isinstance(right, bool):
        raise SchemaError('booleans are not comparable domain values')
    if isinstance(left, numeric) and isinstance(right, numeric):
        pass
    elif isinstance(left, str) and isinstance(right, str):
        pass
    else:
        raise SchemaError(
            f'cannot compare {left!r} with {right!r}: mixed types')
    if op == '<':
        return left < right
    if op == '>':
        return left > right
    if op == '<=':
        return left <= right
    if op == '>=':
        return left >= right
    raise SchemaError(f'unknown comparison operator {op!r}')


def _term_value(term: Term, binding: Binding):
    """The value of ``term`` under ``binding``; None when unbound."""
    if isinstance(term, Const):
        return term.value
    return binding.get(term.name, _UNBOUND)


class _Unbound:
    __slots__ = ()

    def __repr__(self):
        return '<unbound>'


_UNBOUND = _Unbound()


def _schedule(body: Sequence[Literal]) -> list[Literal]:
    """Order body literals so each is evaluable when reached.

    Greedy: repeatedly pick the first literal that is ready given the
    currently bound variables — positive atoms are always ready (they bind),
    equalities are ready when one side is bound or constant, comparisons and
    negations when fully bound.  Safety guarantees termination.
    """
    remaining = list(body)
    ordered: list[Literal] = []
    bound: set[str] = set()
    while remaining:
        progressed = False
        for i, literal in enumerate(remaining):
            if _ready(literal, bound):
                ordered.append(literal)
                bound |= _binds(literal, bound)
                del remaining[i]
                progressed = True
                break
        if not progressed:
            # Unsafe rule slipped through; surface a clear error.
            from repro.errors import SafetyError
            raise SafetyError(
                f'cannot schedule literals {[str(l) for l in remaining]}; '
                f'rule is unsafe')
    return ordered


def _ready(literal: Literal, bound: set[str]) -> bool:
    if isinstance(literal, Lit):
        if literal.positive:
            return True
        from repro.datalog.ast import is_anonymous
        required = {t.name for t in literal.atom.variables()
                    if not is_anonymous(t)}
        return required <= bound
    if literal.op == '=' and literal.positive:
        left_ok = not isinstance(literal.left, Var) \
            or literal.left.name in bound
        right_ok = not isinstance(literal.right, Var) \
            or literal.right.name in bound
        return left_ok or right_ok
    return literal.var_names() <= bound


def _binds(literal: Literal, bound: set[str]) -> set[str]:
    if isinstance(literal, Lit) and literal.positive:
        return literal.var_names()
    if isinstance(literal, BuiltinLit) and literal.op == '=' \
            and literal.positive:
        return literal.var_names()
    return set()


def _match_atom(atom: Atom, ctx: _EvalContext,
                binding: Binding) -> Iterator[Binding]:
    """Extend ``binding`` with all matches of a positive atom."""
    positions: list[int] = []
    key: list = []
    free: list[tuple[int, str]] = []
    checks: list[tuple[int, int]] = []  # repeated-variable positions
    seen_vars: dict[str, int] = {}
    for pos, term in enumerate(atom.args):
        value = _term_value(term, binding)
        if value is not _UNBOUND:
            positions.append(pos)
            key.append(value)
        else:
            name = term.name  # must be a Var if unbound
            if name in seen_vars:
                checks.append((seen_vars[name], pos))
            else:
                seen_vars[name] = pos
                free.append((pos, name))
    if not free:
        # Fully bound: a membership probe (top-down for pending IDB).
        row = tuple(key)
        if ctx.is_pending_idb(atom.pred):
            if ctx.probe(atom.pred, row):
                yield binding
            return
        if ctx.relation(atom.pred).contains(row):
            yield binding
        return
    relation = ctx.relation(atom.pred)
    for row in relation.lookup(tuple(positions), tuple(key)):
        if any(row[a] != row[b] for a, b in checks):
            continue
        extended = dict(binding)
        for pos, name in free:
            extended[name] = row[pos]
        yield extended


def _atom_holds(atom: Atom, ctx: _EvalContext, binding: Binding) -> bool:
    """Existence test for a negated atom.

    Unbound *anonymous* variables act as wildcards (``not r(X, _)`` holds
    when no tuple of ``r`` has ``X`` in the first column); any other
    unbound variable is a safety violation.
    """
    from repro.datalog.ast import is_anonymous
    positions: list[int] = []
    key: list = []
    for pos, term in enumerate(atom.args):
        value = _term_value(term, binding)
        if value is _UNBOUND:
            if is_anonymous(term):
                continue
            from repro.errors import SafetyError
            raise SafetyError(f'negated atom {atom} reached with unbound '
                              f'variable {term}')
        positions.append(pos)
        key.append(value)
    if len(positions) == len(atom.args) and ctx.is_pending_idb(atom.pred):
        return ctx.probe(atom.pred, tuple(key))
    relation = ctx.relation(atom.pred)
    return relation.exists(tuple(positions), tuple(key), len(atom.args))


def _eval_literal(literal: Literal, ctx: _EvalContext,
                  binding: Binding) -> Iterator[Binding]:
    if isinstance(literal, Lit):
        if literal.positive:
            yield from _match_atom(literal.atom, ctx, binding)
        else:
            if not _atom_holds(literal.atom, ctx, binding):
                yield binding
        return
    # Builtin literal.
    left = _term_value(literal.left, binding)
    right = _term_value(literal.right, binding)
    if literal.op == '=' and literal.positive:
        if left is _UNBOUND and right is not _UNBOUND:
            extended = dict(binding)
            extended[literal.left.name] = right
            yield extended
            return
        if right is _UNBOUND and left is not _UNBOUND:
            extended = dict(binding)
            extended[literal.right.name] = left
            yield extended
            return
    if left is _UNBOUND or right is _UNBOUND:
        from repro.errors import SafetyError
        raise SafetyError(f'builtin {literal} reached with unbound variable')
    result = _compare(literal.op, left, right)
    if result == literal.positive:
        yield binding


def _schedule_sized(body: Sequence[Literal],
                    ctx: _EvalContext) -> list[Literal]:
    """Size-aware variant of :func:`_schedule`: among the ready literals,
    cheap filters (builtins, negations) go first and the positive atom
    over the smallest relation is joined next.  With the delta relations
    of §5 this realises the "delta-first" join order that makes
    incremental updates O(|ΔV|)."""
    remaining = list(body)
    ordered: list[Literal] = []
    bound: set[str] = set()
    while remaining:
        filter_index = None
        best_index = None
        best_size = None
        for i, literal in enumerate(remaining):
            if not _ready(literal, bound):
                continue
            is_join = isinstance(literal, Lit) and literal.positive \
                and not literal.var_names() <= bound
            if not is_join:
                filter_index = i
                break
            size = ctx.estimated_size(literal.atom.pred)
            if best_size is None or size < best_size:
                best_size = size
                best_index = i
        index = filter_index if filter_index is not None else best_index
        if index is None:
            from repro.errors import SafetyError
            raise SafetyError(
                f'cannot schedule literals {[str(l) for l in remaining]}; '
                f'rule is unsafe')
        literal = remaining.pop(index)
        ordered.append(literal)
        bound |= _binds(literal, bound)
    return ordered


def _eval_rule_into(rule: Rule, ctx: _EvalContext, out: set[Row]) -> None:
    ordered = _schedule_sized(rule.body, ctx)

    def recurse(index: int, binding: Binding) -> None:
        if index == len(ordered):
            row = tuple(_term_value(t, binding) for t in rule.head.args)
            out.add(row)
            return
        for extended in _eval_literal(ordered[index], ctx, binding):
            recurse(index + 1, extended)

    recurse(0, {})


def _body_satisfiable(body: Sequence[Literal], ctx: _EvalContext,
                      binding: Binding) -> bool:
    """Does the body have at least one solution extending ``binding``?

    Used by top-down probes; the static schedule is computed without the
    initial binding, which only makes more literals ready earlier."""
    ordered = _schedule_sized(body, ctx)

    def recurse(index: int, current: Binding) -> bool:
        if index == len(ordered):
            return True
        for extended in _eval_literal(ordered[index], ctx, current):
            if recurse(index + 1, extended):
                return True
        return False

    return recurse(0, dict(binding))


def _evaluate_into_context(program: Program, edb, *,
                           check_safety: bool = True,
                           goals=None) -> _EvalContext:
    proper = program.without_constraints()
    if check_safety:
        check_program_safety(proper)
    stratify(proper)  # rejects recursion up front
    ctx = _EvalContext(edb, proper)
    for pred in (goals if goals is not None else proper.idb_preds()):
        if pred in proper.idb_preds() and ctx.is_pending_idb(pred):
            ctx.materialize(pred)
    return ctx


def evaluate(program: Program, edb, *,
             check_safety: bool = True, goals=None) -> Database:
    """Evaluate ``program`` over ``edb`` and return IDB relations.

    ``edb`` may be a :class:`Database`, a plain ``{name: rows}`` mapping,
    or a mapping holding pre-indexed :class:`IndexedRelation` values.
    With ``goals`` given, only those predicates (and what they demand) are
    materialised — auxiliary predicates that are only probed with fully
    bound arguments are answered top-down and never computed wholesale.
    Constraint rules are ignored here (see :func:`constraint_violations`).
    EDB relations named like IDB predicates are shadowed by the computed
    IDB values, as in standard Datalog semantics.
    """
    ctx = _evaluate_into_context(program, edb, check_safety=check_safety,
                                 goals=goals)
    names = (goals if goals is not None
             else program.without_constraints().idb_preds())
    return ctx.snapshot(names)


def evaluate_rule(rule: Rule, edb: Database) -> frozenset:
    """Evaluate a single rule over ``edb`` (body predicates must be EDB)."""
    rows: set[Row] = set()
    _eval_rule_into(rule, _EvalContext(edb), rows)
    return frozenset(rows)


def evaluate_query(program: Program, edb: Database, goal: str) -> frozenset:
    """Evaluate the Datalog query ``(program, goal)`` (§2.1)."""
    return evaluate(program, edb)[goal]


def holds(program: Program, edb: Database, goal: str) -> bool:
    """True when the goal relation is nonempty over ``edb``."""
    return bool(evaluate_query(program, edb, goal))


def constraint_violations(program: Program, edb
                          ) -> list[tuple[Rule, tuple]]:
    """Evaluate every constraint (⊥) rule of ``program`` over ``edb``
    (after computing the IDB) and return ``(rule, witness_binding_row)``
    pairs for each violated constraint.

    A constraint ``⊥ :- body`` is violated when its body is satisfiable in
    the instance; the returned witness row holds the values of the body's
    variables in sorted name order.
    """
    constraints = program.constraints()
    if not constraints:
        return []
    # goals=(): materialise nothing eagerly — constraint bodies demand
    # exactly what they need (fully bound auxiliaries are just probed).
    ctx = _evaluate_into_context(program, edb, goals=())
    violations: list[tuple[Rule, tuple]] = []
    for rule in constraints:
        # Anonymous variables stay unbound inside negated atoms: they
        # cannot appear in the witness row.
        names = sorted(n for n in rule.variables()
                       if not n.startswith('_'))
        probe = Rule(Atom('__viol__', tuple(Var(n) for n in names)),
                     rule.body)
        rows: set[Row] = set()
        _eval_rule_into(probe, ctx, rows)
        if rows:
            # key=repr: witness columns may mix value types.
            violations.append((rule, min(rows, key=repr)))
    return violations
