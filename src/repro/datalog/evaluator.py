"""Plan executor for nonrecursive Datalog with negation and builtins.

The static work — safety checks, stratification, literal scheduling,
binding-mask resolution — lives in :mod:`repro.datalog.plan`; this
module only *runs* compiled :class:`~repro.datalog.plan.ExecutionPlan`
objects against an EDB:

* :class:`ScanStep`s join through lazy hash indexes keyed on the
  pre-resolved bound-position masks (hash-join behaviour);
* fully bound probes short-circuit to set membership, answered top-down
  for IDB predicates that were never materialised — the key to O(|ΔV|)
  incremental updates (§5);
* variable bindings are flat slot arrays, not dictionaries: a compiled
  rule never hashes a variable name at run time.

Execution is two-tier.  The *generic* interpreter walks a rule plan's
step tuple with a recursive cursor — it runs anything, immediately,
with no setup cost.  A plan that executes a second time is **sealed**:
:func:`_seal_run` / :func:`_seal_probe` generate a flat Python function
specialised to that exact rule (slots become locals, binding masks and
key templates are inlined, the step dispatch disappears) and cache it
on the plan.  Sealing is what makes the per-transaction delta loops of
the RDBMS engine cheap — the same immutable plan is shared by every
thread of the parallel sharded engine, so one seal pays off across all
shards.  ``REPRO_SEALED=0`` disables sealing (the differential tests
and ``benchmarks/bench_hotpath.py`` compare the two tiers).

Semantics are set-based, matching §3.1.  The historical entry points
(:func:`evaluate`, :func:`evaluate_rule`, :func:`evaluate_query`,
:func:`holds`, :func:`constraint_violations`) are kept as thin wrappers
that compile (with memoization) and execute; long-lived callers such as
the RDBMS engine hold plans directly and skip the compile step
entirely.
"""

from __future__ import annotations

import os
from typing import Sequence

from repro.datalog.ast import Program, Rule
from repro.datalog.plan import (BindStep, CompareStep, ExecutionPlan,
                                NegationStep, ProbeStep, RulePlan,
                                ScanStep, compile_program, compile_rule,
                                schedule_body)
from repro.errors import SchemaError
from repro.relational.database import Database

__all__ = ['evaluate', 'evaluate_rule', 'evaluate_query',
           'holds', 'constraint_violations', 'execute_plan',
           'execute_constraints', 'IndexedRelation']

Row = tuple

# Backwards-compatible alias: the binarizer schedules bodies with the
# same order-preserving greedy pass the evaluator historically used.
_schedule = schedule_body


class IndexedRelation:
    """A relation with lazily built hash indexes per bound-position mask.

    Fully-bound probes short-circuit to set membership so they never pay
    an index build.  Instances can be *persistent* (owned by the RDBMS
    engine and shared across evaluations): :meth:`add` / :meth:`discard`
    keep every built index consistent under mutation, so repeated
    incremental updates pay O(|Δ| · #indexes), not O(|R|)."""

    __slots__ = ('rows', '_indexes')

    def __init__(self, rows):
        self.rows = rows
        self._indexes: dict[tuple[int, ...], dict] = {}

    def contains(self, row: tuple) -> bool:
        return row in self.rows

    def ensure_index(self, positions: tuple[int, ...]) -> None:
        """Build the hash index for ``positions`` now (a no-op when it
        already exists).  The engine calls this ahead of time for every
        mask a view's compiled plan declares."""
        if not positions or positions in self._indexes:
            return
        index: dict = {}
        for row in self.rows:
            row_key = tuple(row[p] for p in positions)
            index.setdefault(row_key, []).append(row)
        self._indexes[positions] = index

    def lookup(self, positions: tuple[int, ...], key: tuple) -> Sequence[Row]:
        """Rows whose values at ``positions`` equal ``key``."""
        if not positions:
            return self.rows
        index = self._indexes.get(positions)
        if index is None:
            self.ensure_index(positions)
            index = self._indexes[positions]
        return index.get(key, ())

    def exists(self, positions: tuple[int, ...], key: tuple,
               arity: int) -> bool:
        """Is there a row matching ``key`` at ``positions``?"""
        if len(positions) == arity:
            return tuple(key) in self.rows
        return bool(self.lookup(positions, key))

    # -- persistent-mode mutation (requires ``rows`` to be a set) -------

    def add(self, row: tuple) -> None:
        if row in self.rows:
            return
        self.rows.add(row)
        for positions, index in self._indexes.items():
            key = tuple(row[p] for p in positions)
            index.setdefault(key, []).append(row)

    def discard(self, row: tuple) -> None:
        if row not in self.rows:
            return
        self.rows.discard(row)
        for positions, index in self._indexes.items():
            key = tuple(row[p] for p in positions)
            bucket = index.get(key)
            if bucket is not None:
                try:
                    bucket.remove(row)
                except ValueError:
                    pass
                if not bucket:
                    del index[key]


# Backwards-compatible internal alias.
_IndexedRelation = IndexedRelation


class _Unbound:
    __slots__ = ()

    def __repr__(self):
        return '<unbound>'


_UNBOUND = _Unbound()


def _compare(op: str, left, right) -> bool:
    """Evaluate a builtin comparison, guarding against cross-type compares."""
    if op == '=':
        return left == right
    numeric = (int, float)
    if isinstance(left, bool) or isinstance(right, bool):
        raise SchemaError('booleans are not comparable domain values')
    if isinstance(left, numeric) and isinstance(right, numeric):
        pass
    elif isinstance(left, str) and isinstance(right, str):
        pass
    else:
        raise SchemaError(
            f'cannot compare {left!r} with {right!r}: mixed types')
    if op == '<':
        return left < right
    if op == '>':
        return left > right
    if op == '<=':
        return left <= right
    if op == '>=':
        return left >= right
    raise SchemaError(f'unknown comparison operator {op!r}')


class _PlanContext:
    """Shared relation store for one plan execution.

    Accepts a :class:`Database` or a plain ``{name: rows}`` mapping whose
    values may be sets/frozensets or pre-indexed :class:`IndexedRelation`
    objects (the RDBMS engine shares its persistent indexes this way).

    IDB relations are materialised *on demand*: a scan of a predicate
    materialises it (and its dependencies), while fully-bound probes of
    an unmaterialised predicate are answered top-down without
    materialising anything."""

    __slots__ = ('_store', 'plan', '_idb', '_materialized', '_in_progress',
                 '_probe_cache')

    def __init__(self, edb, plan: ExecutionPlan | None = None):
        self._store: dict[str, IndexedRelation] = {}
        if isinstance(edb, Database):
            items = edb.relations.items()
        else:
            items = edb.items()
        for name, rows in items:
            if isinstance(rows, IndexedRelation):
                self._store[name] = rows
            else:
                self._store[name] = IndexedRelation(rows)
        self.plan = plan
        self._idb: frozenset = plan.idb if plan is not None else frozenset()
        self._materialized: set[str] = set()
        self._in_progress: set[str] = set()
        self._probe_cache: dict[tuple[str, tuple], bool] = {}
        # Shadowing: IDB names hide same-named EDB input relations.
        for name in self._idb & set(self._store):
            del self._store[name]

    def is_pending_idb(self, name: str) -> bool:
        return name in self._idb and name not in self._materialized

    def relation(self, name: str) -> IndexedRelation:
        if self.is_pending_idb(name):
            self.materialize(name)
        rel = self._store.get(name)
        if rel is None:
            rel = IndexedRelation(frozenset())
            self._store[name] = rel
        return rel

    def materialize(self, name: str) -> None:
        if name in self._in_progress:
            from repro.errors import RecursionError_
            raise RecursionError_(f'cycle through predicate {name!r}')
        self._in_progress.add(name)
        try:
            rows: set[Row] = set()
            for rule_plan in self.plan.rules_for(name):
                _run_rule(rule_plan, self, rows)
            self._store[name] = IndexedRelation(frozenset(rows))
            self._materialized.add(name)
        finally:
            self._in_progress.discard(name)

    def probe(self, name: str, row: tuple) -> bool:
        """Top-down existence check of ``name(row)`` for a pending IDB
        predicate — no materialisation.  Results are memoized for the
        lifetime of the context (the relation store is fixed during one
        plan execution), so repeated fully-bound probes of the same
        pending atom never re-run the rule plans."""
        key = (name, row)
        cached = self._probe_cache.get(key)
        if cached is not None:
            return cached
        result = False
        for rule_plan in self.plan.rules_for(name):
            if _probe_rule(rule_plan, self, row):
                result = True
                break
        self._probe_cache[key] = result
        return result

    def set_relation(self, name: str, rows) -> None:
        self._store[name] = IndexedRelation(rows)
        self._materialized.add(name)
        self._probe_cache.clear()       # probes may depend on old rows

    def snapshot(self, names) -> Database:
        return Database({name: frozenset(self._store[name].rows)
                         for name in names if name in self._store})


# ---------------------------------------------------------------------------
# Step execution
# ---------------------------------------------------------------------------


#: Generic runs before a rule plan is sealed into generated code.  One
#: free run keeps one-shot plans (the validation solver's throwaway
#: rules) from paying the ~50µs compile; anything the engine executes
#: per transaction seals on its second use.
_SEAL_THRESHOLD = 1

#: ``REPRO_SEALED=0`` pins the generic interpreter (reference tier).
_SEALING = os.environ.get('REPRO_SEALED', '1').strip().lower() \
    not in ('0', 'false', 'off')


def _run_rule(rule_plan: RulePlan, ctx: _PlanContext, out: set[Row],
              limit: int | None = None) -> None:
    """Run one compiled rule bottom-up, adding head rows to ``out``.

    With ``limit``, enumeration stops as soon as ``out`` holds that many
    rows — the early-exit mode constraint checking uses to stop at the
    first witness instead of materialising every violation."""
    if _SEALING:
        sealed = rule_plan.sealed
        if sealed is None:
            sealed = [0, 0]
            object.__setattr__(rule_plan, 'sealed', sealed)
        fn = sealed[0]
        if fn.__class__ is int:
            if fn < _SEAL_THRESHOLD:
                sealed[0] = fn + 1
                return _run_rule_generic(rule_plan, ctx, out, limit)
            fn = _seal_run(rule_plan)
            sealed[0] = fn
        return fn(ctx, out, limit)
    return _run_rule_generic(rule_plan, ctx, out, limit)


def _probe_rule(rule_plan: RulePlan, ctx: _PlanContext,
                row: tuple) -> bool:
    """Top-down: can this rule derive ``row``?  Uses the probe schedule,
    compiled with every head variable pre-bound."""
    if _SEALING:
        sealed = rule_plan.sealed
        if sealed is None:
            sealed = [0, 0]
            object.__setattr__(rule_plan, 'sealed', sealed)
        fn = sealed[1]
        if fn.__class__ is int:
            if fn < _SEAL_THRESHOLD:
                sealed[1] = fn + 1
                return _probe_rule_generic(rule_plan, ctx, row)
            fn = _seal_probe(rule_plan)
            sealed[1] = fn
        return fn(ctx, row)
    return _probe_rule_generic(rule_plan, ctx, row)


def _run_rule_generic(rule_plan: RulePlan, ctx: _PlanContext,
                      out: set[Row], limit: int | None = None) -> None:
    """The generic (step-walking) tier of :func:`_run_rule`."""
    steps = rule_plan.steps
    nsteps = len(steps)
    head = rule_plan.head
    env = [_UNBOUND] * rule_plan.nslots

    def advance(i: int) -> bool:
        """Continue the search; False propagates "limit reached"."""
        while i < nsteps:
            step = steps[i]
            cls = step.__class__
            if cls is ScanStep:
                key = tuple(c if s < 0 else env[s] for s, c in step.key)
                relation = ctx.relation(step.pred)
                checks = step.checks
                free = step.free
                for row in relation.lookup(step.positions, key):
                    if checks and any(row[a] != row[b]
                                      for a, b in checks):
                        continue
                    for pos, slot in free:
                        env[slot] = row[pos]
                    if not advance(i + 1):
                        return False
                return True
            if cls is ProbeStep:
                row = tuple(c if s < 0 else env[s] for s, c in step.key)
                if ctx.is_pending_idb(step.pred):
                    if not ctx.probe(step.pred, row):
                        return True
                elif not ctx.relation(step.pred).contains(row):
                    return True
            elif cls is NegationStep:
                key = tuple(c if s < 0 else env[s] for s, c in step.key)
                if len(step.positions) == step.arity \
                        and ctx.is_pending_idb(step.pred):
                    if ctx.probe(step.pred, key):
                        return True
                elif ctx.relation(step.pred).exists(step.positions, key,
                                                    step.arity):
                    return True
            elif cls is CompareStep:
                s, c = step.left
                left = c if s < 0 else env[s]
                s, c = step.right
                right = c if s < 0 else env[s]
                if _compare(step.op, left, right) != step.expect:
                    return True
            else:                                   # BindStep
                s, c = step.source
                env[step.slot] = c if s < 0 else env[s]
            i += 1
        out.add(tuple(c if s < 0 else env[s] for s, c in head))
        return limit is None or len(out) < limit

    advance(0)


def _probe_rule_generic(rule_plan: RulePlan, ctx: _PlanContext,
                        row: tuple) -> bool:
    """The generic (step-walking) tier of :func:`_probe_rule`."""
    for pos, value in rule_plan.match_consts:
        if row[pos] != value:
            return False
    env = [_UNBOUND] * rule_plan.nslots
    for pos, slot in rule_plan.match_binds:
        env[slot] = row[pos]
    for pos, slot in rule_plan.match_checks:
        if row[pos] != env[slot]:
            return False
    steps = rule_plan.probe_steps
    nsteps = len(steps)

    def satisfiable(i: int) -> bool:
        while i < nsteps:
            step = steps[i]
            cls = step.__class__
            if cls is ScanStep:
                key = tuple(c if s < 0 else env[s] for s, c in step.key)
                relation = ctx.relation(step.pred)
                checks = step.checks
                free = step.free
                for candidate in relation.lookup(step.positions, key):
                    if checks and any(candidate[a] != candidate[b]
                                      for a, b in checks):
                        continue
                    for pos, slot in free:
                        env[slot] = candidate[pos]
                    if satisfiable(i + 1):
                        return True
                return False
            if cls is ProbeStep:
                probe_row = tuple(c if s < 0 else env[s]
                                  for s, c in step.key)
                if ctx.is_pending_idb(step.pred):
                    if not ctx.probe(step.pred, probe_row):
                        return False
                elif not ctx.relation(step.pred).contains(probe_row):
                    return False
            elif cls is NegationStep:
                key = tuple(c if s < 0 else env[s] for s, c in step.key)
                if len(step.positions) == step.arity \
                        and ctx.is_pending_idb(step.pred):
                    if ctx.probe(step.pred, key):
                        return False
                elif ctx.relation(step.pred).exists(step.positions, key,
                                                    step.arity):
                    return False
            elif cls is CompareStep:
                s, c = step.left
                left = c if s < 0 else env[s]
                s, c = step.right
                right = c if s < 0 else env[s]
                if _compare(step.op, left, right) != step.expect:
                    return False
            else:                                   # BindStep
                s, c = step.source
                env[step.slot] = c if s < 0 else env[s]
            i += 1
        return True

    return satisfiable(0)


# ---------------------------------------------------------------------------
# Sealed execution: per-rule generated code
# ---------------------------------------------------------------------------
#
# A sealed rule is one flat Python function: scans become ``for`` loops,
# filters become ``if`` guards, slots become locals.  The code mirrors
# the generic tier statement for statement — including the dynamic
# pending-IDB dispatch, since the same RulePlan may execute under
# contexts with different materialisation states — so the two tiers are
# observationally identical (asserted by the differential tests in
# ``tests/test_plan.py`` and the fuzz oracle under ``REPRO_SEALED=0``).


class _Emitter:
    """Tiny indented-source builder for the rule code generators."""

    def __init__(self):
        self.lines: list[str] = []
        self.preamble: list[str] = []      # emitted at function start
        self.indent = 0
        self.consts: list[object] = []
        self._uniq = 0
        self._rel_memo: dict[str, tuple[str, str]] = {}

    def emit(self, line: str) -> None:
        self.lines.append('    ' * self.indent + line)

    def const(self, value) -> str:
        """Bind ``value`` as a closure constant and return its name.
        Values are injected through the factory's arguments rather than
        ``repr`` so arbitrary Python constants round-trip exactly."""
        self.consts.append(value)
        return f'c{len(self.consts) - 1}'

    def fresh(self, prefix: str) -> str:
        self._uniq += 1
        return f'{prefix}{self._uniq}'

    def operand(self, pair) -> str:
        """A (slot, const) operand as an expression."""
        slot, const = pair
        return self.const(const) if slot < 0 else f's{slot}'

    def key_tuple(self, key) -> str:
        parts = [self.operand(pair) for pair in key]
        return '(' + ', '.join(parts) + (',)' if len(parts) == 1 else ')')

    def relation(self, pred: str) -> str:
        """The memoised relation handle for ``pred``: fetched via
        ``ctx.relation`` at this step position on first reach (the same
        laziness as the generic tier — an unreached step never
        materialises), then reused by every later iteration and every
        deeper step."""
        memo = self._rel_memo.get(pred)
        if memo is None:
            name = self.fresh('_r')
            memo = (name, self.const(pred))
            self._rel_memo[pred] = memo
            self.preamble.append(f'{name} = None')
        name, cname = memo
        self.emit(f'if {name} is None:')
        self.indent += 1
        self.emit(f'{name} = ctx.relation({cname})')
        self.indent -= 1
        return name

    def pred_const(self, pred: str) -> str:
        memo = self._rel_memo.get(pred)
        return memo[1] if memo is not None else self.const(pred)


def _emit_steps(em: _Emitter, steps, success: str) -> None:
    """Generate the nested loop/guard pyramid for ``steps``; the
    ``success`` snippet runs at full depth once per satisfying
    binding.  Mirrors the generic tier's step semantics exactly."""
    for step in steps:
        cls = step.__class__
        if cls is ScanStep:
            rel = em.relation(step.pred)
            row = em.fresh('_t')
            if step.positions:
                source = (f'{rel}.lookup({em.const(step.positions)}, '
                          f'{em.key_tuple(step.key)})')
            else:
                source = f'{rel}.rows'
            em.emit(f'for {row} in {source}:')
            em.indent += 1
            for a, b in step.checks:
                em.emit(f'if {row}[{a}] != {row}[{b}]:')
                em.indent += 1
                em.emit('continue')
                em.indent -= 1
            for pos, slot in step.free:
                em.emit(f's{slot} = {row}[{pos}]')
        elif cls is ProbeStep or cls is NegationStep:
            negated = cls is NegationStep
            if negated and len(step.positions) != step.arity:
                rel = em.relation(step.pred)
                key = em.key_tuple(step.key)
                em.emit(f'if not {rel}.exists('
                        f'{em.const(step.positions)}, {key}, '
                        f'{step.arity}):')
                em.indent += 1
                continue
            # Fully bound membership, answered top-down while the
            # predicate is pending.  The pending check runs per reach
            # (an earlier step may have materialised the predicate
            # mid-run), but the relation handle is memoised once the
            # materialised branch is taken.
            pred = em.pred_const(step.pred)
            key = em.fresh('_k')
            em.emit(f'{key} = {em.key_tuple(step.key)}')
            em.emit(f'if ctx.is_pending_idb({pred}):')
            em.indent += 1
            em.emit(f'{key} = ctx.probe({pred}, {key})')
            em.indent -= 1
            em.emit('else:')
            em.indent += 1
            rel = em.relation(step.pred)
            em.emit(f'{key} = {key} in {rel}.rows')
            em.indent -= 1
            em.emit(f'if not {key}:' if negated else f'if {key}:')
            em.indent += 1
        elif cls is CompareStep:
            left = em.operand(step.left)
            right = em.operand(step.right)
            if step.op == '=':
                op = '==' if step.expect else '!='
                em.emit(f'if {left} {op} {right}:')
            elif step.expect:
                em.emit(f'if _compare({em.const(step.op)}, '
                        f'{left}, {right}):')
            else:
                em.emit(f'if not _compare({em.const(step.op)}, '
                        f'{left}, {right}):')
            em.indent += 1
        else:                                   # BindStep
            em.emit(f's{step.slot} = {em.operand(step.source)}')
    em.emit(success)


def _compile_factory(em: _Emitter, name: str, signature: str,
                     label: str) -> object:
    """exec() the generated ``name`` function and bind its constants."""
    source = '\n'.join(
        [f'def _make(_compare, {", ".join(f"c{i}" for i in range(len(em.consts)))}):',
         f'    def {name}({signature}):'] +
        ['        ' + line for line in em.preamble] +
        ['        ' + line for line in em.lines] +
        [f'    return {name}'])
    namespace: dict = {}
    exec(compile(source, f'<sealed {label}>', 'exec'), namespace)
    return namespace['_make'](_compare, *em.consts)


def _count_seal() -> None:
    """Tick the process-wide ``plan.seals`` counter.  Imported lazily:
    sealing is a once-per-rule event, and a module-level import of
    rdbms.metrics from here would cycle through the rdbms package."""
    from repro.rdbms.metrics import GLOBAL
    GLOBAL.counter('plan.seals')


def _seal_run(rule_plan: RulePlan):
    """Generate the bottom-up executor for one rule plan:
    ``fn(ctx, out, limit)`` adding head rows to ``out``."""
    _count_seal()
    em = _Emitter()
    head = ('(' + ', '.join(em.operand(pair) for pair in rule_plan.head)
            + (',)' if len(rule_plan.head) == 1 else ')'))
    _emit_steps(em, rule_plan.steps, f'out.add({head})')
    em.emit('if limit is not None and len(out) >= limit:')
    em.indent += 1
    em.emit('return')
    return _compile_factory(em, '_run', 'ctx, out, limit',
                            str(rule_plan.rule))


def _seal_probe(rule_plan: RulePlan):
    """Generate the top-down prober for one rule plan:
    ``fn(ctx, row) -> bool``."""
    _count_seal()
    em = _Emitter()
    for pos, value in rule_plan.match_consts:
        em.emit(f'if row[{pos}] != {em.const(value)}:')
        em.indent += 1
        em.emit('return False')
        em.indent -= 1
    for pos, slot in rule_plan.match_binds:
        em.emit(f's{slot} = row[{pos}]')
    for pos, slot in rule_plan.match_checks:
        em.emit(f'if row[{pos}] != s{slot}:')
        em.indent += 1
        em.emit('return False')
        em.indent -= 1
    base_indent = em.indent
    _emit_steps(em, rule_plan.probe_steps, 'return True')
    em.indent = base_indent
    em.emit('return False')
    return _compile_factory(em, '_probe', 'ctx, row',
                            str(rule_plan.rule))


# ---------------------------------------------------------------------------
# Plan-level execution
# ---------------------------------------------------------------------------


def execute_plan(plan: ExecutionPlan, edb, *, goals=None) -> Database:
    """Run a compiled plan over ``edb`` and return the IDB relations.

    With ``goals`` given, only those predicates (and what they demand)
    are materialised — auxiliary predicates that are only probed with
    fully bound arguments are answered top-down and never computed
    wholesale.
    """
    ctx = _PlanContext(edb, plan)
    idb = plan.idb
    for pred in (goals if goals is not None else plan.order):
        if pred in idb and ctx.is_pending_idb(pred):
            ctx.materialize(pred)
    names = goals if goals is not None else plan.order
    return ctx.snapshot(names)


def execute_constraints(plan: ExecutionPlan, edb, *,
                        first_witness: bool = False
                        ) -> list[tuple[Rule, tuple]]:
    """Evaluate the plan's compiled ⊥-rules over ``edb`` and return
    ``(rule, witness_row)`` pairs for each violated constraint.

    Nothing is materialised eagerly: constraint bodies demand exactly
    what they need (fully bound auxiliaries are just probed).  With
    ``first_witness``, each rule's enumeration stops at its first
    witness and the whole check stops at the first violated rule — the
    short-circuit the engine's per-transaction check uses, at the cost
    of a search-order-dependent (rather than canonical) witness row.
    """
    if not plan.constraint_plans:
        return []
    ctx = _PlanContext(edb, plan)
    violations: list[tuple[Rule, tuple]] = []
    for constraint in plan.constraint_plans:
        rows: set[Row] = set()
        _run_rule(constraint.rule_plan, ctx, rows,
                  limit=1 if first_witness else None)
        if rows:
            if first_witness:
                violations.append((constraint.rule, next(iter(rows))))
                return violations
            # key=repr: witness columns may mix value types.
            violations.append((constraint.rule, min(rows, key=repr)))
    return violations


# ---------------------------------------------------------------------------
# Historical entry points (compile-and-run wrappers)
# ---------------------------------------------------------------------------


def evaluate(program: Program, edb, *,
             check_safety: bool = True, goals=None) -> Database:
    """Evaluate ``program`` over ``edb`` and return IDB relations.

    ``edb`` may be a :class:`Database`, a plain ``{name: rows}`` mapping,
    or a mapping holding pre-indexed :class:`IndexedRelation` values.
    With ``goals`` given, only those predicates (and what they demand) are
    materialised.  Constraint rules are ignored here (see
    :func:`constraint_violations`).  EDB relations named like IDB
    predicates are shadowed by the computed IDB values, as in standard
    Datalog semantics.

    Compilation is memoized: repeated calls with an equal program reuse
    one :class:`~repro.datalog.plan.ExecutionPlan`.
    """
    plan = compile_program(program, check_safety=check_safety)
    return execute_plan(plan, edb, goals=goals)


def evaluate_rule(rule: Rule, edb: Database) -> frozenset:
    """Evaluate a single rule over ``edb`` (body predicates must be EDB)."""
    rule_plan = compile_rule(rule)
    ctx = _PlanContext(edb)
    rows: set[Row] = set()
    _run_rule(rule_plan, ctx, rows)
    return frozenset(rows)


def evaluate_query(program: Program, edb: Database, goal: str) -> frozenset:
    """Evaluate the Datalog query ``(program, goal)`` (§2.1)."""
    return evaluate(program, edb)[goal]


def holds(program: Program, edb: Database, goal: str) -> bool:
    """True when the goal relation is nonempty over ``edb``."""
    return bool(evaluate_query(program, edb, goal))


def constraint_violations(program: Program, edb
                          ) -> list[tuple[Rule, tuple]]:
    """Evaluate every constraint (⊥) rule of ``program`` over ``edb``
    (after computing what the constraint bodies demand) and return
    ``(rule, witness_binding_row)`` pairs for each violated constraint.

    A constraint ``⊥ :- body`` is violated when its body is satisfiable in
    the instance; the returned witness row holds the values of the body's
    variables in sorted name order.
    """
    plan = compile_program(program)
    return execute_constraints(plan, edb)
