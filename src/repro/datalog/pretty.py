"""Pretty-printing of Datalog programs.

``parse_program(pretty(p))`` reproduces ``p`` up to the canonicalisation the
parser performs (``<>`` becomes negated ``=``); a property-based test pins
this round-trip down.
"""

from __future__ import annotations

from repro.datalog.ast import (Atom, BuiltinLit, Const, Lit, Literal,
                               Program, Rule, Term, Var)

__all__ = ['pretty', 'pretty_rule', 'pretty_literal', 'pretty_term']


def pretty_term(term: Term) -> str:
    if isinstance(term, Var):
        return term.name
    value = term.value
    if isinstance(value, str):
        escaped = value.replace("'", "''")
        return f"'{escaped}'"
    return repr(value)


def pretty_atom(atom: Atom) -> str:
    args = ', '.join(pretty_term(t) for t in atom.args)
    return f'{atom.pred}({args})'


def pretty_literal(literal: Literal) -> str:
    if isinstance(literal, Lit):
        text = pretty_atom(literal.atom)
        return text if literal.positive else f'not {text}'
    text = (f'{pretty_term(literal.left)} {literal.op} '
            f'{pretty_term(literal.right)}')
    return text if literal.positive else f'not {text}'


def pretty_rule(rule: Rule) -> str:
    head = 'false' if rule.head is None else pretty_atom(rule.head)
    if not rule.body:
        return f'{head}.'
    body = ', '.join(pretty_literal(l) for l in rule.body)
    return f'{head} :- {body}.'


def pretty(program: Program | Rule) -> str:
    """Render a program (or single rule) as parseable source text."""
    if isinstance(program, Rule):
        return pretty_rule(program)
    return '\n'.join(pretty_rule(r) for r in program.rules)
