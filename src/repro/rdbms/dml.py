"""DML statements against views and the view-delta derivation (App. D).

The RDBMS layer accepts the three declarative statement forms of the paper
— ``INSERT INTO V VALUES(...)``, ``DELETE FROM V WHERE <cond>`` and
``UPDATE V SET attr=expr, ... WHERE <cond>`` — as plain Python objects.
:func:`derive_view_delta` implements Algorithm 2: fold a statement
sequence into a single (Δ⁺V, Δ⁻V) pair where later statements override
earlier ones.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Mapping, Sequence, Union

from repro.errors import SchemaError, ViewUpdateError
from repro.relational.delta import Delta
from repro.relational.schema import RelationSchema

__all__ = ['Insert', 'Delete', 'Update', 'Statement', 'derive_view_delta',
           'match_where', 'compile_where']

Where = Union[None, Mapping[str, object], Callable[[Mapping[str, object]],
                                                   bool]]


@dataclass(frozen=True)
class Insert:
    """``INSERT INTO <target> VALUES (values)``."""

    values: tuple

    def __post_init__(self):
        if not isinstance(self.values, tuple):
            object.__setattr__(self, 'values', tuple(self.values))


@dataclass(frozen=True)
class Delete:
    """``DELETE FROM <target> WHERE where``.

    ``where`` is a column→value mapping (conjunctive equality), a callable
    over a column→value dict, or None (delete everything).
    """

    where: Where = None


@dataclass(frozen=True)
class Update:
    """``UPDATE <target> SET assignments WHERE where``.

    Assignment values may be constants or callables receiving the row as a
    column→value mapping (expressions).
    """

    assignments: Mapping[str, object] = field(default_factory=dict)
    where: Where = None


Statement = Union[Insert, Delete, Update]

#: Shared empties for the hot single-statement paths (Delta is
#: immutable, so the instances are safe to share).
_EMPTY_ROWS = frozenset()
_NO_CHANGE = Delta()


def _as_named(row: tuple, schema: RelationSchema) -> dict[str, object]:
    return dict(zip(schema.attributes, row))


def match_where(row: tuple, where: Where, schema: RelationSchema) -> bool:
    """Does ``row`` satisfy the statement's WHERE condition?"""
    if where is None:
        return True
    named = _as_named(row, schema)
    if callable(where):
        return bool(where(named))
    for attr, expected in where.items():
        if attr not in named:
            raise SchemaError(
                f'unknown column {attr!r} in WHERE for {schema.name!r}')
        if named[attr] != expected:
            return False
    return True


def compile_where(where: Where, schema: RelationSchema):
    """``where`` as a row predicate, resolved against ``schema`` once.

    Semantically :func:`match_where` with the per-row work hoisted:
    mapping conditions compare tuple positions directly instead of
    building a column→value dict per row — WHERE evaluation is a scan
    over the whole (shard-local) relation, so this runs once per row
    of the target.  An unknown column raises from the first row the
    predicate is applied to, never eagerly: the single engine stays
    silent on an empty relation, and the sharded router's broadcast
    semantics depend on reproducing exactly that data-dependent
    behavior."""
    if where is None:
        return lambda row: True
    if callable(where):
        attributes = schema.attributes
        return lambda row: bool(where(dict(zip(attributes, row))))
    attributes = schema.attributes
    pairs = []
    error = None
    for attr, expected in where.items():
        if attr not in attributes:
            # Exactly :func:`match_where`: the unknown column raises
            # only when the conditions *before* it (in mapping order)
            # all matched the row — an earlier failing condition still
            # returns False without ever reaching it.
            error = (f'unknown column {attr!r} in WHERE for '
                     f'{schema.name!r}')
            break
        pairs.append((attributes.index(attr), expected))
    if error is not None:
        def match_then_raise(row):
            for position, expected in pairs:
                if row[position] != expected:
                    return False
            raise SchemaError(error)
        return match_then_raise
    if len(pairs) == 1:
        (position, expected), = pairs
        return lambda row: row[position] == expected
    return lambda row: all(row[position] == expected
                           for position, expected in pairs)


def _apply_assignments(row: tuple, assignments: Mapping[str, object],
                       schema: RelationSchema) -> tuple:
    named = _as_named(row, schema)
    for attr, value in assignments.items():
        if attr not in named:
            raise SchemaError(
                f'unknown column {attr!r} in SET for {schema.name!r}')
        named[attr] = value(dict(named)) if callable(value) else value
    return tuple(named[a] for a in schema.attributes)


class _RunningState:
    """The view state mid-sequence — ``(current \\ minus) ∪ plus`` —
    without ever copying ``current`` (it can be a large live table)."""

    def __init__(self, current):
        self.current = current
        self.plus: set = set()
        self.minus: set = set()

    def __iter__(self):
        for row in self.current:
            if row not in self.minus:
                yield row
        for row in self.plus:
            if row not in self.current:
                yield row

    def matching(self, where, schema: RelationSchema) -> list:
        """Rows satisfying ``where``; fully keyed equality conditions use
        a membership probe instead of a scan."""
        if isinstance(where, Mapping) and \
                set(where) == set(schema.attributes):
            row = tuple(where[a] for a in schema.attributes)
            return [row] if self.contains(row) else []
        match = compile_where(where, schema)
        # Flat list comprehensions over the overlay parts: this is the
        # whole-relation scan of an unindexed WHERE, the hottest loop
        # of keyed UPDATE/DELETE statements.
        current, plus, minus = self.current, self.plus, self.minus
        matched = [row for row in current
                   if row not in minus and match(row)]
        if plus:
            matched += [row for row in plus
                        if row not in current and match(row)]
        return matched

    def contains(self, row: tuple) -> bool:
        if row in self.plus:
            return True
        return row in self.current and row not in self.minus

    def apply(self, d_plus, d_minus) -> None:
        if not d_minus:
            # Pure insert (the per-statement common case): update in
            # place instead of rebuilding both sets.
            self.plus |= d_plus
            if d_plus:
                self.minus -= d_plus
            return
        self.plus = (self.plus - d_minus) | d_plus
        self.minus = (self.minus - d_plus) | d_minus


def _statement_deltas(statement: Statement, state: _RunningState,
                      schema: RelationSchema) -> tuple[set, set]:
    """(δ⁺, δ⁻) of one statement against the running view state."""
    if isinstance(statement, Insert):
        row = tuple(statement.values)
        schema.validate_tuple(row)
        return {row}, set()
    if isinstance(statement, Delete):
        return set(), set(state.matching(statement.where, schema))
    if isinstance(statement, Update):
        if not statement.assignments:
            raise ViewUpdateError('UPDATE requires at least one assignment')
        victims = state.matching(statement.where, schema)
        replacements = set()
        for row in victims:
            new_row = _apply_assignments(row, statement.assignments, schema)
            schema.validate_tuple(new_row)
            replacements.add(new_row)
        # An UPDATE is deletions followed by insertions (App. D).
        return replacements, set(victims) - replacements
    raise ViewUpdateError(f'unknown statement {statement!r}')


def derive_view_delta(statements: Sequence[Statement], current,
                      schema: RelationSchema) -> Delta:
    """Algorithm 2: fold a statement sequence into one view delta.

    Each statement's (δ⁺, δ⁻) is derived against the *running* view state
    (earlier statements already applied) and merged with

        Δ⁺ ← (Δ⁺ \\ δ⁻) ∪ δ⁺        Δ⁻ ← (Δ⁻ \\ δ⁺) ∪ δ⁻

    so later statements take precedence.  The returned delta is effective
    with respect to ``current`` (insertions not yet present, deletions
    present), and ``current`` is never copied.
    """
    if len(statements) == 1 and isinstance(statements[0], Insert):
        # The single-tuple INSERT bucket is the hot shape of OLTP-style
        # transactions: skip the running-state machinery entirely.
        row = tuple(statements[0].values)
        schema.validate_tuple(row)
        if row in current:
            return _NO_CHANGE
        return Delta(frozenset((row,)), _EMPTY_ROWS)
    state = _RunningState(current)
    for statement in statements:
        d_plus, d_minus = _statement_deltas(statement, state, schema)
        state.apply(d_plus, d_minus)
    return Delta(frozenset(r for r in state.plus
                           if r not in state.current),
                 frozenset(r for r in state.minus
                           if r in state.current))
