"""Fault-tolerant multi-peer data sharing (Dejima-style, §7 outlook).

The paper's closing discussion positions programmable view update
strategies as the contract for *data sharing between autonomous
databases*: each peer exposes part of its base data as an updatable
view, other peers subscribe to it, and an update arriving over the wire
is applied **through the receiving peer's own putback strategy** — the
receiver stays sovereign over how shared rows map onto its bases.  This
module builds that network on top of :class:`~repro.rdbms.engine.Engine`
(or :class:`~repro.rdbms.sharded.ShardedEngine`) peers:

- **Publication.**  A :class:`Peer` subscribes to its engine's
  ``commit_listeners``; after every committed transaction it derives the
  delta of each shared view and appends it to a durable per-share
  *outbox* WAL.  The outbox LSN is the message sequence number for
  every link fanning out from that share.
- **At-least-once delivery, exactly-once effect.**  The network
  redelivers until acknowledged; the receiver keeps one monotonic LSN
  watermark per ``(sender, view)`` link and drops anything at or below
  it (duplicates) while rejecting anything above ``watermark + 1``
  (:class:`PeerGap` — per-link FIFO).  Watermarks are made durable
  *atomically with the delta they acknowledge*: the apply transaction
  carries a ``('peer_ack', link, lsn)`` note in its commit record
  (:meth:`Engine.execute_many` ``note=``), so a crash can lose neither
  half.  Applies that change nothing (idempotent redelivery after an
  ack-less crash) and echo suppressions fall back to a sidecar state
  WAL.
- **Echo / cycle suppression.**  Every published delta carries the
  frozenset of peer names it has passed through (*origins*).  A peer
  receiving a delta whose origins include itself acknowledges without
  applying — a two-way or cyclic share topology converges instead of
  ping-ponging.  Deltas additionally carry their *root* — the
  ``(peer, lsn)`` of the originating publication, preserved through
  relays — and receivers keep durable per-root apply watermarks, so a
  copy of the same root delta arriving over a second path (a mesh is
  full of them) is acknowledged as stale instead of re-applied; see
  :class:`ShareDelta` for why per-link watermarks alone cannot catch
  these.
- **Retry, quarantine, anti-entropy.**  Each link retries with capped
  exponential backoff; after ``quarantine_after`` consecutive failures
  the link is quarantined (no more attempts).  Because the outbox is
  durable and acknowledgements are watermarks, recovery is plain
  catch-up: :meth:`PeerNetwork.heal` (or a peer restart) re-opens the
  link and the sender streams everything after the receiver's
  watermark — anti-entropy is the normal delivery path, not a special
  protocol.
- **Crash recovery.**  A restarted peer rebuilds its engine from its
  engine WAL, reloads its outbox, recovers watermarks from replayed
  commit notes + the sidecar, and *reconciles*: it folds the outbox to
  the last published state of each share, diffs that against the
  recovered view, and publishes the difference — so a crash between
  commit and publication cannot lose a delta (and a freshly created
  peer publishes its initial data the same way).

Fault injection hooks (:mod:`repro.rdbms.faults`): ``peer.send`` fires
before each message delivery (``drop``/``delay``/``dup``/``reorder``/
``stall``), ``peer.deliver`` fires on the receiving side (``crash``
restarts the peer from its WAL mid-delivery).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterable, Sequence

from repro.errors import ReproError
from repro.rdbms import faults
from repro.rdbms.dml import Delete, Insert
from repro.rdbms.metrics import MetricsRegistry
from repro.rdbms.wal import WriteAheadLog

__all__ = ['Peer', 'PeerNetwork', 'PeerGap', 'PeerCrashed', 'ShareDelta',
           'converged']

#: Watermark acknowledgement note embedded in apply transactions'
#: commit records (and the sidecar WAL):
#: ``(_ACK, (sender, view), lsn, root)``.  ``_ROOT`` notes re-emit the
#: per-root apply watermarks through checkpoints.
_ACK = 'peer_ack'
_ROOT = 'peer_root'


class PeerGap(ReproError):
    """A delta arrived above ``watermark + 1`` — delivery on this link
    skipped a message.  The receiver refuses (applying out of order
    would break the per-link FIFO contract); the sender must back up
    and resend in order."""


class PeerCrashed(ReproError):
    """Injected receiver death mid-delivery (``peer.deliver`` site,
    action ``crash``): the network discards the peer's in-memory state
    and restarts it from its durable logs."""


@dataclass(frozen=True)
class ShareDelta:
    """One published view delta — the unit of inter-peer shipping.

    ``root`` identifies the *originating* publication — ``(peer,
    outbox lsn)`` where the user transaction happened — and is
    preserved verbatim as the delta is relayed through intermediate
    peers.  Receivers keep a durable per-root watermark: in a mesh or
    cyclic topology the same root delta arrives over several paths,
    and per-link LSN watermarks cannot recognise the copies.  Without
    the root mark a relayed copy of an old insert arriving *after* the
    owner's delete would resurrect the row; with it the late copy is
    acknowledged as stale.  Per-link FIFO guarantees every path
    presents one root's deltas in root order, so the per-root
    watermark admits each exactly once, network-wide."""

    sender: str
    view: str
    lsn: int                   # sender outbox LSN (per-share sequence)
    origins: frozenset         # peers this delta has passed through
    insertions: frozenset
    deletions: frozenset
    root: tuple = None         # (origin peer, origin outbox lsn)


class Peer:
    """One autonomous database participating in the network.

    ``engine_factory(directory)`` builds (or rebuilds, after a crash)
    the peer's engine: it must attach any engine WAL inside
    ``directory`` and define every shared view — construction and
    recovery are deliberately the same code path.  ``shares`` names the
    views this peer publishes; subscribing peers must have a view of
    the same name (their *own* strategy over their *own* bases).
    """

    def __init__(self, name: str, engine_factory: Callable,
                 directory: 'str | Path', *,
                 shares: Sequence[str] = ()):
        self.name = name
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self._factory = engine_factory
        self.shares = tuple(shares)
        self.engine = engine_factory(self.directory)
        self.stats = {'published': 0, 'applied': 0, 'duplicates': 0,
                      'echoes': 0, 'stale': 0, 'reconciliations': 0,
                      'sidecar_acks': 0}
        # Sidecar durability for acknowledgements with no commit record
        # to ride in: echo suppressions, no-op re-applies, and every
        # ack on engines without note-carrying WALs (sharded peers).
        self._state = WriteAheadLog(self.directory / 'peer-state.wal',
                                    sync=False)
        self._watermarks: dict[tuple[str, str], int] = {}
        # Per-root apply watermarks (see :class:`ShareDelta.root`):
        # ``origin peer -> newest origin lsn applied``.
        self._applied_roots: dict[str, int] = {}
        self._recover_watermarks()
        # While applying a received delta, the origins and root it
        # carried — commits cascading out of the apply inherit them
        # (provenance accumulates across hops; echo and root-staleness
        # suppression need the full path and the originating mark).
        self._applying_origins: frozenset = frozenset()
        self._applying_root: tuple | None = None
        # Durable per-share outboxes + their in-memory tails.
        self._outbox: dict[str, WriteAheadLog] = {}
        self._tail: dict[str, list[ShareDelta]] = {}
        self._published: dict[str, frozenset] = {}
        for view in self.shares:
            if not self.engine.is_view(view):
                from repro.errors import SchemaError
                raise SchemaError(
                    f'peer {name!r} shares {view!r} but its engine '
                    f'does not define that view')
            self._load_outbox(view)
            self._reconcile(view)
        # Embed acks in the engine's own commit records when it can
        # carry them (plain Engine with a WAL); survive its checkpoint
        # compaction by re-emitting watermarks into every snapshot.
        engine = self.engine
        self._embedded = (getattr(engine, 'wal', None) is not None
                          and hasattr(engine, 'replayed_notes'))
        extras = getattr(engine, 'checkpoint_extras', None)
        if extras is not None:
            extras.append(self._checkpoint_watermarks)
        engine.commit_listeners.append(self._on_commit)

    # -- durability & recovery -----------------------------------------

    def _recover_watermarks(self) -> None:
        """Per-link and per-root watermarks = max over every durable
        ack: notes the engine WAL replayed (embedded in commit records
        or re-emitted by checkpoints) plus the sidecar log."""
        notes = list(getattr(self.engine, 'replayed_notes', ()))
        for record in self._state.records():
            notes.append(record.data)
        for note in notes:
            if not isinstance(note, tuple) or not note:
                continue
            if note[0] == _ACK:
                _, key, lsn = note[:3]
                key = tuple(key)
                if lsn > self._watermarks.get(key, 0):
                    self._watermarks[key] = lsn
                root = note[3] if len(note) > 3 else None
                if root is not None:
                    self._advance_root(tuple(root))
            elif note[0] == _ROOT:
                self._advance_root((note[1], note[2]))

    def _advance_root(self, root: tuple) -> None:
        peer, lsn = root
        if lsn > self._applied_roots.get(peer, 0):
            self._applied_roots[peer] = lsn

    def _checkpoint_watermarks(self) -> Iterable[tuple[str, object]]:
        for key, lsn in sorted(self._watermarks.items()):
            yield ('note', (_ACK, key, lsn))
        for peer, lsn in sorted(self._applied_roots.items()):
            yield ('note', (_ROOT, peer, lsn))

    def _load_outbox(self, view: str) -> None:
        outbox = WriteAheadLog(self.directory / f'share-{view}.wal',
                               sync=False)
        self._outbox[view] = outbox
        tail: list[ShareDelta] = []
        published: frozenset = frozenset()
        for record in outbox.records():
            origins, root, insertions, deletions = record.data
            tail.append(ShareDelta(self.name, view, record.lsn,
                                   frozenset(origins),
                                   frozenset(insertions),
                                   frozenset(deletions), root))
            published = (published - frozenset(deletions)) \
                | frozenset(insertions)
        self._tail[view] = tail
        self._published[view] = published

    def _reconcile(self, view: str) -> None:
        """Anti-entropy against our own engine: the outbox fold is the
        last *published* state; the engine holds the last *committed*
        state.  A crash between commit and publication (or a freshly
        created peer with loaded initial data) leaves a difference —
        publish it.  Origin provenance of the lost delta is gone, but
        re-applying rows a peer already has is a no-op (set semantics),
        so the worst case is a redundant message, never a ping-pong."""
        current = frozenset(tuple(row) for row in self.engine.rows(view))
        published = self._published[view]
        if current == published:
            return
        self._publish(view, current - published, published - current,
                      frozenset((self.name,)))
        self.stats['reconciliations'] += 1

    # -- publication ---------------------------------------------------

    def _publish(self, view: str, insertions: frozenset,
                 deletions: frozenset, origins: frozenset,
                 root: tuple | None = None) -> None:
        outbox = self._outbox[view]
        if root is None:        # an original publication: we are root
            root = (self.name, outbox.last_lsn + 1)
        lsn = outbox.append(
            'note', (tuple(sorted(origins)), root, insertions,
                     deletions))
        self._tail[view].append(ShareDelta(self.name, view, lsn,
                                           origins, insertions,
                                           deletions, root))
        self._published[view] = (self._published[view] - deletions) \
            | insertions
        self.stats['published'] += 1

    def _on_commit(self, event) -> None:
        """Post-commit hook: derive and publish each shared view's
        delta.  ``event`` is the applied
        :class:`~repro.rdbms.engine.PreparedCommit` (plain engine) or
        the tuple of written target names (sharded engine)."""
        origins = self._applying_origins | {self.name}
        root = self._applying_root
        batch = getattr(event, 'batch', None)
        if batch is not None:
            changed = event.changed_bases
            cached = {name: delta for name, delta, is_cache in batch
                      if is_cache}
            for view in self.shares:
                entry = self.engine.view(view)
                if (not (changed & entry.base_closure)
                        and view not in cached):
                    continue
                if view in cached and view in event.keep:
                    # The commit maintained the view's cache
                    # incrementally — its staged delta *is* the view
                    # delta, no recomputation needed.
                    delta = cached[view]
                    self._publish_diff(view,
                                       frozenset(delta.insertions),
                                       frozenset(delta.deletions),
                                       origins, root)
                else:
                    self._publish_current(view, origins, root)
        else:
            written = set(event)
            for view in self.shares:
                entry = self.engine.view(view)
                if written & entry.base_closure or view in written:
                    self._publish_current(view, origins, root)

    def _publish_current(self, view: str, origins: frozenset,
                         root: tuple | None = None) -> None:
        current = frozenset(tuple(row) for row in self.engine.rows(view))
        published = self._published[view]
        self._publish_diff(view, current - published,
                           published - current, origins, root)

    def _publish_diff(self, view: str, insertions: frozenset,
                      deletions: frozenset, origins: frozenset,
                      root: tuple | None = None) -> None:
        if not insertions and not deletions:
            return
        self._publish(view, insertions, deletions, origins, root)

    # -- receiving -----------------------------------------------------

    def watermark(self, sender: str, view: str) -> int:
        """The newest sender-outbox LSN durably applied on the
        ``(sender, view)`` link — the delivery resume point."""
        return self._watermarks.get((sender, view), 0)

    @property
    def watermarks(self) -> dict:
        return dict(self._watermarks)

    def receive(self, delta: ShareDelta) -> str:
        """Apply one shipped delta through this peer's own putback
        strategy.  Returns ``'applied'``, ``'duplicate'`` or
        ``'echo'``; raises :class:`PeerGap` on out-of-order delivery
        and :class:`PeerCrashed` under injected receiver death."""
        if faults.fire('peer.deliver', peer=self.name, view=delta.view,
                       sender=delta.sender) == 'crash':
            raise PeerCrashed(f'peer {self.name!r} crashed applying '
                              f'{delta.view}@{delta.lsn} from '
                              f'{delta.sender!r}')
        key = (delta.sender, delta.view)
        acked = self._watermarks.get(key, 0)
        if delta.lsn <= acked:
            self.stats['duplicates'] += 1
            return 'duplicate'
        if delta.lsn > acked + 1:
            raise PeerGap(f'link {key} expected lsn {acked + 1}, '
                          f'got {delta.lsn}')
        note = (_ACK, key, delta.lsn, delta.root)
        if self.name in delta.origins:
            # Our own delta coming back around a cycle: acknowledge,
            # never re-apply (the originator already holds the rows —
            # applying would republish and ping-pong forever).
            self._sidecar_ack(note)
            self._watermarks[key] = delta.lsn
            self.stats['echoes'] += 1
            return 'echo'
        if delta.root is not None and delta.root[1] \
                <= self._applied_roots.get(delta.root[0], 0):
            # A relayed copy of a root delta we already applied over
            # another path; re-applying it here could resurrect rows
            # the root has since deleted (the relay raced the delete).
            self._sidecar_ack(note)
            self._watermarks[key] = delta.lsn
            self.stats['stale'] += 1
            return 'stale'
        attributes = self.engine.view(delta.view).schema.attributes
        statements = [Delete(dict(zip(attributes, row)))
                      for row in delta.deletions]
        statements += [Insert(row) for row in delta.insertions]
        previous = self._applying_origins
        previous_root = self._applying_root
        self._applying_origins = delta.origins
        self._applying_root = delta.root
        try:
            if self._embedded:
                before = self.engine.commit_lsn
                self.engine.execute_many([(delta.view, statements)],
                                         note=note)
                if self.engine.commit_lsn == before:
                    # Net-empty apply (idempotent redelivery after an
                    # ack-less crash): no commit record was written, so
                    # the ack rides in the sidecar instead.
                    self._sidecar_ack(note)
            else:
                self.engine.execute_many([(delta.view, statements)])
                self._sidecar_ack(note)
        finally:
            self._applying_origins = previous
            self._applying_root = previous_root
        self._watermarks[key] = delta.lsn
        if delta.root is not None:
            self._advance_root(delta.root)
        self.stats['applied'] += 1
        return 'applied'

    def _sidecar_ack(self, note: tuple) -> None:
        self._state.append('note', note)
        self.stats['sidecar_acks'] += 1

    # -- access --------------------------------------------------------

    def pending(self, view: str, after: int) -> list:
        """Outbox records above ``after`` — what a link still owes its
        receiver."""
        return [delta for delta in self._tail[view]
                if delta.lsn > after]

    def outbox_lsn(self, view: str) -> int:
        return self._outbox[view].last_lsn

    def rows(self, view: str) -> frozenset:
        return frozenset(tuple(row) for row in self.engine.rows(view))

    def close(self) -> None:
        listeners = getattr(self.engine, 'commit_listeners', None)
        if listeners and self._on_commit in listeners:
            listeners.remove(self._on_commit)
        self.engine.close()
        self._state.close()
        for outbox in self._outbox.values():
            outbox.close()


@dataclass
class _Link:
    """One directed subscription: ``sender`` ships ``view`` deltas to
    ``receiver``.  ``acked`` mirrors the receiver's durable watermark;
    ``failures`` drives the capped exponential backoff and the
    quarantine threshold."""

    sender: str
    view: str
    receiver: str
    acked: int = 0
    failures: int = 0
    next_attempt: float = 0.0
    quarantined: bool = False
    stats: dict = field(default_factory=lambda: {
        'delivered': 0, 'retries': 0, 'gaps': 0, 'quarantines': 0})

    @property
    def name(self) -> str:
        return f'{self.sender}->{self.receiver}'


class PeerNetwork:
    """The delivery fabric between peers: links, retry with capped
    exponential backoff, quarantine, and restart-driven anti-entropy.

    ``clock``/``sleep`` are injectable for deterministic backoff tests
    (the default is real time).  All delivery happens inside
    :meth:`pump` / :meth:`settle` — the network is single-threaded by
    design, matching the deterministic chaos harness; the durable
    outbox/watermark protocol is what makes a concurrent transport
    equally safe."""

    def __init__(self, *, retry_backoff: float = 0.05,
                 retry_backoff_cap: float = 2.0,
                 quarantine_after: int = 5,
                 clock: Callable[[], float] = time.monotonic,
                 sleep: Callable[[float], None] = time.sleep):
        self.peers: dict[str, Peer] = {}
        self.links: list[_Link] = []
        self.retry_backoff = retry_backoff
        self.retry_backoff_cap = retry_backoff_cap
        self.quarantine_after = quarantine_after
        self.metrics = MetricsRegistry()
        self._clock = clock
        self._sleep = sleep

    # -- topology ------------------------------------------------------

    def add_peer(self, name: str, engine_factory: Callable,
                 directory: 'str | Path', *,
                 shares: Sequence[str] = ()) -> Peer:
        peer = Peer(name, engine_factory, directory, shares=shares)
        self.peers[name] = peer
        self.metrics.gauge('peer.peers', len(self.peers))
        return peer

    def subscribe(self, sender: str, view: str, receiver: str) -> _Link:
        """Create the directed link; delivery resumes from the
        receiver's durable watermark (the subscription handshake)."""
        link = _Link(sender, view, receiver,
                     acked=self.peers[receiver].watermark(sender, view))
        self.links.append(link)
        self.metrics.gauge('peer.links', len(self.links))
        return link

    def share(self, view: str, peers: Sequence[str]) -> None:
        """Full-mesh subscription on ``view`` between ``peers`` — the
        symmetric Dejima topology (echo suppression keeps it sane)."""
        for sender in peers:
            for receiver in peers:
                if sender != receiver:
                    self.subscribe(sender, view, receiver)

    # -- delivery ------------------------------------------------------

    def lag(self) -> dict:
        """Per-link undelivered delta counts (0 everywhere ⇔ the
        network is fully propagated)."""
        return {link.name + ':' + link.view:
                len(self.peers[link.sender].pending(link.view,
                                                    link.acked))
                for link in self.links}

    def pump(self) -> int:
        """One delivery round over every due link.  Returns the number
        of deltas acknowledged this round."""
        now = self._clock()
        delivered = 0
        for link in self.links:
            if link.quarantined or link.next_attempt > now:
                continue
            delivered += self._pump_link(link)
        self.metrics.gauge('peer.lag', sum(self.lag().values()))
        return delivered

    def _pump_link(self, link: _Link) -> int:
        sender = self.peers[link.sender]
        receiver = self.peers[link.receiver]
        pending = sender.pending(link.view, link.acked)
        if not pending:
            link.failures = 0
            return 0
        delivered = 0
        index = 0
        while index < len(pending):
            delta = pending[index]
            try:
                action = faults.fire('peer.send', link=link.name,
                                     sender=link.sender,
                                     receiver=link.receiver,
                                     view=link.view)
                if action == 'stall':
                    raise faults.InjectedFault(
                        f'injected stall on {link.name}')
                if action == 'reorder' and index + 1 < len(pending):
                    # Deliver the *next* message first: the receiver
                    # must reject the gap; we then resume in order —
                    # the sender-side recovery the docstring promises.
                    try:
                        receiver.receive(pending[index + 1])
                    except PeerGap:
                        link.stats['gaps'] += 1
                        self.metrics.counter('peer.gaps')
                receiver.receive(delta)
                if action == 'dup':
                    receiver.receive(delta)   # watermark dedups
                    self.metrics.counter('peer.duplicates_sent')
            except PeerCrashed:
                self.metrics.counter('peer.crashes')
                self.restart_peer(link.receiver)
                self._record_failure(link)
                return delivered
            except PeerGap:
                link.stats['gaps'] += 1
                self.metrics.counter('peer.gaps')
                self._record_failure(link)
                return delivered
            except faults.InjectedFault:
                self._record_failure(link)
                return delivered
            link.acked = delta.lsn
            link.failures = 0
            link.stats['delivered'] += 1
            self.metrics.counter('peer.deltas_delivered')
            delivered += 1
            index += 1
        return delivered

    def _record_failure(self, link: _Link) -> None:
        link.failures += 1
        link.stats['retries'] += 1
        self.metrics.counter('peer.retries')
        delay = min(self.retry_backoff * (2 ** (link.failures - 1)),
                    self.retry_backoff_cap)
        link.next_attempt = self._clock() + delay
        if link.failures >= self.quarantine_after:
            link.quarantined = True
            link.stats['quarantines'] += 1
            self.metrics.counter('peer.quarantines')

    def settle(self, *, max_rounds: int = 1000) -> bool:
        """Pump until every non-quarantined link is fully acknowledged
        (or ``max_rounds`` elapse).  Waits out backoffs with the
        injected ``sleep``.  Returns ``True`` when nothing undelivered
        remains on live links."""
        for _ in range(max_rounds):
            self.pump()
            waiting = []
            outstanding = False
            now = self._clock()
            for link in self.links:
                if link.quarantined:
                    continue
                if self.peers[link.sender].pending(link.view,
                                                   link.acked):
                    outstanding = True
                    if link.next_attempt > now:
                        waiting.append(link.next_attempt - now)
            if not outstanding:
                return True
            if waiting and len(waiting) == sum(
                    1 for link in self.links if not link.quarantined
                    and self.peers[link.sender].pending(link.view,
                                                        link.acked)):
                self._sleep(min(waiting))
        return not any(
            self.peers[link.sender].pending(link.view, link.acked)
            for link in self.links if not link.quarantined)

    # -- recovery ------------------------------------------------------

    def heal(self) -> int:
        """Lift every quarantine (the outage ended): the links resume
        from their receivers' watermarks — anti-entropy catch-up over
        the durable outbox.  Returns the number of links released."""
        released = 0
        for link in self.links:
            if link.quarantined:
                link.quarantined = False
                link.failures = 0
                link.next_attempt = 0.0
                released += 1
        if released:
            self.metrics.counter('peer.heals', released)
        return released

    def restart_peer(self, name: str) -> Peer:
        """Crash-restart ``name``: discard its in-memory state and
        rebuild it from its durable logs (engine WAL, outbox, sidecar),
        exactly as :class:`Peer` construction does.  Inbound links
        re-handshake to the recovered watermarks; its quarantined links
        are released for catch-up."""
        old = self.peers[name]
        old.close()
        peer = Peer(name, old._factory, old.directory,
                    shares=old.shares)
        self.peers[name] = peer
        self.metrics.counter('peer.restarts')
        for link in self.links:
            if link.receiver == name:
                link.acked = peer.watermark(link.sender, link.view)
            if name in (link.sender, link.receiver) and link.quarantined:
                link.quarantined = False
            if name in (link.sender, link.receiver):
                link.failures = 0
                link.next_attempt = 0.0
        return peer

    # -- observability -------------------------------------------------

    def stats(self) -> dict:
        """Merged peer + link counters next to the metrics snapshot."""
        return {
            'peers': {name: dict(peer.stats)
                      for name, peer in self.peers.items()},
            'links': {link.name + ':' + link.view: dict(link.stats)
                      for link in self.links},
            'lag': self.lag(),
            'quarantined': [link.name + ':' + link.view
                            for link in self.links if link.quarantined],
        }

    def close(self) -> None:
        for peer in self.peers.values():
            peer.close()


def converged(peers: Iterable[Peer], view: str) -> bool:
    """Do all ``peers`` agree bit-identically on ``view``?"""
    states = {peer.rows(view) for peer in peers}
    return len(states) <= 1
