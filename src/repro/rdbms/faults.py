"""Deterministic, seed-driven fault injection for the distributed tier.

Crash tolerance is only provable if the crashes are *reproducible*: a
fault that fires "sometimes" cannot anchor a differential oracle.  This
module gives the distributed stack (worker processes, the WAL, the
replication tailer) a single injection surface with deterministic
triggering — a :class:`FaultPlan` is a list of rules, each naming an
injection **site**, a context **match**, and the ordinal **hit** on
which its action fires.  The hooks are plain function calls
(:func:`fire`) compiled into the production code paths; with no plan
installed they cost one module-global load.

Sites and their actions
-----------------------

===================  =====================================================
``rpc.send``         Coordinator-side, before each RPC frame is written
                     (``method``/``shard`` in context).  Actions:
                     ``delay`` (sleep), ``drop`` (raise
                     :class:`InjectedFault` — the channel then surfaces
                     ``ShardUnavailableError``), ``dup`` (the frame is
                     sent twice — the worker must dedup by sequence
                     number), ``reorder`` (the frame is held back and
                     sent after a later one — the worker must restore
                     FIFO before dispatching).
``worker.dispatch``  Worker-side, before each RPC method executes
                     (``method`` plus the worker identity).  Actions:
                     ``kill`` (SIGKILL self — the crash the WAL must
                     survive), ``hang`` (sleep; what RPC timeouts must
                     surface as a wedged worker).
``wal.append``       Before a record's frame is written (``kind`` in
                     context).  Action ``tear`` is returned to the call
                     site, which writes *half* the frame and SIGKILLs —
                     the torn-final-frame crash.
``wal.fsync``        Inside :meth:`WriteAheadLog._flush`.  Action
                     ``error`` raises :class:`InjectedFault` (an
                     ``OSError``): the fsync-failure fault.
``wal.checkpoint``   Per record while the checkpoint temp file is
                     written (``index`` in context).  Action ``kill``
                     proves checkpoint crash-safety.
``replica.catch_up`` At the top of each catch-up pass.  Actions:
                     ``stall`` (returned to the site: the pass applies
                     nothing), ``error`` (raise — what
                     ``ReplicaSet`` quarantine must absorb).
``peer.send``        Peer-network sender side, before one delta message
                     is delivered over a link (``link``/``sender``/
                     ``receiver``/``view`` in context).  Actions:
                     ``delay`` (slow link), ``drop``/``error`` (lost
                     message — the link retries with backoff), ``stall``
                     (returned: the attempt silently fails, modelling a
                     wedged link), ``dup`` (returned: the message is
                     delivered twice — watermarks must dedup), and
                     ``reorder`` (returned: held back and delivered
                     after a later message — the receiver must reject
                     the gap and the sender must resend in order).
``peer.deliver``     Peer-network receiver side, before a received delta
                     is applied (``peer``/``view`` in context).  Action
                     ``crash`` (returned: the network simulates the
                     receiving peer dying mid-delivery and restarting
                     from its WAL).
===================  =====================================================

Determinism across processes
----------------------------

Workers are **forked**, so a plan installed in the coordinator *before*
the pool is constructed is inherited by every worker — each process
then counts its own hits (a worker's counters are shard-local by
construction).  Worker processes stamp their identity
(:func:`set_identity`: ``shard``, ``generation``) into every fired
context, so a rule can target one shard, or — via ``generation: 0`` —
only the *original* incarnation of a worker, never its restarted
replacement (restarts re-fork from the coordinator, which resets the
inherited counters; without the generation guard a crash-loop rule
would re-arm forever).
"""

from __future__ import annotations

import os
import signal
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field

__all__ = ['FaultPlan', 'InjectedFault', 'SITES', 'active', 'fire',
           'install', 'set_identity', 'uninstall']

#: Every injection site compiled into the library (documentation and a
#: guard against typo'd rules).
SITES = ('rpc.send', 'worker.dispatch', 'wal.append', 'wal.fsync',
         'wal.checkpoint', 'replica.catch_up', 'peer.send',
         'peer.deliver')

#: Actions executed centrally by :meth:`FaultPlan.fire` vs. returned to
#: the call site for site-specific interpretation.
_CENTRAL_ACTIONS = ('kill', 'hang', 'delay', 'drop', 'error')
_SITE_ACTIONS = ('tear', 'stall', 'dup', 'reorder', 'crash')


class InjectedFault(OSError):
    """The error injected by ``drop`` and ``error`` actions.  An
    ``OSError`` on purpose: the call sites treat it exactly as the real
    I/O failure it simulates (a dropped RPC frame, a failed fsync)."""


#: The installed plan (module-global so forked workers inherit it) and
#: this process's identity fields, merged into every fired context.
_ACTIVE: 'FaultPlan | None' = None
_IDENTITY: dict = {'shard': None, 'generation': 0}


def set_identity(**fields) -> None:
    """Stamp this process's identity (``shard=``, ``generation=``) into
    every subsequently fired context — called by the worker entry
    point."""
    _IDENTITY.update(fields)


def install(plan: 'FaultPlan') -> 'FaultPlan':
    """Make ``plan`` the active plan for this process (and, via fork,
    for workers spawned while it is installed)."""
    global _ACTIVE
    _ACTIVE = plan
    return plan


def uninstall() -> None:
    global _ACTIVE
    _ACTIVE = None


def active() -> 'FaultPlan | None':
    return _ACTIVE


def fire(site: str, **ctx) -> str | None:
    """The injection hook: a no-op (returning ``None``) unless a plan
    is installed and one of its rules triggers, in which case the
    central actions execute here and the site-interpreted action names
    (``'tear'``/``'stall'``) are returned to the caller."""
    plan = _ACTIVE
    if plan is None:
        return None
    return plan.fire(site, ctx)


@dataclass
class _Rule:
    """One armed fault: fire ``action`` on the ``hit``-th occurrence of
    ``site`` whose context matches ``match`` (``None`` values are
    wildcards).  ``once`` disarms after the first firing; otherwise the
    rule fires on every further matching hit."""

    site: str
    action: str
    hit: int = 1
    match: dict = field(default_factory=dict)
    seconds: float = 0.0
    once: bool = True
    count: int = 0
    fired: int = 0

    def matches(self, ctx: dict) -> bool:
        return all(ctx.get(key) == value
                   for key, value in self.match.items()
                   if value is not None)


class FaultPlan:
    """A deterministic schedule of injected faults.

    Build rules with the ``kill_worker``/``drop_rpc``/... methods (the
    ``seed`` is bookkeeping for the chaos harness — the *caller*
    derives rule parameters from it, the plan itself is explicit), then
    activate with ``with plan.installed(): ...``.  Thread-safe; each
    process counts its own hits (see module docstring).  ``log``
    records every firing as ``(site, action, context)`` — assert on it
    to prove a test was not vacuous."""

    def __init__(self, seed: int = 0):
        self.seed = seed
        self.rules: list[_Rule] = []
        self._lock = threading.Lock()
        self.log: list[tuple[str, str, dict]] = []

    # -- rule builders -------------------------------------------------

    def _add(self, site: str, action: str, hit: int, match: dict,
             seconds: float = 0.0, once: bool = True) -> _Rule:
        if site not in SITES:
            raise ValueError(f'unknown fault site {site!r}')
        if action not in _CENTRAL_ACTIONS + _SITE_ACTIONS:
            raise ValueError(f'unknown fault action {action!r}')
        if hit < 1:
            raise ValueError(f'hit must be >= 1, got {hit}')
        rule = _Rule(site, action, hit, match, seconds, once)
        self.rules.append(rule)
        return rule

    def kill_worker(self, *, shard: int | None = None,
                    method: str | None = 'apply_prepared',
                    hit: int = 1, generation: int | None = 0) -> _Rule:
        """SIGKILL the worker at its ``hit``-th dispatch of ``method``
        (any method when ``None``).  ``generation=0`` (the default)
        spares restarted workers — without it the rule re-arms on every
        re-fork and the worker crash-loops."""
        return self._add('worker.dispatch', 'kill', hit,
                         {'shard': shard, 'method': method,
                          'generation': generation})

    def hang_worker(self, *, shard: int | None = None,
                    method: str | None = 'prepare_commit', hit: int = 1,
                    seconds: float = 3600.0,
                    generation: int | None = 0) -> _Rule:
        """Wedge the worker (sleep, not death) at a dispatch — the
        fault RPC timeouts must surface as ``ShardUnavailableError``."""
        return self._add('worker.dispatch', 'hang', hit,
                         {'shard': shard, 'method': method,
                          'generation': generation}, seconds)

    def delay_rpc(self, *, shard: int | None = None,
                  method: str | None = None, hit: int = 1,
                  seconds: float = 0.01, once: bool = True) -> _Rule:
        """Sleep before an RPC frame is sent (transient slowness)."""
        return self._add('rpc.send', 'delay', hit,
                         {'shard': shard, 'method': method}, seconds,
                         once)

    def drop_rpc(self, *, shard: int | None = None,
                 method: str | None = None, hit: int = 1) -> _Rule:
        """Fail an RPC send with :class:`InjectedFault` — the channel
        breaks exactly as on a real ``OSError`` (the worker process
        stays alive; the coordinator must reap and restart it)."""
        return self._add('rpc.send', 'drop', hit,
                         {'shard': shard, 'method': method})

    def dup_rpc(self, *, shard: int | None = None,
                method: str | None = None, hit: int = 1,
                once: bool = True) -> _Rule:
        """Send an RPC frame *twice* (at-least-once transport).  The
        worker must dedup by sequence number or it executes the method
        twice and its reply stream desynchronises."""
        return self._add('rpc.send', 'dup', hit,
                         {'shard': shard, 'method': method}, once=once)

    def reorder_rpc(self, *, shard: int | None = None,
                    method: str | None = None, hit: int = 1) -> _Rule:
        """Hold an RPC frame back and send it *after* the next one —
        the worker must buffer and restore FIFO dispatch order."""
        return self._add('rpc.send', 'reorder', hit,
                         {'shard': shard, 'method': method})

    def drop_peer(self, *, link: str | None = None, hit: int = 1,
                  once: bool = True) -> _Rule:
        """Lose one peer delta message in flight (the link raises; the
        sender must retry with backoff until acknowledged)."""
        return self._add('peer.send', 'drop', hit, {'link': link},
                         once=once)

    def delay_peer(self, *, link: str | None = None, hit: int = 1,
                   seconds: float = 0.01, once: bool = True) -> _Rule:
        """Slow one peer delta delivery down (transient link latency)."""
        return self._add('peer.send', 'delay', hit, {'link': link},
                         seconds, once)

    def dup_peer(self, *, link: str | None = None, hit: int = 1,
                 once: bool = True) -> _Rule:
        """Deliver one peer delta message *twice* — the receiver's
        per-link LSN watermark must dedup the redelivery."""
        return self._add('peer.send', 'dup', hit, {'link': link},
                         once=once)

    def reorder_peer(self, *, link: str | None = None,
                     hit: int = 1) -> _Rule:
        """Hold a peer delta back and deliver it after a later one —
        the receiver must reject the gap (watermark monotonicity) and
        the sender must recover by resending in order."""
        return self._add('peer.send', 'reorder', hit, {'link': link})

    def stall_link(self, *, link: str | None = None, hit: int = 1,
                   once: bool = False) -> _Rule:
        """Wedge a peer link: every matching delivery attempt silently
        fails (no exception, no progress) — what retry/quarantine and
        anti-entropy catch-up must absorb.  Repeats by default; disarm
        by uninstalling the plan or bounding ``hit``/``once``."""
        return self._add('peer.send', 'stall', hit, {'link': link},
                         once=once)

    def crash_peer(self, *, peer: str | None = None,
                   hit: int = 1) -> _Rule:
        """Simulate the receiving peer dying mid-delivery: the network
        discards its in-memory state and restarts it from its WAL —
        the recovery path a SIGKILL exercises, minus the subprocess."""
        return self._add('peer.deliver', 'crash', hit, {'peer': peer})

    def fail_fsync(self, *, shard: int | None = None,
                   hit: int = 1) -> _Rule:
        """Raise ``InjectedFault`` from the WAL's flush — the
        fsync-``OSError`` fault (the log poisons itself; a worker dies
        rather than serve non-durable commits)."""
        return self._add('wal.fsync', 'error', hit, {'shard': shard})

    def tear_frame(self, *, shard: int | None = None, hit: int = 1,
                   generation: int | None = 0) -> _Rule:
        """Write half of a record's frame, then SIGKILL — the torn
        final frame recovery must truncate."""
        return self._add('wal.append', 'tear', hit,
                         {'shard': shard, 'generation': generation})

    def kill_checkpoint(self, *, record: int = 1) -> _Rule:
        """SIGKILL while the checkpoint temp file is being written
        (before the atomic rename) — the log must survive intact."""
        return self._add('wal.checkpoint', 'kill', record, {})

    def stall_replica(self, *, hit: int = 1, once: bool = True) -> _Rule:
        """Make a replica catch-up pass apply nothing (a stalled tail;
        reads degrade to the primary, no quarantine)."""
        return self._add('replica.catch_up', 'stall', hit, {},
                         once=once)

    def fail_replica(self, *, hit: int = 1) -> _Rule:
        """Raise from a replica catch-up pass (a broken tail — what
        ``ReplicaSet`` must quarantine)."""
        return self._add('replica.catch_up', 'error', hit, {})

    # -- firing --------------------------------------------------------

    def fire(self, site: str, ctx: dict) -> str | None:
        merged = dict(_IDENTITY)
        merged.update(ctx)
        triggered: _Rule | None = None
        with self._lock:
            for rule in self.rules:
                if rule.site != site or not rule.matches(merged):
                    continue
                rule.count += 1
                if rule.count < rule.hit or (rule.once and rule.fired):
                    continue
                rule.fired += 1
                self.log.append((site, rule.action, merged))
                triggered = rule
                break
        if triggered is None:
            return None
        return self._execute(triggered)

    def _execute(self, rule: _Rule) -> str | None:
        # Central actions run here (outside the lock: 'kill' never
        # returns); site-interpreted ones are handed back by name.
        if rule.action == 'kill':       # pragma: no cover - dies
            os.kill(os.getpid(), signal.SIGKILL)
        if rule.action in ('hang', 'delay'):
            time.sleep(rule.seconds)
            return rule.action
        if rule.action in ('drop', 'error'):
            raise InjectedFault(
                f'injected {rule.action} at {rule.site}')
        return rule.action              # 'tear' / 'stall'

    def fired(self, site: str | None = None) -> int:
        """How many times this process's rules fired (optionally at one
        site) — the non-vacuity assertion for tests."""
        with self._lock:
            return sum(1 for logged_site, _, _ in self.log
                       if site is None or logged_site == site)

    @contextmanager
    def installed(self):
        """Activate the plan for the dynamic extent of the block (and,
        by fork, for any worker spawned inside it)."""
        install(self)
        try:
            yield self
        finally:
            uninstall()
