"""An RDBMS with programmable updatable views over pluggable storage.

This is the execution substrate substituting for PostgreSQL (§6.1): base
tables, views defined by *validated* update strategies, and DML against
views translated to source updates by the trigger pipeline of the paper —

1. derive the view delta from the DML statements (Algorithm 2),
2. check the ⊥-constraints on the updated view,
3. evaluate the (incrementalized) putback program and apply ΔS.

Views can be layered: a strategy's "source relations" may themselves be
views (the paper's case study defines ``employees`` over the views
``residents`` and ``ced``), in which case the computed delta on a view
source recursively becomes a view update — the engine cascades the
translation down to base tables, atomically.

Storage and plan execution live behind the
:class:`~repro.rdbms.backends.base.Backend` interface: the engine holds
only the view catalog and the transaction pipeline, and talks to the
backend for table/cache contents, committed deltas, index hints, and
plan evaluation.  ``Engine(schema)`` defaults to the in-process
:class:`~repro.rdbms.backends.memory.MemoryBackend` (or whatever
``REPRO_BACKEND`` names); ``Engine(schema, backend='sqlite')`` stores
relations in SQLite and executes the compiled plans as SQL.

Performance model (what makes Figure 6 reproducible): a transaction
stages *deltas* and commits them in place, so an incrementalized update
touches O(|ΔV|) tuples — no full-table copies, no full-view
rematerialisation.  The full (original) putback path evaluates the
whole program against the updated view and is deliberately O(|S|), as
in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

from repro.core.incremental import incrementalize_plan
from repro.core.lvgn import is_lvgn
from repro.core.strategy import UpdateStrategy
from repro.core.validation import ValidationReport, validate
from repro.datalog.ast import Program
from repro.datalog.plan import ExecutionPlan, compile_program
from repro.errors import (ContradictionError, SchemaError, ValidationError,
                          ViewUpdateError)
from repro.rdbms.backends import Backend, create_backend
from repro.rdbms.dml import (Delete, Insert, Statement, Update,
                             derive_view_delta)
from repro.relational.database import Database
from repro.relational.delta import Delta, DeltaSet
from repro.relational.schema import DatabaseSchema, RelationSchema

__all__ = ['Engine', 'Transaction', 'ViewEntry']


@dataclass
class ViewEntry:
    """Everything the engine knows about one updatable view.

    Plans are compiled exactly once, at :meth:`Engine.define_view` time,
    and reused verbatim for every subsequent ``insert``/``delete``/
    ``update``/``execute_many`` batch — the engine's analogue of the
    SQL triggers BIRDS installs ahead of time.  Backends may compile
    further (the SQLite backend lowers these plans to SQL in its
    ``register_view`` hook).
    """

    strategy: UpdateStrategy
    get_program: Program
    get_plan: ExecutionPlan
    incremental_program: Program | None
    incremental_plan: ExecutionPlan | None
    lvgn: bool
    use_incremental: bool
    source_names: tuple[str, ...]
    base_closure: frozenset  # base tables transitively underneath

    @property
    def name(self) -> str:
        return self.strategy.view.name

    @property
    def schema(self) -> RelationSchema:
        return self.strategy.view

    def plans(self) -> tuple[ExecutionPlan, ...]:
        """Every plan this view can run (for index pre-building)."""
        plans = [self.get_plan, self.strategy.putdelta_plan]
        if self.incremental_plan is not None:
            plans.append(self.incremental_plan)
        return tuple(plans)


def _compose(first: Delta, second: Delta) -> Delta:
    """Sequential composition of deltas (the Algorithm 2 merge)."""
    return Delta((first.insertions - second.deletions) | second.insertions,
                 (first.deletions - second.insertions) | second.deletions)


class _Working:
    """Uncommitted transaction state: accumulated per-relation deltas plus
    a lazy materialisation overlay for relations re-read after staging.

    Each staged write is tagged with its *origin* (the top-level DML
    target, or ``'<direct>'`` for base-table DML) so commit can decide
    which view caches remain consistent: a view maintained by origin O is
    stale when some base underneath it was also written by a different
    origin in the same transaction."""

    def __init__(self, engine: 'Engine'):
        self.engine = engine
        self.deltas: dict[str, Delta] = {}
        self.touched_views: set[str] = set()
        self.base_origins: dict[str, set[str]] = {}
        self.view_origins: dict[str, set[str]] = {}
        self._materialized: dict[str, frozenset] = {}

    def rows(self, name: str):
        """Current contents of ``name`` as seen inside the transaction."""
        if name in self._materialized:
            return self._materialized[name]
        baseline = self.engine.rows(name)
        delta = self.deltas.get(name)
        if delta is None or delta.is_empty():
            return baseline
        materialized = frozenset(baseline - delta.deletions
                                 | delta.insertions)
        self._materialized[name] = materialized
        return materialized

    def relation_for_eval(self, name: str):
        """What evaluation should read for ``name``: the backend's
        stored relation when unstaged, else the staged rows."""
        delta = self.deltas.get(name)
        if (delta is None or delta.is_empty()) \
                and name not in self._materialized:
            return self.engine.eval_handle(name)
        return self.rows(name)

    def stage(self, name: str, delta: Delta, *, is_view: bool,
              origin: str) -> None:
        clash = delta.contradictions()
        if clash:
            raise ContradictionError(name, clash)
        prior = self.deltas.get(name, Delta())
        self.deltas[name] = _compose(prior, delta)
        self._materialized.pop(name, None)
        if is_view:
            self.touched_views.add(name)
            self.view_origins.setdefault(name, set()).add(origin)
        else:
            self.base_origins.setdefault(name, set()).add(origin)


class Engine:
    """Base tables + updatable views, with atomic cascading updates.

    ``backend`` selects the storage/execution substrate by name
    (``'memory'``/``'sqlite'``), accepts a prebuilt
    :class:`~repro.rdbms.backends.base.Backend` instance, or defaults
    to the ``REPRO_BACKEND`` environment variable.  The memory backend
    keeps persistent hash indexes on tables and view caches — the role
    PostgreSQL's B-tree indexes play in the paper's Figure 6 experiment;
    the SQLite backend maintains real SQL indexes instead.
    """

    def __init__(self, schema: DatabaseSchema,
                 backend: str | Backend | None = None):
        self.schema = schema
        self.backend = create_backend(backend, schema)
        self._views: dict[str, ViewEntry] = {}

    # -- basic access ------------------------------------------------------

    def is_view(self, name: str) -> bool:
        return name in self._views

    def view(self, name: str) -> ViewEntry:
        try:
            return self._views[name]
        except KeyError:
            raise SchemaError(f'unknown view {name!r}') from None

    def relations(self) -> tuple[str, ...]:
        return self.schema.names() + tuple(self._views)

    def _ensure_view_cache(self, name: str) -> None:
        """Materialise view ``name`` (and, recursively, its view
        sources) into the backend's cache storage."""
        if self.backend.has_cache(name):
            return
        entry = self._views[name]
        sources = {s: self.eval_handle(s) for s in entry.source_names}
        rows = self.backend.evaluate_get(entry, sources)
        self.backend.store_cache(name, rows)

    def eval_handle(self, name: str):
        """The backend's evaluation handle for a table or (materialised)
        view — what compiled plans read when the relation is unstaged."""
        if name in self._views:
            self._ensure_view_cache(name)
        elif name not in self.schema:
            raise SchemaError(f'unknown relation {name!r}')
        return self.backend.eval_handle(name)

    def rows(self, name: str):
        """Contents of a base table or (materialized) view.

        Treat the result as read-only; depending on the backend it is
        live storage state or a frozen copy.
        """
        if name in self._views:
            self._ensure_view_cache(name)
        elif name not in self.schema:
            raise SchemaError(f'unknown relation {name!r}')
        return self.backend.rows(name)

    def database(self) -> Database:
        """A frozen snapshot of the base-table state."""
        return self.backend.snapshot()

    def load(self, name: str, rows: Iterable[tuple]) -> None:
        """Bulk-load a base table (replacing its contents)."""
        if name in self._views or name not in self.schema:
            raise SchemaError(f'{name!r} is not a base table')
        loaded = {tuple(r) for r in rows}
        for row in loaded:
            self.schema[name].validate_tuple(row)
        self.backend.load(name, loaded)
        self._invalidate_dependents({name})

    # -- view definition ---------------------------------------------------------

    def define_view(self, strategy: UpdateStrategy, *,
                    report: ValidationReport | None = None,
                    validate_first: bool = True,
                    use_incremental: bool = True) -> ViewEntry:
        """Register an updatable view.

        The strategy must be valid; pass a precomputed ``report`` to skip
        re-validation, or ``validate_first=False`` to trust the caller
        (the expected_get is then required and used as the view
        definition).
        """
        name = strategy.view.name
        if name in self.schema or name in self._views:
            raise SchemaError(f'relation {name!r} already exists')
        for source in strategy.updated_relations():
            if source not in self.schema and source not in self._views:
                raise SchemaError(
                    f'view {name!r} updates unknown relation {source!r}')
        if report is not None:
            report.raise_if_invalid()
            get_program = report.view_definition
        elif validate_first:
            report = validate(strategy)
            report.raise_if_invalid()
            get_program = report.view_definition
        else:
            get_program = strategy.expected_get
        if get_program is None:
            raise ValidationError(
                f'no certified view definition available for {name!r}')

        source_names = tuple(sorted(
            set(strategy.sources.names()) & (set(self.schema.names()) |
                                             set(self._views))))
        lvgn = is_lvgn(strategy.putdelta, name)
        incremental_program = None
        incremental_plan = None
        if use_incremental:
            try:
                incremental_program, incremental_plan = incrementalize_plan(
                    strategy.putdelta, name, lvgn=lvgn)
            except Exception:
                incremental_program = None  # fall back to full put
                incremental_plan = None
        closure: set[str] = set()
        for source in source_names:
            if source in self._views:
                closure |= self._views[source].base_closure
            else:
                closure.add(source)
        entry = ViewEntry(strategy=strategy, get_program=get_program,
                          get_plan=compile_program(get_program),
                          incremental_program=incremental_program,
                          incremental_plan=incremental_plan,
                          lvgn=lvgn,
                          use_incremental=use_incremental and
                          incremental_plan is not None,
                          source_names=source_names,
                          base_closure=frozenset(closure))
        self._views[name] = entry
        self.backend.register_view(entry)
        self._register_index_hints(entry)
        return entry

    def _register_index_hints(self, entry: ViewEntry) -> None:
        """Pre-build the persistent access structures the view's
        compiled plans declare, the way a live RDBMS creates its B-trees
        at ``CREATE VIEW`` time rather than during the first update."""
        for plan in entry.plans():
            for pred, positions in plan.index_requirements:
                if pred not in self.schema and pred not in self._views:
                    continue  # delta inputs / auxiliary IDB predicates
                self.backend.add_index_hint(pred, positions)

    # -- DML -------------------------------------------------------------------

    def insert(self, target: str, values: tuple) -> None:
        self.execute(target, [Insert(tuple(values))])

    def delete(self, target: str, where=None) -> None:
        self.execute(target, [Delete(where)])

    def update(self, target: str, assignments: Mapping[str, object],
               where=None) -> None:
        self.execute(target, [Update(assignments, where)])

    def transaction(self) -> 'Transaction':
        return Transaction(self)

    def execute(self, target: str, statements: Sequence[Statement]) -> None:
        """Run a statement sequence against one relation, atomically."""
        working = _Working(self)
        self._execute_into(working, target, statements)
        self._commit(working)

    def execute_many(self, batches: Sequence[tuple[str,
                                                   Sequence[Statement]]]
                     ) -> None:
        """One transaction spanning several targets (BEGIN ... END)."""
        working = _Working(self)
        for target, statements in batches:
            self._execute_into(working, target, statements)
        self._commit(working)

    # -- internals -------------------------------------------------------------

    def _execute_into(self, working: _Working, target: str,
                      statements: Sequence[Statement]) -> None:
        if target in self._views:
            entry = self._views[target]
            delta = derive_view_delta(statements, working.rows(target),
                                      entry.schema)
            if delta.is_empty():
                return
            self._apply_view_delta(working, target, delta, origin=target)
            return
        if target not in self.schema:
            raise SchemaError(f'unknown relation {target!r}')
        schema = self.schema[target]
        delta = derive_view_delta(statements, working.rows(target), schema)
        working.stage(target, delta, is_view=False, origin='<direct>')

    def _apply_view_delta(self, working: _Working, name: str,
                          delta: Delta, origin: str) -> None:
        """The trigger pipeline for one view (recursing into view
        sources)."""
        entry = self._views[name]
        current = working.rows(name)
        effective = delta.effective_on(current)
        if effective.is_empty():
            return
        sources = {s: working.relation_for_eval(s)
                   for s in entry.source_names}

        if entry.use_incremental:
            incremental_constraints = bool(
                entry.incremental_plan.constraint_plans)
            if entry.strategy.constraints() and not incremental_constraints:
                # General-path ∂put has no constraint rules: full check.
                new_rows = (current - effective.deletions) \
                    | effective.insertions
                self.backend.check_view_constraints(entry, sources,
                                                    new_rows)
            deltas = self.backend.evaluate_incremental(
                entry, sources, working.relation_for_eval(name), effective)
        else:
            new_rows = (current - effective.deletions) \
                | effective.insertions
            deltas = self.backend.evaluate_putback(entry, sources, new_rows,
                                                   check_constraints=True)

        working.stage(name, effective, is_view=True, origin=origin)
        for relation in sorted(deltas.relations()):
            rel_delta = deltas[relation].effective_on(
                working.rows(relation))
            if rel_delta.is_empty():
                continue
            if relation in self._views:
                self._apply_view_delta(working, relation, rel_delta,
                                       origin=origin)
            elif relation in self.schema:
                working.stage(relation, rel_delta, is_view=False,
                              origin=origin)
            else:
                raise ViewUpdateError(
                    f'strategy for {name!r} updates unknown relation '
                    f'{relation!r}')

    def _commit(self, working: _Working) -> None:
        # Validate every inserted base row before touching storage, so a
        # schema error cannot leave a half-applied transaction behind.
        for name, delta in working.deltas.items():
            if name not in self._views:
                for row in delta.insertions:
                    self.schema[name].validate_tuple(row)
        changed_bases: set[str] = set()
        batch: list[tuple[str, Delta, bool]] = []
        for name, delta in working.deltas.items():
            if delta.is_empty():
                continue
            if name in self._views:
                if self.backend.has_cache(name):
                    batch.append((name, delta, True))
            else:
                batch.append((name, delta, False))
                changed_bases.add(name)
        if batch:
            self.backend.apply_deltas(batch)
        # A touched view's cache stays valid only when every write under
        # it came from its own update pipeline(s).
        keep: set[str] = set()
        for view in working.touched_views:
            entry = self._views[view]
            own = working.view_origins.get(view, set())
            foreign = set()
            for base in entry.base_closure & changed_bases:
                foreign |= working.base_origins.get(base, set()) - own
            if not foreign:
                keep.add(view)
        self._invalidate_dependents(changed_bases, keep=keep)

    def _invalidate_dependents(self, changed_bases: set[str],
                               keep: set[str] = frozenset()) -> None:
        if not changed_bases:
            return
        for view, entry in self._views.items():
            if view in keep:
                continue
            if entry.base_closure & changed_bases:
                self.backend.drop_cache(view)


class Transaction:
    """Context manager batching statements into one atomic execution::

        with engine.transaction() as txn:
            txn.insert('v', (1, 'a'))
            txn.delete('v', where={'a': 2})
    """

    def __init__(self, engine: Engine):
        self.engine = engine
        self.batches: list[tuple[str, list[Statement]]] = []

    def _bucket(self, target: str) -> list[Statement]:
        if self.batches and self.batches[-1][0] == target:
            return self.batches[-1][1]
        bucket: list[Statement] = []
        self.batches.append((target, bucket))
        return bucket

    def insert(self, target: str, values: tuple) -> None:
        self._bucket(target).append(Insert(tuple(values)))

    def delete(self, target: str, where=None) -> None:
        self._bucket(target).append(Delete(where))

    def update(self, target: str, assignments, where=None) -> None:
        self._bucket(target).append(Update(assignments, where))

    def __enter__(self) -> 'Transaction':
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is None and self.batches:
            self.engine.execute_many(self.batches)
        return False
