"""An RDBMS with programmable updatable views over pluggable storage.

This is the execution substrate substituting for PostgreSQL (§6.1): base
tables, views defined by *validated* update strategies, and DML against
views translated to source updates by the trigger pipeline of the paper —

1. derive the view delta from the DML statements (Algorithm 2),
2. check the ⊥-constraints on the updated view,
3. evaluate the (incrementalized) putback program and apply ΔS.

Views can be layered: a strategy's "source relations" may themselves be
views (the paper's case study defines ``employees`` over the views
``residents`` and ``ced``), in which case the computed delta on a view
source recursively becomes a view update — the engine cascades the
translation down to base tables, atomically.

Storage and plan execution live behind the
:class:`~repro.rdbms.backends.base.Backend` interface: the engine holds
only the view catalog and the transaction pipeline, and talks to the
backend for table/cache contents, committed deltas, index hints, and
plan evaluation.  ``Engine(schema)`` defaults to the in-process
:class:`~repro.rdbms.backends.memory.MemoryBackend` (or whatever
``REPRO_BACKEND`` names); ``Engine(schema, backend='sqlite')`` stores
relations in SQLite and executes the compiled plans as SQL.

Performance model (what makes Figure 6 reproducible): a transaction
stages *deltas* and commits them in place, so an incrementalized update
touches O(|ΔV|) tuples — no full-table copies, no full-view
rematerialisation.  The full (original) putback path evaluates the
whole program against the updated view and is deliberately O(|S|), as
in the paper.

The transaction pipeline is *delta-batched*: statement buckets only
derive and stage view deltas (Algorithm 2, visible to later statements
in the same transaction); the staged deltas of each touched view are
coalesced by sequential composition (:meth:`~repro.relational.delta.
Delta.then`) and the view's incremental/putback plan runs **once** per
transaction over the merged effective delta.  The pending queue drains
in first-staged (bucket) order — which respects the view dependency
topology precomputed at ``define_view`` time
(``ViewEntry.update_closure``), since a putback only cascades onto
already-defined views.  A transaction touching one view N times
therefore costs one plan evaluation, not N (O(#views × plan cost)
instead of O(#statements × plan cost)); pending translations are
forced early only when a later bucket touches a relation one of them
could still write — or reads as a source.  Constraint checks
consequently see the transaction's *net* effect — SQL's
deferred-constraint semantics.  ``Engine(..., batch_deltas=False)``
restores statement-at-a-time translation (one plan run per bucket),
which ``benchmarks/bench_batch.py`` uses as the baseline.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from time import perf_counter
from typing import Iterable, Mapping, Sequence

from repro.core.incremental import incrementalize_plan
from repro.core.lvgn import is_lvgn
from repro.core.strategy import UpdateStrategy
from repro.core.validation import ValidationReport, validate
from repro.datalog.ast import Program
from repro.datalog.plan import ExecutionPlan, compile_program
from repro.errors import (ContradictionError, SchemaError, ValidationError,
                          ViewUpdateError)
from repro.rdbms.backends import Backend, create_backend
from repro.rdbms.dml import (Delete, Insert, Statement, Update,
                             derive_view_delta)
from repro.rdbms.metrics import MetricsRegistry
from repro.rdbms.wal import WriteAheadLog
from repro.relational.database import Database
from repro.relational.delta import Delta, DeltaSet
from repro.relational.schema import DatabaseSchema, RelationSchema

__all__ = ['Engine', 'Transaction', 'ViewEntry', 'PreparedCommit',
           'coalesce_buckets', 'unpack_commit']

#: Re-plan a view's compiled plans when a source relation's observed
#: cardinality drifts this far (either direction) from the stats the
#: plans were seeded with.
REPLAN_DRIFT_FACTOR = 10.0

#: How often the drift check actually samples the statistics provider:
#: on the first translation after (re)seeding, then every N-th.  A 10×
#: drift develops over many transactions, and sampling every flush
#: would put an O(#relations) count pass — cluster-wide, under the
#: sharded engine — on the per-transaction hot path.
REPLAN_CHECK_INTERVAL = 16


@dataclass
class ViewEntry:
    """Everything the engine knows about one updatable view.

    Plans are compiled exactly once, at :meth:`Engine.define_view` time,
    and reused verbatim for every subsequent ``insert``/``delete``/
    ``update``/``execute_many`` batch — the engine's analogue of the
    SQL triggers BIRDS installs ahead of time.  Backends may compile
    further (the SQLite backend lowers these plans to SQL in its
    ``register_view`` hook).
    """

    strategy: UpdateStrategy
    get_program: Program
    get_plan: ExecutionPlan
    incremental_program: Program | None
    incremental_plan: ExecutionPlan | None
    lvgn: bool
    use_incremental: bool
    source_names: tuple[str, ...]
    base_closure: frozenset  # base tables transitively underneath
    update_closure: frozenset  # relations the putback can write,
    #                            transitively through view sources
    # Cardinalities the current plans were seeded with, how many times
    # drift forced a recompilation, and how many drift probes have run
    # since the last (re)seed (see Engine._maybe_replan).
    stats_seed: Mapping[str, int] = field(default_factory=dict)
    replans: int = 0
    drift_probes: int = 0

    @property
    def name(self) -> str:
        return self.strategy.view.name

    @property
    def schema(self) -> RelationSchema:
        return self.strategy.view

    def plans(self) -> tuple[ExecutionPlan, ...]:
        """Every plan this view can run (for index pre-building)."""
        plans = [self.get_plan, self.strategy.putdelta_plan]
        if self.incremental_plan is not None:
            plans.append(self.incremental_plan)
        return tuple(plans)


@dataclass
class PreparedCommit:
    """The outcome of :meth:`Engine.prepare_commit`: the storage batch
    plus cache bookkeeping, with every failure mode already behind us.
    Applying it (:meth:`Engine.apply_prepared`) only writes."""

    batch: list          # (name, delta, is_cache) triples
    changed_bases: set
    keep: set            # touched views whose caches stay valid
    #: Opaque durable sidecar the transaction carries into its commit
    #: record (e.g. a peer link's receive watermark, made durable
    #: atomically with the delta it acknowledges).  Replay collects
    #: notes into ``Engine.replayed_notes`` without interpreting them.
    note: object = None

    def wal_record(self) -> tuple:
        """The frozen ``commit`` record payload for this batch — what
        the WAL appends, and what a process-shard coordinator keeps
        from the prepare phase so it can re-commit the transaction on a
        worker that died before its append (apply repair).  The payload
        stays the historical 3-tuple unless a note is attached, so logs
        written before notes existed replay unchanged."""
        frozen = [(name, Delta(frozenset(delta.insertions),
                               frozenset(delta.deletions)), is_cache)
                  for name, delta, is_cache in self.batch]
        record = (frozen, frozenset(self.changed_bases),
                  frozenset(self.keep))
        if self.note is not None:
            record += (self.note,)
        return record


def unpack_commit(data: tuple) -> tuple:
    """Normalise a ``commit`` record payload to
    ``(batch, changed_bases, keep, note)`` — accepts both the
    historical 3-tuple and the note-carrying 4-tuple."""
    if len(data) == 3:
        return data + (None,)
    batch, changed_bases, keep, note = data
    return batch, changed_bases, keep, note


class _StagedDelta:
    """The mutable per-relation accumulator behind ``_Working.deltas``.

    Composing N staged single-row deltas through the immutable
    :meth:`Delta.then` rebuilds the accumulated frozensets every time —
    O(N²) on a 100-statement transaction.  This accumulator applies the
    same composition in place and duck-types the read surface commit
    and the backends use (``insertions``/``deletions``/``is_empty``);
    it never escapes the transaction that created it."""

    __slots__ = ('insertions', 'deletions')

    def __init__(self, delta: Delta):
        self.insertions = set(delta.insertions)
        self.deletions = set(delta.deletions)

    def then_in_place(self, later: Delta) -> None:
        """In-place :meth:`Delta.then`: later statements win."""
        if later.deletions:
            self.insertions -= later.deletions
        if later.insertions:
            self.insertions |= later.insertions
            self.deletions -= later.insertions
        self.deletions |= later.deletions

    def is_empty(self) -> bool:
        return not self.insertions and not self.deletions


def coalesce_buckets(batches: Sequence[tuple[str, Sequence[Statement]]]
                     ) -> list[tuple[str, list[Statement]]]:
    """Merge *adjacent* statement buckets on the same target into one.

    Algorithm 2 folds a statement sequence into a single delta, and the
    fold is associative: two back-to-back buckets on the same target
    derive exactly the composition one concatenated bucket derives
    (each statement still sees the running state of everything before
    it).  Under the batched pipeline nothing observes the bucket
    boundary — translation and constraint checks are deferred to commit
    either way — so this is pure overhead removal: a transaction built
    as N single-statement buckets (the OLTP shape) pays one routing,
    derivation and staging pass instead of N.  Statement-at-a-time mode
    must NOT coalesce: there a bucket boundary *is* the translation
    boundary, and merging would change which intermediate states get
    constraint-checked."""
    out: list[tuple[str, list[Statement]]] = []
    for target, statements in batches:
        if out and out[-1][0] == target:
            out[-1][1].extend(statements)
        else:
            out.append((target, list(statements)))
    return out


class _Working:
    """Uncommitted transaction state: accumulated per-relation deltas, a
    lazy materialisation overlay for relations re-read after staging,
    and the per-view *pending* queue of staged-but-untranslated deltas
    the batched pipeline drains once per transaction.

    Each staged write is tagged with its *origins* (the top-level DML
    targets, or ``'<direct>'`` for base-table DML) so commit can decide
    which view caches remain consistent: a view maintained by origin O is
    stale when some base underneath it was also written by a different
    origin in the same transaction."""

    def __init__(self, engine: 'Engine'):
        self.engine = engine
        self.deltas: dict[str, _StagedDelta] = {}
        self.note: object = None
        self.touched_views: set[str] = set()
        self.base_origins: dict[str, set[str]] = {}
        self.view_origins: dict[str, set[str]] = {}
        self._materialized: dict[str, set] = {}
        # Batched translation state, per view with untranslated deltas:
        # the staged effective deltas in order, the origins that
        # contributed them, and the pre-delta view state the single
        # plan run reads as ``v``.
        self.pending: dict[str, list[Delta]] = {}
        self.pending_origins: dict[str, set[str]] = {}
        self.pending_state: dict[str, tuple] = {}

    def rows(self, name: str):
        """Current contents of ``name`` as seen inside the transaction.

        The overlay is built at most once per relation and then updated
        in place by :meth:`stage` (O(|Δ|) per statement, not O(|R|)).
        Treat the result as read-only; it may be live backend state or
        the transaction's mutable overlay."""
        overlay = self._materialized.get(name)
        if overlay is not None:
            return overlay
        baseline = self.engine.rows(name)
        delta = self.deltas.get(name)
        if delta is None or delta.is_empty():
            return baseline
        overlay = set(baseline)
        overlay -= delta.deletions
        overlay |= delta.insertions
        self._materialized[name] = overlay
        return overlay

    def relation_for_eval(self, name: str):
        """What evaluation should read for ``name``: the backend's
        stored relation when unstaged, else the staged rows."""
        delta = self.deltas.get(name)
        if (delta is None or delta.is_empty()) \
                and name not in self._materialized:
            return self.engine.eval_handle(name)
        return self.rows(name)

    def pre_state(self, name: str) -> tuple:
        """``(eval handle, row set)`` of ``name`` *before* any pending
        delta — what the batched plan run reads as the old view.  For
        an unstaged view this is the backend's live storage (no copy,
        stable until commit); once staged, a frozen copy is taken so
        later overlay updates cannot drift under the handle."""
        delta = self.deltas.get(name)
        if (delta is None or delta.is_empty()) \
                and name not in self._materialized:
            return (self.engine.eval_handle(name), self.engine.rows(name))
        frozen = frozenset(self.rows(name))
        return (frozen, frozen)

    def stage(self, name: str, delta: Delta, *, is_view: bool,
              origins: Iterable[str]) -> None:
        clash = delta.contradictions()
        if clash:
            raise ContradictionError(name, clash)
        prior = self.deltas.get(name)
        if prior is None:
            self.deltas[name] = _StagedDelta(delta)
        else:
            prior.then_in_place(delta)
        overlay = self._materialized.get(name)
        if overlay is not None:
            overlay -= delta.deletions
            overlay |= delta.insertions
        if is_view:
            self.touched_views.add(name)
            self.view_origins.setdefault(name, set()).update(origins)
        else:
            self.base_origins.setdefault(name, set()).update(origins)


class Engine:
    """Base tables + updatable views, with atomic cascading updates.

    ``backend`` selects the storage/execution substrate by name
    (``'memory'``/``'sqlite'``), accepts a prebuilt
    :class:`~repro.rdbms.backends.base.Backend` instance, or defaults
    to the ``REPRO_BACKEND`` environment variable.  The memory backend
    keeps persistent hash indexes on tables and view caches — the role
    PostgreSQL's B-tree indexes play in the paper's Figure 6 experiment;
    the SQLite backend maintains real SQL indexes instead.

    ``batch_deltas`` (default on) coalesces each view's staged deltas
    and runs its plan once per transaction; ``False`` restores
    statement-at-a-time translation — one plan run per statement
    bucket, with constraints checked against every intermediate state
    (immediate rather than deferred semantics).
    """

    def __init__(self, schema: DatabaseSchema,
                 backend: str | Backend | None = None, *,
                 batch_deltas: bool = True,
                 wal: 'str | WriteAheadLog | None' = None,
                 wal_sync: bool = True):
        self.schema = schema
        self.backend = create_backend(backend, schema)
        self.batch_deltas = batch_deltas
        self._views: dict[str, ViewEntry] = {}
        # Durability: with a WAL attached, every committed transaction
        # appends its PreparedCommit batch *before* storage is touched
        # (the append is the commit point), and opening an engine on an
        # existing log replays the committed prefix — see rdbms/wal.py.
        # ``_wal_defines`` keeps each view's resolved define_view record
        # payload so checkpoint() can re-emit the catalog.
        if wal is not None and not isinstance(wal, WriteAheadLog):
            wal = WriteAheadLog(wal, sync=wal_sync)
        self.wal = wal
        self._wal_replaying = False
        self._wal_defines: dict[str, tuple] = {}
        # Serialises the two catalog-mutating side paths that a
        # concurrent reader can race with a transaction on: lazy view
        # materialisation (two threads both missing the cache) and the
        # drift re-plan (two threads swapping a ViewEntry's plans and
        # ``replans``/``drift_probes`` counters).  The transaction
        # pipeline itself holds no engine-global mutable state — one
        # engine is driven by at most one transaction at a time, which
        # is what the parallel sharded engine's per-shard fan-out
        # guarantees.
        self._plan_lock = threading.RLock()
        #: Where planner statistics come from — both the seed at
        #: ``define_view`` time and the drift check/re-seed in
        #: :meth:`_maybe_replan`.  A coordinator embedding this engine
        #: (the sharded engine) overrides it with cluster-wide
        #: aggregated counts, so one shard's local sizes never drive a
        #: join order or a spurious re-plan.
        self.stats_provider = self._relation_stats
        #: Post-commit hooks: each callable receives the applied
        #: :class:`PreparedCommit` after storage is updated (never
        #: during WAL replay — recovery must not re-publish).  The peer
        #: network subscribes here to ship committed view deltas.
        self.commit_listeners: list = []
        #: Durable notes collected while replaying the WAL (from
        #: note-carrying commit records and standalone ``note``
        #: records, in log order).  Consumers that embedded state into
        #: the log — peer link watermarks — read it back here after
        #: construction.
        self.replayed_notes: list = []
        #: Extra snapshot-record providers for :meth:`checkpoint`: each
        #: callable yields ``(kind, data)`` pairs appended after the
        #: base/catalog records, so sidecar state embedded in commit
        #: records survives log compaction.
        self.checkpoint_extras: list = []
        #: Hot-path instrumentation (see rdbms/metrics.py): transaction
        #: phase timings, plan compiles/replans, WAL append latency.
        #: ``engine.metrics.enabled = False`` turns every hook into a
        #: single attribute check — the overhead is gated in CI by
        #: ``bench_all``'s instrumented-vs-disabled comparison.
        self.metrics = MetricsRegistry()
        if self.wal is not None:
            self.wal.metrics = self.metrics
        if self.wal is not None and self.wal.last_lsn:
            self._recover()

    def metrics_snapshot(self) -> dict:
        """This engine's metrics as a picklable dict, with the WAL's
        cumulative stats folded in as ``wal.*`` counters."""
        snap = self.metrics.snapshot()
        if self.wal is not None:
            counters = snap['counters']
            for key, value in self.wal.stats.items():
                if key == 'last_record_bytes':
                    snap['gauges']['wal.last_record_bytes'] = value
                else:
                    counters[f'wal.{key}'] = value
        return snap

    # -- durability (write-ahead log) --------------------------------------

    @property
    def commit_lsn(self) -> int:
        """The LSN of this engine's newest committed record (0 without
        a WAL) — what a read-your-writes session passes as ``min_lsn``."""
        return self.wal.last_lsn if self.wal is not None else 0

    def _recover(self) -> None:
        """Replay the WAL's committed prefix into a fresh backend.
        Torn-tail truncation already happened when the log was opened,
        so every record seen here is a committed transaction or catalog
        operation."""
        self._wal_replaying = True
        try:
            for record in self.wal.records():
                self.apply_wal_record(record.kind, record.data)
        finally:
            self._wal_replaying = False

    def apply_wal_record(self, kind: str, data) -> None:
        """Apply one log record to this engine's state.  Shared by
        primary recovery and :class:`~repro.rdbms.replica.ReplicaEngine`
        catch-up — the replication path never re-runs ∂put/get plans,
        it replays exactly the deltas the primary computed."""
        if kind == 'load':
            name, rows = data
            self.backend.load(name, set(rows))
            self._invalidate_dependents({name})
        elif kind == 'define_view':
            strategy, report, use_incremental, stats = data
            # Replaying a checkpoint a reader has already seen: the
            # catalog entry exists, nothing to do.
            if strategy.view.name in self._views:
                return
            self.define_view(strategy, report=report,
                             validate_first=False,
                             use_incremental=use_incremental,
                             stats=stats)
        elif kind == 'drop_view':
            self.drop_view(data)
        elif kind == 'commit':
            batch, changed_bases, keep, note = unpack_commit(data)
            self._apply_logged_commit(batch, changed_bases, keep)
            if note is not None:
                self.replayed_notes.append(note)
        elif kind == 'note':
            self.replayed_notes.append(data)
        elif kind == 'checkpoint':
            pass  # end-of-snapshot sentinel; replica rotation marker
        else:
            raise SchemaError(f'unknown WAL record kind {kind!r}')

    def _apply_logged_commit(self, batch, changed_bases, keep) -> None:
        """Apply one logged transaction: the base-table deltas always,
        each view-cache delta only where a cache is actually
        materialised locally.  Cache bookkeeping mirrors
        :meth:`apply_prepared`/:meth:`_invalidate_dependents`, with one
        extra conservative rule: a view the primary *kept* but shipped
        no cache delta for (it had no materialisation there) cannot be
        maintained here either — drop ours rather than serve stale
        rows."""
        shipped = {name for name, _, is_cache in batch if is_cache}
        apply = [(name, delta, is_cache)
                 for name, delta, is_cache in batch
                 if not is_cache or self.backend.has_cache(name)]
        if apply:
            self.backend.apply_deltas(apply)
        for view, entry in self._views.items():
            if view in keep and view in shipped:
                continue
            if view in keep or entry.base_closure & changed_bases:
                self.backend.drop_cache(view)

    def _wal_append(self, kind: str, data) -> None:
        if self.wal is not None and not self._wal_replaying:
            self.wal.append(kind, data)

    def commit_logged(self, data: tuple) -> int:
        """Commit a transaction from its frozen ``commit`` record (the
        :meth:`PreparedCommit.wal_record` shape): append it — the
        commit point — then apply it through the logged-commit path.
        This is the coordinator's **apply repair**: the worker that
        prepared the batch died before its append, so the restarted
        worker commits the record the coordinator kept.  Returns the
        record's LSN."""
        if self.wal is None:
            raise SchemaError('commit_logged requires a write-ahead log')
        batch, changed_bases, keep, _note = unpack_commit(data)
        lsn = self.wal.append('commit', data)
        self._apply_logged_commit(batch, changed_bases, keep)
        return lsn

    def checkpoint(self) -> int:
        """Compact the WAL to a snapshot of current committed state
        (``load`` records for every base table, ``define_view`` records
        for the catalog) so recovery and new replicas replay
        O(|DB| + |tail|) instead of the full history.  Returns the new
        last LSN."""
        if self.wal is None:
            raise SchemaError('engine has no write-ahead log')

        def snapshot_records():
            database = self.backend.snapshot()
            for name in database.names():
                yield ('load', (name, frozenset(database[name])))
            for name in self._views:        # definition order = replay
                if name in self._wal_defines:  # order (sources first)
                    yield ('define_view', self._wal_defines[name])
            # Sidecar state embedded in commit records (peer link
            # watermarks) would vanish with the compacted history;
            # registered providers re-emit it into the snapshot.
            for provider in self.checkpoint_extras:
                yield from provider()
        return self.wal.checkpoint(snapshot_records())

    # -- basic access ------------------------------------------------------

    def is_view(self, name: str) -> bool:
        return name in self._views

    def view(self, name: str) -> ViewEntry:
        try:
            return self._views[name]
        except KeyError:
            raise SchemaError(f'unknown view {name!r}') from None

    def relations(self) -> tuple[str, ...]:
        return self.schema.names() + tuple(self._views)

    def _ensure_view_cache(self, name: str) -> None:
        """Materialise view ``name`` (and, recursively, its view
        sources) into the backend's cache storage.  Double-checked
        under ``_plan_lock`` so a concurrent reader and an in-flight
        transaction build the cache exactly once."""
        if self.backend.has_cache(name):
            return
        with self._plan_lock:
            if self.backend.has_cache(name):
                return
            entry = self._views[name]
            self._maybe_replan(entry)
            sources = {s: self.eval_handle(s)
                       for s in entry.source_names}
            rows = self.backend.evaluate_get(entry, sources)
            self.backend.store_cache(name, rows)

    def eval_handle(self, name: str):
        """The backend's evaluation handle for a table or (materialised)
        view — what compiled plans read when the relation is unstaged."""
        if name in self._views:
            self._ensure_view_cache(name)
        elif name not in self.schema:
            raise SchemaError(f'unknown relation {name!r}')
        return self.backend.eval_handle(name)

    def rows(self, name: str, *, min_lsn: int | None = None):
        """Contents of a base table or (materialized) view.

        Treat the result as read-only; depending on the backend it is
        live storage state or a frozen copy.  ``min_lsn`` is the
        read-your-writes bound replica routing honors; on the primary
        every own commit is trivially visible, so it is accepted and
        ignored here (uniform read signature across Engine /
        ReplicaSet / ShardedEngine).
        """
        if name in self._views:
            self._ensure_view_cache(name)
        elif name not in self.schema:
            raise SchemaError(f'unknown relation {name!r}')
        return self.backend.rows(name)

    def database(self) -> Database:
        """A frozen snapshot of the base-table state."""
        return self.backend.snapshot()

    def load(self, name: str, rows: Iterable[tuple]) -> None:
        """Bulk-load a base table (replacing its contents)."""
        if name in self._views or name not in self.schema:
            raise SchemaError(f'{name!r} is not a base table')
        loaded = {tuple(r) for r in rows}
        for row in loaded:
            self.schema[name].validate_tuple(row)
        self._wal_append('load', (name, frozenset(loaded)))
        self.backend.load(name, loaded)
        self._invalidate_dependents({name})

    def close(self) -> None:
        """Release backend resources (connections, files)."""
        if self.wal is not None:
            self.wal.close()
        self.backend.close()

    def __enter__(self) -> 'Engine':
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # -- view definition ---------------------------------------------------------

    def define_view(self, strategy: UpdateStrategy, *,
                    report: ValidationReport | None = None,
                    validate_first: bool = True,
                    use_incremental: bool = True,
                    stats: Mapping[str, int] | None = None,
                    exist_ok: bool = False) -> ViewEntry:
        """Register an updatable view.

        The strategy must be valid; pass a precomputed ``report`` to skip
        re-validation, or ``validate_first=False`` to trust the caller
        (the expected_get is then required and used as the view
        definition).  ``stats`` overrides the observed cardinalities the
        planner seeds join orders with — the sharded engine passes
        cluster-wide aggregated counts here, since any one shard's local
        sizes under-estimate the relation.  ``exist_ok`` adopts an
        already-registered view of the same name instead of raising —
        the restart idiom for engines recovered from a WAL, whose
        replay re-registered the catalog before the caller's setup code
        runs again.
        """
        name = strategy.view.name
        if exist_ok and name in self._views:
            return self._views[name]
        if name in self.schema or name in self._views:
            raise SchemaError(f'relation {name!r} already exists')
        for source in strategy.updated_relations():
            if source not in self.schema and source not in self._views:
                raise SchemaError(
                    f'view {name!r} updates unknown relation {source!r}')
        if report is not None:
            report.raise_if_invalid()
            get_program = report.view_definition
        elif validate_first:
            report = validate(strategy)
            report.raise_if_invalid()
            get_program = report.view_definition
        else:
            get_program = strategy.expected_get
        if get_program is None:
            raise ValidationError(
                f'no certified view definition available for {name!r}')

        metrics = self.metrics
        compile_started = perf_counter() if metrics.enabled else 0.0
        source_names = tuple(sorted(
            set(strategy.sources.names()) & (set(self.schema.names()) |
                                             set(self._views))))
        lvgn = is_lvgn(strategy.putdelta, name)
        if stats is None:
            stats = self.stats_provider()
        incremental_program = None
        incremental_plan = None
        if use_incremental:
            try:
                incremental_program, incremental_plan = incrementalize_plan(
                    strategy.putdelta, name, lvgn=lvgn, stats=stats)
            except Exception:
                incremental_program = None  # fall back to full put
                incremental_plan = None
        closure: set[str] = set()
        for source in source_names:
            if source in self._views:
                closure |= self._views[source].base_closure
            else:
                closure.add(source)
        update_closure: set[str] = set()
        for updated in strategy.updated_relations():
            update_closure.add(updated)
            if updated in self._views:
                update_closure |= self._views[updated].update_closure
        entry = ViewEntry(strategy=strategy, get_program=get_program,
                          get_plan=compile_program(get_program,
                                                   stats=stats),
                          incremental_program=incremental_program,
                          incremental_plan=incremental_plan,
                          lvgn=lvgn,
                          use_incremental=use_incremental and
                          incremental_plan is not None,
                          source_names=source_names,
                          base_closure=frozenset(closure),
                          update_closure=frozenset(update_closure),
                          stats_seed=dict(stats))
        self._views[name] = entry
        try:
            self.backend.register_view(entry)
            self._register_index_hints(entry)
        except BaseException:
            # Exception safety: a backend that fails to compile or
            # index the view must not leave it half-registered.
            self._views.pop(name, None)
            raise
        # Log the *resolved* definition (certified report, chosen
        # incremental mode, the stats the plans were seeded with) so
        # recovery and replicas skip re-validation and re-derivation.
        record = (strategy, report, entry.use_incremental, dict(stats))
        self._wal_defines[name] = record
        self._wal_append('define_view', record)
        if metrics.enabled:
            metrics.counter('plan.compiles')
            metrics.observe('plan.compile_seconds',
                            perf_counter() - compile_started)
        return entry

    def drop_view(self, name: str) -> None:
        """Remove a view from the catalog (and drop its cache).  A
        no-op for unknown names, so coordinators can use it to roll
        back a partially propagated ``define_view``.  Refuses when
        another view still reads ``name`` as a source — dropping it
        would leave the catalog with dangling references.  Backend
        residue of the registration (index hints, compiled SQL) is not
        undone; it is correctness-neutral and overwritten if the name
        is redefined."""
        for other, entry in self._views.items():
            if other == name:
                continue
            if name in entry.source_names \
                    or name in entry.update_closure:
                raise SchemaError(
                    f'cannot drop view {name!r}: view {other!r} reads '
                    f'or updates it')
        if self._views.pop(name, None) is not None:
            self.backend.drop_cache(name)
            self._wal_defines.pop(name, None)
            self._wal_append('drop_view', name)

    def _relation_stats(self) -> dict[str, int]:
        """Observed cardinalities the planner seeds its join order with:
        current base-table sizes plus any already-materialised view."""
        stats = {name: self.backend.count(name)
                 for name in self.schema.names()}
        for view in self._views:
            if self.backend.has_cache(view):
                stats[view] = self.backend.count(view)
        return stats

    def _maybe_replan(self, entry: ViewEntry) -> None:
        """Re-seed the view's compiled plans when a source relation's
        size has drifted >10× from the cardinalities they were planned
        with (the ROADMAP's "plan-level statistics" open item).

        Memory backend only: its join orders are fixed at compile time,
        whereas the SQLite backend already delegates planning to
        SQLite's own optimizer at every execution.  Plans are immutable
        and the compile is memoized, so re-planning is just swapping the
        entry's plan references — in-flight evaluations are unaffected.
        """
        if self.backend.kind != 'memory':
            return
        with self._plan_lock:
            entry.drift_probes += 1
            if (entry.drift_probes - 1) % REPLAN_CHECK_INTERVAL:
                return
            factor = REPLAN_DRIFT_FACTOR
            stats = None
            drifted = False
            for rel in entry.source_names:
                if rel in self._views and not self.backend.has_cache(rel):
                    continue
                if stats is None:
                    stats = self.stats_provider()
                if rel not in stats:
                    continue
                seeded = max(entry.stats_seed.get(rel, 0), 1)
                current = max(stats[rel], 1)
                if current >= factor * seeded \
                        or seeded >= factor * current:
                    drifted = True
                    break
            if not drifted:
                return
            entry.get_plan = compile_program(entry.get_program,
                                             stats=stats)
            if entry.use_incremental:
                try:
                    entry.incremental_program, entry.incremental_plan = \
                        incrementalize_plan(entry.strategy.putdelta,
                                            entry.name, lvgn=entry.lvgn,
                                            stats=stats)
                except Exception:
                    pass  # keep the old incremental plan
            entry.stats_seed = dict(stats)
            entry.replans += 1
            entry.drift_probes = 0
            self.metrics.counter('plan.replans')
            self._register_index_hints(entry)

    def _register_index_hints(self, entry: ViewEntry) -> None:
        """Pre-build the persistent access structures the view's
        compiled plans declare, the way a live RDBMS creates its B-trees
        at ``CREATE VIEW`` time rather than during the first update."""
        for plan in entry.plans():
            for pred, positions in plan.index_requirements:
                if pred not in self.schema and pred not in self._views:
                    continue  # delta inputs / auxiliary IDB predicates
                self.backend.add_index_hint(pred, positions)

    # -- DML -------------------------------------------------------------------

    def insert(self, target: str, values: tuple) -> None:
        self.execute(target, [Insert(tuple(values))])

    def delete(self, target: str, where=None) -> None:
        self.execute(target, [Delete(where)])

    def update(self, target: str, assignments: Mapping[str, object],
               where=None) -> None:
        self.execute(target, [Update(assignments, where)])

    def transaction(self) -> 'Transaction':
        return Transaction(self)

    def execute(self, target: str, statements: Sequence[Statement]) -> None:
        """Run a statement sequence against one relation, atomically."""
        working = self.begin()
        self.apply_statements(working, target, statements)
        self._commit(working)

    def execute_many(self, batches: Sequence[tuple[str,
                                                   Sequence[Statement]]],
                     *, note: object = None) -> None:
        """One transaction spanning several targets (BEGIN ... END).

        ``note`` attaches an opaque durable sidecar to the
        transaction's commit record (see :class:`PreparedCommit.note`)
        — it becomes durable atomically with the deltas."""
        working = self.begin()
        working.note = note
        if self.batch_deltas:
            batches = coalesce_buckets(batches)
        for target, statements in batches:
            self.apply_statements(working, target, statements)
        self._commit(working)

    # -- the reusable transaction pipeline ---------------------------------
    #
    # A transaction is: ``begin()`` → ``apply_statements(...)`` per
    # statement bucket → ``prepare_commit()`` (everything that can
    # raise: pending translations, constraint checks, schema
    # validation) → ``apply_prepared()`` (pure storage writes).  The
    # sharded engine drives several engines through these pieces in
    # lock-step — prepare on every touched shard first, apply only once
    # all shards prepared — which is what makes a multi-shard abort
    # leave every shard untouched.

    def begin(self) -> _Working:
        """Open uncommitted transaction state (one per transaction)."""
        return _Working(self)

    def flush_reads(self, working: _Working, target: str) -> None:
        """Make ``target`` consistent for an out-of-band read inside
        the transaction: drain any pending view translation that could
        still write it (see :meth:`_flush_for_read`).  External
        coordinators (the sharded engine's cross-shard derivations)
        call this before reading ``working`` state directly."""
        self._flush_for_read(working, target)

    def apply_statements(self, working: _Working, target: str,
                         statements: Sequence[Statement]) -> None:
        """Run one statement bucket against ``working`` (derive and
        stage deltas; no storage is touched until commit)."""
        metrics = self.metrics
        if not metrics.enabled:
            return self._apply_statements(working, target, statements)
        started = perf_counter()
        try:
            return self._apply_statements(working, target, statements)
        finally:
            metrics.observe('txn.apply_seconds',
                            perf_counter() - started)

    def _apply_statements(self, working: _Working, target: str,
                          statements: Sequence[Statement]) -> None:
        if target not in self._views and target not in self.schema:
            raise SchemaError(f'unknown relation {target!r}')
        if not statements:
            return
        # Statement-order visibility: before this bucket reads
        # ``target``, translate any pending view delta that could still
        # write it (a no-op for the common same-view statement runs).
        self._flush_for_read(working, target)
        if target in self._views:
            entry = self._views[target]
            delta = derive_view_delta(statements, working.rows(target),
                                      entry.schema)
            if delta.is_empty():
                return
            self._defer_view_delta(working, target, delta,
                                   origins=(target,))
            return
        schema = self.schema[target]
        delta = derive_view_delta(statements, working.rows(target), schema)
        working.stage(target, delta, is_view=False, origins=('<direct>',))

    def _defer_view_delta(self, working: _Working, name: str,
                          delta: Delta, origins: Iterable[str]) -> None:
        """Stage a view delta (visible to later statements immediately)
        and queue it for the once-per-transaction batched translation;
        in statement-at-a-time mode the translation runs right away."""
        effective = delta.effective_on(working.rows(name))
        if effective.is_empty():
            return
        if name not in working.pending:
            working.pending[name] = []
            working.pending_origins[name] = set()
            working.pending_state[name] = working.pre_state(name)
        working.pending[name].append(effective)
        working.pending_origins[name].update(origins)
        working.stage(name, effective, is_view=True, origins=origins)
        if not self.batch_deltas:
            self._flush_view(working, name)

    def _flush_for_read(self, working: _Working, target: str) -> None:
        """Conflict gate for statement-order visibility: a bucket on
        ``target`` both reads and writes it, so if any pending view
        could still *write* ``target`` (the bucket must see that write)
        or *reads* it as a source (the pending plan run must not see
        the bucket's write), drain the pending queue first — exactly
        the state statement-at-a-time translation would be in."""
        for name in working.pending:
            entry = self._views[name]
            if target in entry.update_closure \
                    or target in entry.source_names:
                self._flush_pending(working)
                return

    def _flush_pending(self, working: _Working) -> None:
        """Drain the pending queue, one plan run per view, in
        first-staged (bucket) order — the order statement-at-a-time
        translation runs in; each flush recurses depth-first into its
        cascades.  The update graph is acyclic (strategies only update
        already-defined relations), so the drain terminates."""
        while working.pending:
            self._flush_view(working, next(iter(working.pending)))

    def _flush_view(self, working: _Working, name: str) -> None:
        """The trigger pipeline for one view, run once over the
        composition of its staged deltas: check the ⊥-constraints on
        the net updated view, evaluate ∂put (or the full putback) over
        the merged effective delta, and stage — or queue, for source
        views — the resulting ΔS."""
        staged = working.pending.pop(name, None)
        if not staged:
            return
        view_handle, pre_rows = working.pending_state.pop(name)
        origins = working.pending_origins.pop(name)
        entry = self._views[name]
        self._maybe_replan(entry)
        merged = Delta.compose(staged)
        # Re-projecting onto the pre-delta state drops write-then-undo
        # artifacts of the composition (a row deleted and re-inserted
        # contributes nothing net).
        effective = merged.effective_on(pre_rows)
        if effective.is_empty():
            return
        sources = {s: working.relation_for_eval(s)
                   for s in entry.source_names}

        metrics = self.metrics
        flush_started = perf_counter() if metrics.enabled else 0.0
        if entry.use_incremental:
            new_rows = None
            if entry.strategy.constraints() \
                    and not entry.incremental_plan.constraint_plans:
                # General-path ∂put has no constraint rules: the
                # backend runs the full check in the same batch pass.
                new_rows = working.rows(name)
            deltas = self.backend.evaluate_incremental_batch(
                entry, sources, view_handle, effective,
                new_view_rows=new_rows)
        else:
            deltas = self.backend.evaluate_putback(
                entry, sources, working.rows(name),
                check_constraints=True)
        if metrics.enabled:
            metrics.counter('txn.plan_runs')
            metrics.observe('txn.flush_seconds',
                            perf_counter() - flush_started)

        for relation in sorted(deltas.relations()):
            rel_delta = deltas[relation].effective_on(
                working.rows(relation))
            if rel_delta.is_empty():
                continue
            if relation in self._views:
                # Cascades translate depth-first, exactly as
                # statement-at-a-time recursion does — only *bucket*
                # deltas are coalesced across the transaction.  (In
                # statement-at-a-time mode the defer flushes itself.)
                self._defer_view_delta(working, relation, rel_delta,
                                       origins=origins)
                if self.batch_deltas:
                    self._flush_view(working, relation)
            elif relation in self.schema:
                working.stage(relation, rel_delta, is_view=False,
                              origins=origins)
            else:
                raise ViewUpdateError(
                    f'strategy for {name!r} updates unknown relation '
                    f'{relation!r}')

    def prepare_commit(self, working: _Working) -> 'PreparedCommit':
        """Everything commit does that can *fail*: drain the pending
        view translations (plan runs, ⊥-constraint checks) and validate
        every inserted base row — with storage still untouched.  The
        returned :class:`PreparedCommit` is then applied with
        :meth:`apply_prepared`; abandoning it aborts the transaction
        with no cleanup needed."""
        metrics = self.metrics
        if not metrics.enabled:
            return self._prepare_commit(working)
        started = perf_counter()
        try:
            return self._prepare_commit(working)
        finally:
            metrics.observe('txn.prepare_seconds',
                            perf_counter() - started)

    def _prepare_commit(self, working: _Working) -> 'PreparedCommit':
        self._flush_pending(working)
        # Validate every inserted base row before touching storage, so a
        # schema error cannot leave a half-applied transaction behind.
        for name, delta in working.deltas.items():
            if name not in self._views:
                for row in delta.insertions:
                    self.schema[name].validate_tuple(row)
        changed_bases: set[str] = set()
        batch: list[tuple[str, Delta, bool]] = []
        for name, delta in working.deltas.items():
            if delta.is_empty():
                continue
            if name in self._views:
                if self.backend.has_cache(name):
                    batch.append((name, delta, True))
            else:
                batch.append((name, delta, False))
                changed_bases.add(name)
        # A touched view's cache stays valid only when every write under
        # it came from its own update pipeline(s).
        keep: set[str] = set()
        for view in working.touched_views:
            entry = self._views[view]
            own = working.view_origins.get(view, set())
            foreign = set()
            for base in entry.base_closure & changed_bases:
                foreign |= working.base_origins.get(base, set()) - own
            if not foreign:
                keep.add(view)
        return PreparedCommit(batch=batch, changed_bases=changed_bases,
                              keep=keep, note=working.note)

    def apply_prepared(self, prepared: 'PreparedCommit') -> None:
        """Apply a prepared transaction: one backend delta batch plus
        cache invalidation bookkeeping.  Nothing here re-checks
        constraints or schemas — that all happened in
        :meth:`prepare_commit`.

        With a WAL attached the transaction's coalesced deltas are
        appended first — the append is the commit point; a crash after
        it replays the transaction, a crash before it aborts cleanly
        (committed-prefix semantics)."""
        metrics = self.metrics
        started = perf_counter() if metrics.enabled else 0.0
        if prepared.batch:
            if self.wal is not None and not self._wal_replaying:
                self.wal.append('commit', prepared.wal_record())
            self.backend.apply_deltas(prepared.batch)
        self._invalidate_dependents(prepared.changed_bases,
                                    keep=prepared.keep)
        if metrics.enabled:
            metrics.counter('txn.commits')
            metrics.observe('txn.commit_seconds',
                            perf_counter() - started)
        # Post-commit hooks (peer delta publication).  Never during
        # replay: recovery rebuilds state, it must not re-publish — the
        # peer layer reconciles missed publications from its own outbox
        # instead.
        if prepared.batch and not self._wal_replaying:
            for listener in self.commit_listeners:
                listener(prepared)

    def _commit(self, working: _Working) -> None:
        self.apply_prepared(self.prepare_commit(working))

    def _invalidate_dependents(self, changed_bases: set[str],
                               keep: set[str] = frozenset()) -> None:
        if not changed_bases:
            return
        for view, entry in self._views.items():
            if view in keep:
                continue
            if entry.base_closure & changed_bases:
                self.backend.drop_cache(view)


class Transaction:
    """Context manager batching statements into one atomic execution::

        with engine.transaction() as txn:
            txn.insert('v', (1, 'a'))
            txn.delete('v', where={'a': 2})
    """

    def __init__(self, engine: Engine):
        self.engine = engine
        self.batches: list[tuple[str, list[Statement]]] = []

    def _bucket(self, target: str) -> list[Statement]:
        if self.batches and self.batches[-1][0] == target:
            return self.batches[-1][1]
        bucket: list[Statement] = []
        self.batches.append((target, bucket))
        return bucket

    def insert(self, target: str, values: tuple) -> None:
        self._bucket(target).append(Insert(tuple(values)))

    def delete(self, target: str, where=None) -> None:
        self._bucket(target).append(Delete(where))

    def update(self, target: str, assignments, where=None) -> None:
        self._bucket(target).append(Update(assignments, where))

    def __enter__(self) -> 'Transaction':
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is None and self.batches:
            self.engine.execute_many(self.batches)
        return False
