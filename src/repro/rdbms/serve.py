"""An asyncio serving front-end with admission control and group commit.

The engines are synchronous and single-transaction (one transaction
drives an engine at a time — the invariant the sharded fan-out is built
on), so a many-client deployment needs a front door that (a) bounds how
much work is admitted at once and (b) keeps the engine's transaction
pipeline busy with *batches* instead of per-client round trips.
:class:`ViewServer` is that front door:

* **Sessions** — any number of asyncio tasks call
  :meth:`ViewServer.submit` concurrently; each call is one transaction
  (a list of ``(target, statements)`` buckets, exactly
  ``execute_many``'s shape).

* **Admission control** — a semaphore caps the in-flight window
  (``max_inflight``); submissions beyond it queue *outside* the server
  until a slot frees, so a burst cannot pile unbounded work onto the
  commit queue.

* **Group commit** — one committer task drains whatever submissions
  have accumulated while the previous batch ran (up to ``max_group``)
  and runs them as a *single* ``execute_many`` transaction: the PR 3/5
  bucket-coalescing machinery then batches the per-view deltas across
  clients, turning N small putback runs into one.  Natural batching —
  no timer: under light load a submission commits alone immediately;
  under heavy load groups grow on their own because more submissions
  accumulate per engine run.

**Semantics.**  A group is one engine transaction: its members commit
atomically together and constraint checks see the group's *net* effect,
exactly as if one client had submitted the concatenated buckets.  When
a grouped run fails (any :class:`~repro.errors.ReproError` — a ⊥
violation, a failed translation, a dead shard), the group's members are
**retried individually** in submission order, so one aborting client
never poisons its peers: every client observes the same outcome its
transaction would have had alone, except that independently-valid
transactions may commit in one storage batch.  (A transaction that is
only valid *because* of a peer's presence in the group — e.g. its
constraint violation is repaired by the peer's delta — will commit in
the grouped run; this is the documented group-commit semantics, the
same trade classical WAL group commit makes.)

The engine runs on a dedicated single-thread executor: transactions
stay strictly serial (the engine's contract) while the event loop keeps
accepting sessions — and with a process-backed
:class:`~repro.rdbms.sharded.ShardedEngine` underneath, that one
committer thread fans each batch out across every worker core.
"""

from __future__ import annotations

import asyncio
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from time import perf_counter
from typing import Sequence

from repro.errors import SchemaError, ShardUnavailableError
from repro.rdbms.dml import Statement
from repro.rdbms.metrics import MetricsRegistry, merge_snapshots

__all__ = ['Receipt', 'ViewServer']

_STOP = object()


@dataclass(frozen=True)
class Receipt:
    """What a committed submission resolves to."""

    #: how many client transactions the committing engine run carried
    group_size: int
    #: True when the submission's group failed and this transaction
    #: (re)committed alone in the individual-retry pass
    retried: bool = False
    #: the engine's commit point after this transaction applied — an
    #: int (Engine) or per-shard tuple (ShardedEngine); pass it back to
    #: :meth:`ViewServer.rows` as ``min_lsn`` to read your own write
    #: through the replicas.  0 when the engine has no WAL.
    lsn: object = 0


class ViewServer:
    """Serve concurrent client transactions over one (sharded) engine.

    Usage::

        async with ViewServer(engine, max_inflight=64) as server:
            receipt = await server.submit([('v', [Insert(row)])])

    ``group_commit=False`` degrades to one engine run per submission
    (the baseline ``bench_serve.py`` measures group commit against).

    **Reads.**  :meth:`rows` serves ``get`` without ever queueing
    behind the committer: reads run on their own executor
    (``read_threads``), routed through ``replicas`` (a
    :class:`~repro.rdbms.replica.ReplicaSet` in front of a single
    engine) when given — a sharded engine built with
    ``read_replicas=N`` routes internally instead.  A client holding a
    :attr:`Receipt.lsn` passes it as ``min_lsn`` for read-your-writes.
    """

    def __init__(self, engine, *, max_inflight: int = 64,
                 group_commit: bool = True, max_group: int = 32,
                 replicas=None, read_threads: int = 1):
        if max_inflight < 1:
            raise SchemaError(f'max_inflight must be >= 1, '
                              f'got {max_inflight}')
        if max_group < 1:
            raise SchemaError(f'max_group must be >= 1, got {max_group}')
        if read_threads < 1:
            raise SchemaError(f'read_threads must be >= 1, '
                              f'got {read_threads}')
        self.engine = engine
        self.max_inflight = max_inflight
        self.group_commit = group_commit
        self.max_group = max_group
        self.replicas = replicas
        self.read_threads = read_threads
        self._admission: asyncio.Semaphore | None = None
        self._queue: asyncio.Queue | None = None
        self._committer: asyncio.Task | None = None
        # Drain-then-close bookkeeping: how many submissions passed the
        # closed check and have not resolved yet, and the event stop()
        # awaits before telling the committer to exit.  Counted
        # synchronously (no await between check and increment), so a
        # submission suspended on the admission semaphore is still
        # visible to stop() — previously such a straggler could enqueue
        # *after* the stop sentinel and its future would hang forever.
        self._pending = 0
        self._drained: asyncio.Event | None = None
        self._executor: ThreadPoolExecutor | None = None
        self._read_executor: ThreadPoolExecutor | None = None
        self._closed = True
        #: counters: submissions seen / committed / failed, engine runs,
        #: runs carrying >1 txn, largest group, individually retried,
        #: reads served, failures caused by an unavailable shard (the
        #: ops signal that the cluster — not the workload — is sick)
        self.stats = {'submitted': 0, 'committed': 0, 'failed': 0,
                      'groups': 0, 'grouped': 0, 'max_group': 0,
                      'retried': 0, 'reads': 0, 'shard_failures': 0}
        #: histograms the plain counters can't carry: the group-size
        #: distribution (``serve.group_size``) and each grouped engine
        #: run's latency (``serve.group_seconds``) — merged with the
        #: engine's own snapshot by :meth:`metrics`.
        self._metrics = MetricsRegistry()

    def metrics(self) -> dict:
        """One merged snapshot: this server's counters (the ``stats``
        dict as ``serve.*``), its group-size/latency histograms, and
        the underlying engine's metrics — ``ShardedEngine.metrics()``
        when serving a cluster (worker counters included), the plain
        engine's snapshot otherwise."""
        served = {'counters': {f'serve.{key}': value
                               for key, value in self.stats.items()
                               if key != 'max_group'},
                  'gauges': {'serve.max_group':
                             float(self.stats['max_group'])},
                  'histograms': {}}
        snapshots = [self._metrics.snapshot(), served]
        engine_metrics = getattr(self.engine, 'metrics', None)
        if callable(engine_metrics):
            snapshots.append(engine_metrics())
        elif hasattr(self.engine, 'metrics_snapshot'):
            snapshots.append(self.engine.metrics_snapshot())
        if self.replicas is not None and \
                hasattr(self.replicas, 'metrics_snapshot'):
            snapshots.append(self.replicas.metrics_snapshot())
        return merge_snapshots(snapshots)

    # -- lifecycle ----------------------------------------------------

    async def start(self) -> 'ViewServer':
        if self._committer is not None:
            raise SchemaError('server already started')
        self._admission = asyncio.Semaphore(self.max_inflight)
        self._queue = asyncio.Queue()
        self._executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix='repro-serve')
        self._read_executor = ThreadPoolExecutor(
            max_workers=self.read_threads,
            thread_name_prefix='repro-serve-read')
        self._closed = False
        self._pending = 0
        self._drained = asyncio.Event()
        self._drained.set()
        self._committer = asyncio.get_running_loop().create_task(
            self._commit_loop())
        return self

    async def stop(self) -> None:
        """Graceful drain-then-close: new submissions are refused with
        a clean error the moment stop begins, every submission already
        admitted — including those still suspended on the admission
        semaphore — runs to its own outcome (commit or its own
        failure), and only then is the committer torn down.  A client
        awaiting :meth:`submit` therefore never hangs across a stop.
        Idempotent."""
        if self._committer is None:
            return
        self._closed = True
        # The committer keeps serving while admitted submissions drain:
        # semaphore slots free as outcomes resolve, stragglers enqueue
        # and get served, and the sentinel goes in only once no
        # submission can still be on its way to the queue.
        await self._drained.wait()
        if self._committer is None:     # a concurrent stop() finished
            return
        await self._queue.put(_STOP)
        await self._committer
        self._committer = None
        self._executor.shutdown(wait=True)
        self._executor = None
        self._read_executor.shutdown(wait=True)
        self._read_executor = None

    async def __aenter__(self) -> 'ViewServer':
        return await self.start()

    async def __aexit__(self, exc_type, exc, tb) -> None:
        await self.stop()

    # -- the client surface -------------------------------------------

    async def submit(self, buckets: Sequence[tuple[str,
                                                   Sequence[Statement]]]
                     ) -> Receipt:
        """One transaction: commit ``buckets`` atomically (possibly
        batched with concurrent submissions) and return its
        :class:`Receipt`, or raise the error *this* transaction's
        buckets produce."""
        if self._closed or self._queue is None:
            raise SchemaError('server is not running')
        buckets = [(target, list(statements))
                   for target, statements in buckets]
        self.stats['submitted'] += 1
        # Admission accounting happens before any suspension point
        # (asyncio is single-threaded: nothing runs between the closed
        # check above and this increment), so stop() sees every
        # submission that got past the check and drains it.
        self._pending += 1
        self._drained.clear()
        try:
            future = asyncio.get_running_loop().create_future()
            # The admission slot frees only once the outcome is known —
            # "in flight" means queued *or* running.
            async with self._admission:
                await self._queue.put((buckets, future))
                return await future
        finally:
            self._pending -= 1
            if self._pending == 0:
                self._drained.set()

    async def rows(self, name: str, *, min_lsn=None) -> frozenset:
        """Serve one ``get``: the contents of a table or view, routed
        through the read replicas when attached.  Runs on the read
        executor — reads never wait for the committer thread.
        ``min_lsn`` (a :attr:`Receipt.lsn`) bounds staleness to
        read-your-writes."""
        if self._closed or self._read_executor is None:
            raise SchemaError('server is not running')
        loop = asyncio.get_running_loop()
        if self.replicas is not None:
            read = lambda: self.replicas.read(name, min_lsn=min_lsn)  # noqa: E731
        else:
            read = lambda: self.engine.rows(name, min_lsn=min_lsn)    # noqa: E731
        result = await loop.run_in_executor(self._read_executor,
                                            lambda: frozenset(read()))
        self.stats['reads'] += 1
        return result

    def _commit_lsn(self):
        """The engine's current commit point — an int, a per-shard
        tuple, or 0 for engines without a WAL."""
        return getattr(self.engine, 'commit_lsn', 0)

    # -- the committer ------------------------------------------------

    async def _commit_loop(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            item = await self._queue.get()
            if item is _STOP:
                return
            group = [item]
            while self.group_commit and len(group) < self.max_group:
                try:
                    nxt = self._queue.get_nowait()
                except asyncio.QueueEmpty:
                    break
                if nxt is _STOP:
                    # FIFO: the sentinel is behind every submission, so
                    # the current group is the tail — serve it, then
                    # stop.
                    await self._run_group(loop, group)
                    return
                group.append(nxt)
            await self._run_group(loop, group)

    async def _run_group(self, loop, group) -> None:
        merged = [bucket for buckets, _ in group for bucket in buckets]
        self.stats['groups'] += 1
        self.stats['max_group'] = max(self.stats['max_group'],
                                      len(group))
        if len(group) > 1:
            self.stats['grouped'] += len(group)
        metrics = self._metrics
        timed = metrics.enabled
        if timed:
            metrics.observe('serve.group_size', float(len(group)))
            started = perf_counter()
        try:
            await loop.run_in_executor(self._executor,
                                       self.engine.execute_many, merged)
            if timed:
                metrics.observe('serve.group_seconds',
                                perf_counter() - started)
        except Exception as error:
            if len(group) == 1:
                self._resolve(group[0][1], error=error)
                return
            # Abort isolation: the grouped run failed, so re-run each
            # member alone — every client gets the outcome its own
            # transaction deserves.
            for buckets, future in group:
                try:
                    await loop.run_in_executor(
                        self._executor, self.engine.execute_many,
                        buckets)
                except Exception as member_error:
                    self._resolve(future, error=member_error)
                else:
                    self.stats['retried'] += 1
                    self._resolve(future,
                                  receipt=Receipt(group_size=len(group),
                                                  retried=True,
                                                  lsn=self._commit_lsn()))
            return
        # The post-group commit point is a safe read-your-writes bound
        # for every member: the group was one engine transaction.
        lsn = self._commit_lsn()
        for _, future in group:
            self._resolve(future, receipt=Receipt(group_size=len(group),
                                                  lsn=lsn))

    def _resolve(self, future, *, receipt: Receipt | None = None,
                 error: Exception | None = None) -> None:
        if future.done():        # the client gave up (cancelled)
            return
        if error is not None:
            self.stats['failed'] += 1
            if isinstance(error, ShardUnavailableError):
                self.stats['shard_failures'] += 1
            future.set_exception(error)
        else:
            self.stats['committed'] += 1
            future.set_result(receipt)
