"""The SQLite backend: tables in SQLite, compiled plans run as SQL.

This is the reproduction's analogue of how BIRDS actually deploys (the
paper's strategies run *inside PostgreSQL* as generated triggers): base
tables and materialised view caches live as SQLite tables, and the
nonrecursive plans a view needs — the ``get`` definition, the
incrementalized putback ``∂put``, the full putback, and every
⊥-constraint — are lowered to SQL text **once**, at ``define_view``
time, then executed on every subsequent update.  The compile-once
discipline of the plan layer carries over unchanged: ``register_view``
is the ``CREATE TRIGGER``, statement execution is pure ``SELECT``.

Execution model
---------------

Compiled queries reference relations by their unqualified names.  At
evaluation time, every input the engine's transaction has *staged*
(view deltas ``+v``/``-v``, overlay states of already-written
relations) is loaded into a ``TEMP`` table of the same name — SQLite
resolves unqualified names against the ``temp`` schema first, so staged
state transparently shadows the stored tables, exactly like the
evaluator's EDB-shadowing semantics.  Unstaged relations are read in
place; in the steady state an incremental update therefore stages only
the O(|ΔV|) delta rows.

Programs the SQL lowering cannot express (an unbound builtin operand,
an operator outside the translatable fragment) fall back, per program,
to the shared interpreted execution of :class:`~repro.rdbms.backends.
base.Backend` — rows are pulled out of SQLite and the compiled
:class:`ExecutionPlan` runs in process.
"""

from __future__ import annotations

import functools
import itertools
import os
import sqlite3
import threading
from collections import OrderedDict
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterable, Mapping

from repro.datalog.ast import Program, Rule, delete_pred, insert_pred
from repro.datalog.pretty import pretty_rule
from repro.errors import ConstraintViolation, ReproError, SchemaError
from repro.rdbms.backends.base import Backend, StoredRelation
from repro.relational.database import Database
from repro.relational.delta import Delta, DeltaSet
from repro.relational.schema import DatabaseSchema
from repro.sql.translate import (SQLITE, ColumnNamer, constraint_to_sql,
                                 query_to_sql, sql_ident)

__all__ = ['SQLiteBackend']


@dataclass
class _ProgramSQL:
    """One Datalog program lowered to per-goal SQL, plus everything
    needed to stage its inputs (computed once, at compile time)."""

    delta_sql: tuple[tuple[str, str], ...]        # (goal, sql)
    constraint_sql: tuple[tuple[Rule, str], ...]  # (⊥-rule, witness sql)
    edb: frozenset                                # input relation names
    columns: dict                                 # edb name -> column tuple


@dataclass
class _CompiledView:
    """The compile-once SQL artifact bundle for one registered view."""

    get: _ProgramSQL | None = None
    incremental: _ProgramSQL | None = None
    putback: _ProgramSQL | None = None
    fallbacks: list = field(default_factory=list)  # programs that didn't lower


def _quoted(columns: Iterable[str]) -> str:
    return ', '.join(f'"{c}"' for c in columns)


#: Distinguishes the shared-cache in-memory databases of concurrently
#: living backends (the URI *names* the database process-wide).
_MEMDB_IDS = itertools.count()


def _locked(method):
    """Serialise a backend method on the instance mutex.  One SQLite
    backend is one shard's storage: cross-shard parallelism runs on
    distinct backends, while within a backend the mutex keeps leased
    connections from tripping over shared-cache table locks (and keeps
    the Python-side row cache consistent)."""
    @functools.wraps(method)
    def wrapper(self, *args, **kwargs):
        with self._mutex:
            return method(self, *args, **kwargs)
    return wrapper


class SQLiteBackend(Backend):
    """Relational storage + SQL plan execution on a SQLite database.

    Thread model: SQLite connections are thread-affine, so the backend
    *leases* one connection per calling thread (created lazily on first
    use, closed by :meth:`release_thread`/:meth:`close`).  In-memory
    databases use a named shared-cache URI so every lease sees the same
    data; the constructing thread's connection is kept open for the
    backend's lifetime to anchor the database.  TEMP staging shadows
    are per-connection, hence naturally per-thread.  All access is
    serialised on a per-backend mutex — concurrency comes from the
    sharded engine running *distinct* backends in parallel."""

    kind = 'sqlite'

    #: how many relations' row images the Python-side read cache holds
    ROWS_CACHE_RELATIONS = 64

    def __init__(self, schema: DatabaseSchema, path: str = ':memory:'):
        super().__init__(schema)
        self.path = path
        self._mutex = threading.RLock()
        self._tls = threading.local()
        #: thread ident -> (thread object, leased connection)
        self._leases: dict[int, tuple] = {}
        self._closed = False
        if path == ':memory:':
            # A plain ':memory:' database is private to its connection;
            # per-thread leases need the named shared-cache form.
            self._uri = (f'file:repro-mem-{os.getpid()}-'
                         f'{next(_MEMDB_IDS)}?mode=memory&cache=shared')
        else:
            self._uri = None
        # The root lease anchors a shared-cache memory database for the
        # backend's lifetime; it is closed only by close().
        self._root_conn = self._lease_connection()
        self._base_names = frozenset(rel.name for rel in schema)
        self._cache_names: set[str] = set()
        self._view_attrs: dict[str, tuple[str, ...]] = {}
        self._compiled: dict[str, _CompiledView] = {}
        self._index_hints: dict[str, set[tuple[int, ...]]] = {}
        # Python-side row images of stored tables, maintained O(|Δ|)
        # across commits; purely a bounded LRU read cache, rebuilt from
        # SQLite on miss, so SQLite remains the source of truth and the
        # Python footprint stays capped for bigger-than-memory data.
        self._rows_cache: OrderedDict[str, frozenset] = OrderedDict()
        for rel in schema:
            self._create_table(rel.name, rel.attributes)

    # -- per-thread connection leasing --------------------------------

    def _connect(self) -> sqlite3.Connection:
        # check_same_thread=False: our leasing discipline already keeps
        # each connection on its own thread during use, and it lets
        # close() release every lease no matter which thread calls it.
        conn = sqlite3.connect(self._uri or self.path,
                               isolation_level=None,
                               check_same_thread=False,
                               uri=self._uri is not None)
        conn.execute('PRAGMA synchronous=OFF')
        return conn

    def _lease_connection(self) -> sqlite3.Connection:
        """The calling thread's leased connection, created on first
        use.  Leases of threads that have exited are closed here —
        deterministic cleanup without a background reaper."""
        conn = getattr(self._tls, 'conn', None)
        if conn is not None:
            if not self._closed:
                return conn
            # close() ran on another thread: this lease is already a
            # closed connection — drop it and fail like any post-close
            # use, not with a raw sqlite3.ProgrammingError.
            self._tls.conn = None
        with self._mutex:
            if self._closed:
                raise SchemaError(f'backend for {self.path!r} is closed')
            conn = self._connect()
            self._leases[threading.get_ident()] = \
                (threading.current_thread(), conn)
            for ident, (thread, stale) in list(self._leases.items()):
                if not thread.is_alive():
                    del self._leases[ident]
                    if stale is not getattr(self, '_root_conn', None):
                        stale.close()
        self._tls.conn = conn
        return conn

    @property
    def _conn(self) -> sqlite3.Connection:
        return self._lease_connection()

    def release_thread(self) -> None:
        """Close the calling thread's leased connection (the root
        lease stays open — it anchors in-memory databases)."""
        conn = getattr(self._tls, 'conn', None)
        if conn is None:
            return
        self._tls.conn = None
        with self._mutex:
            self._leases.pop(threading.get_ident(), None)
        if conn is not self._root_conn:
            conn.close()

    def leased_threads(self) -> int:
        """How many threads currently hold a connection lease."""
        with self._mutex:
            return len(self._leases)

    def _cache_rows(self, name: str, rows: frozenset) -> None:
        cache = self._rows_cache
        cache[name] = rows
        cache.move_to_end(name)
        while len(cache) > self.ROWS_CACHE_RELATIONS:
            cache.popitem(last=False)

    # -- DDL helpers --------------------------------------------------

    def _create_table(self, name: str, columns: tuple[str, ...]) -> None:
        # Columns carry no type affinity so values round-trip exactly
        # (REAL affinity would coerce the ints `validate_tuple` accepts
        # for float columns); the all-column primary key gives set
        # semantics and keyed deletes.
        cols = ', '.join(f'"{c}"' for c in columns)
        self._conn.execute(
            f'CREATE TABLE "{sql_ident(name)}" ({cols}, '
            f'PRIMARY KEY ({_quoted(columns)})) WITHOUT ROWID')

    def _columns_of(self, name: str) -> tuple[str, ...]:
        if name in self._view_attrs:
            return self._view_attrs[name]
        if name in self.schema:
            return self.schema[name].attributes
        raise SchemaError(f'unknown relation {name!r}')

    def _build_indexes(self, name: str) -> None:
        ident = sql_ident(name)
        columns = self._columns_of(name)
        for positions in self._index_hints.get(name, ()):
            suffix = '_'.join(str(p) for p in positions)
            cols = _quoted(columns[p] for p in positions)
            self._conn.execute(
                f'CREATE INDEX IF NOT EXISTS "ix_{ident}_{suffix}" '
                f'ON "{ident}" ({cols})')

    # -- storage ------------------------------------------------------

    def _stored(self, name: str) -> bool:
        return name in self._base_names or name in self._cache_names

    @_locked
    def load(self, name: str, rows: set) -> None:
        ident = sql_ident(name)
        arity = len(self._columns_of(name))
        marks = ', '.join('?' * arity)
        cur = self._conn.cursor()
        cur.execute('BEGIN')
        cur.execute(f'DELETE FROM "{ident}"')
        cur.executemany(f'INSERT OR IGNORE INTO "{ident}" '
                        f'VALUES ({marks})', list(rows))
        cur.execute('COMMIT')
        self._cache_rows(name, frozenset(rows))

    @_locked
    def rows(self, name: str):
        cached = self._rows_cache.get(name)
        if cached is None:
            if not self._stored(name):
                raise SchemaError(
                    f'unknown or unmaterialised relation {name!r}')
            cur = self._conn.execute(
                f'SELECT * FROM "{sql_ident(name)}"')
            cached = frozenset(map(tuple, cur))
        self._cache_rows(name, cached)
        return cached

    @_locked
    def snapshot(self) -> Database:
        return Database({name: self.rows(name)
                         for name in sorted(self._base_names)})

    @_locked
    def count(self, name: str) -> int:
        cached = self._rows_cache.get(name)
        if cached is not None:
            return len(cached)
        if not self._stored(name):
            raise SchemaError(
                f'unknown or unmaterialised relation {name!r}')
        (n,), = self._conn.execute(
            f'SELECT COUNT(*) FROM "{sql_ident(name)}"')
        return n

    def _apply_one(self, cur, name: str, delta: Delta) -> None:
        ident = sql_ident(name)
        columns = self._columns_of(name)
        marks = ', '.join('?' * len(columns))
        where = ' AND '.join(f'"{c}" = ?' for c in columns)
        if delta.deletions:
            cur.executemany(f'DELETE FROM "{ident}" WHERE {where}',
                            list(delta.deletions))
        if delta.insertions:
            cur.executemany(f'INSERT OR IGNORE INTO "{ident}" '
                            f'VALUES ({marks})', list(delta.insertions))

    @_locked
    def apply_delta(self, name: str, delta: Delta, *,
                    is_cache: bool) -> None:
        self.apply_deltas([(name, delta, is_cache)])

    @_locked
    def apply_deltas(self, deltas) -> None:
        """One SQL transaction for the whole commit batch: either every
        relation's delta is durably applied or none is; the Python-side
        row images are refreshed only after a successful COMMIT."""
        cur = self._conn.cursor()
        cur.execute('BEGIN')
        try:
            for name, delta, _is_cache in deltas:
                self._apply_one(cur, name, delta)
        except BaseException:
            cur.execute('ROLLBACK')
            raise
        cur.execute('COMMIT')
        for name, delta, _is_cache in deltas:
            cached = self._rows_cache.get(name)
            if cached is not None:
                self._cache_rows(name, (cached - delta.deletions)
                                 | delta.insertions)

    # -- view caches --------------------------------------------------

    def has_cache(self, name: str) -> bool:
        return name in self._cache_names

    @_locked
    def store_cache(self, name: str, rows: Iterable[tuple]) -> None:
        rows = set(rows)
        ident = sql_ident(name)
        self._conn.execute(f'DROP TABLE IF EXISTS "{ident}"')
        self._create_table(name, self._columns_of(name))
        arity = len(self._columns_of(name))
        marks = ', '.join('?' * arity)
        cur = self._conn.cursor()
        cur.execute('BEGIN')
        cur.executemany(f'INSERT OR IGNORE INTO "{ident}" '
                        f'VALUES ({marks})', list(rows))
        cur.execute('COMMIT')
        self._cache_names.add(name)
        self._cache_rows(name, frozenset(rows))
        self._build_indexes(name)

    @_locked
    def drop_cache(self, name: str) -> None:
        if name in self._cache_names:
            self._conn.execute(
                f'DROP TABLE IF EXISTS "{sql_ident(name)}"')
            self._cache_names.discard(name)
        self._rows_cache.pop(name, None)

    # -- indexes ------------------------------------------------------

    @_locked
    def add_index_hint(self, name: str, positions: tuple[int, ...]) -> None:
        self._index_hints.setdefault(name, set()).add(positions)
        if self._stored(name):
            self._build_indexes(name)

    # -- compile-once SQL lowering ------------------------------------

    @_locked
    def register_view(self, entry) -> None:
        self._view_attrs[entry.name] = entry.schema.attributes
        namer = ColumnNamer(self.schema, extra=dict(self._view_attrs))
        compiled = _CompiledView()
        compiled.get = self._lower_query(entry.get_program, namer,
                                         goals=(entry.name,),
                                         label='get',
                                         compiled=compiled)
        if entry.incremental_program is not None:
            compiled.incremental = self._lower_query(
                entry.incremental_program, namer,
                goals=entry.incremental_plan.delta_goals,
                label='incremental putback', compiled=compiled)
        compiled.putback = self._lower_query(
            entry.strategy.putdelta, namer,
            goals=entry.strategy.putdelta_plan.delta_goals,
            label='putback', compiled=compiled)
        self._compiled[entry.name] = compiled

    def _lower_query(self, program: Program, namer: ColumnNamer,
                     goals, label: str,
                     compiled: _CompiledView) -> _ProgramSQL | None:
        """Lower one program (goals + its ⊥-rules) or record a fallback."""
        try:
            delta_sql = tuple(
                (goal, query_to_sql(program, goal, namer, dialect=SQLITE))
                for goal in goals)
            constraint_sql = tuple(
                (rule, constraint_to_sql(program, rule, namer,
                                         dialect=SQLITE))
                for rule in program.constraints())
        except ReproError as exc:
            compiled.fallbacks.append((label, str(exc)))
            return None
        arities = program.arities()
        edb = frozenset(program.edb_preds())
        columns = {name: namer.columns(name, arities.get(name, 0))
                   for name in edb}
        return _ProgramSQL(delta_sql=delta_sql,
                           constraint_sql=constraint_sql,
                           edb=edb, columns=columns)

    # -- staged SQL execution -----------------------------------------

    def _staging_plan(self, prog: _ProgramSQL,
                      inputs: Mapping[str, object]) -> dict[str, tuple]:
        """Which EDB relations must be loaded as TEMP tables: explicitly
        provided row sets (staged transaction state, view deltas) plus
        any input with no stored table behind it (reads as empty)."""
        staged: dict[str, tuple] = {}
        for name in prog.edb:
            handle = inputs.get(name)
            if isinstance(handle, StoredRelation):
                continue                      # read the table in place
            if handle is not None:
                staged[name] = tuple(handle)
            elif not self._stored(name):
                staged[name] = ()             # undefined EDB: empty
        return staged

    @contextmanager
    def _staged(self, prog: _ProgramSQL, inputs: Mapping[str, object]):
        """A cursor with every staged input loaded as a TEMP shadow of
        its relation name; the shadows are dropped on exit."""
        staged = self._staging_plan(prog, inputs)
        cur = self._conn.cursor()
        created: list[str] = []
        try:
            for name, rows in staged.items():
                ident = sql_ident(name)
                columns = prog.columns[name]
                cur.execute(f'CREATE TEMP TABLE "{ident}" '
                            f'({_quoted(columns)})')
                created.append(ident)
                if rows:
                    marks = ', '.join('?' * len(columns))
                    cur.executemany(
                        f'INSERT OR IGNORE INTO temp."{ident}" '
                        f'VALUES ({marks})', list(rows))
            yield cur
        finally:
            for ident in created:
                cur.execute(f'DROP TABLE IF EXISTS temp."{ident}"')

    @staticmethod
    def _check_constraints_on(cur, prog: _ProgramSQL) -> None:
        # fetchone: SQLite produces witness rows lazily, so the check
        # short-circuits at the first violation instead of
        # materialising every witness.
        for rule, sql in prog.constraint_sql:
            witness = cur.execute(sql).fetchone()
            if witness is not None:
                raise ConstraintViolation(pretty_rule(rule),
                                          tuple(witness))

    @staticmethod
    def _deltas_on(cur, prog: _ProgramSQL, entry) -> DeltaSet:
        output = {goal: {tuple(r) for r in cur.execute(sql)}
                  for goal, sql in prog.delta_sql}
        return DeltaSet.from_database(
            Database(output),
            relations=entry.strategy.updated_relations())

    # -- plan execution -----------------------------------------------

    def eval_handle(self, name: str):
        return StoredRelation(name)

    def _eval_input(self, handle):
        """Interpreter fallback: resolve stored-table markers to rows."""
        if isinstance(handle, StoredRelation):
            return self.rows(handle.name)
        return handle

    def _demote(self, view: str, label: str, exc: Exception) -> None:
        """Compiled SQL failed at *execution* time: permanently route
        this program to the interpreter (the failure is deterministic —
        the same text would fail on every statement) and record why."""
        compiled = self._compiled[view]
        setattr(compiled, label, None)
        compiled.fallbacks.append((label, f'runtime: {exc}'))

    @_locked
    def evaluate_get(self, entry, sources: Mapping[str, object]
                     ) -> frozenset:
        prog = self._compiled[entry.name].get
        if prog is None:
            return self._interp_get(entry, sources)
        try:
            (_, sql), = prog.delta_sql
            with self._staged(prog, sources) as cur:
                return frozenset(tuple(r) for r in cur.execute(sql))
        except sqlite3.Error as exc:
            self._demote(entry.name, 'get', exc)
            return self._interp_get(entry, sources)

    @_locked
    def evaluate_incremental(self, entry, sources: Mapping[str, object],
                             view_handle, delta: Delta) -> DeltaSet:
        prog = self._compiled[entry.name].incremental
        if prog is None:
            return self._interp_incremental(entry, sources, view_handle,
                                            delta)
        name = entry.name
        inputs = dict(sources)
        inputs[insert_pred(name)] = delta.insertions
        inputs[delete_pred(name)] = delta.deletions
        inputs[name] = view_handle
        try:
            with self._staged(prog, inputs) as cur:
                self._check_constraints_on(cur, prog)
                return self._deltas_on(cur, prog, entry)
        except sqlite3.Error as exc:
            self._demote(name, 'incremental', exc)
            return self._interp_incremental(entry, sources, view_handle,
                                            delta)

    # Batched execution: the inherited evaluate_incremental_batch
    # (one evaluate_incremental call per transaction with the merged
    # multi-row delta) already gives the SQL shape the batch pipeline
    # wants — the whole batch of coalesced +v/-v rows stages as a
    # single multi-row TEMP shadow per relation and every view goal
    # runs one SELECT, no per-statement TEMP churn (asserted by the
    # SQL-trace test in tests/test_backends.py).

    @_locked
    def evaluate_putback(self, entry, sources: Mapping[str, object],
                         new_view_rows, *,
                         check_constraints: bool = False) -> DeltaSet:
        prog = self._compiled[entry.name].putback
        if prog is None:
            return self._interp_putback(entry, sources, new_view_rows,
                                        check_constraints=check_constraints)
        inputs = dict(sources)
        inputs[entry.name] = new_view_rows
        try:
            with self._staged(prog, inputs) as cur:
                if check_constraints:
                    self._check_constraints_on(cur, prog)
                return self._deltas_on(cur, prog, entry)
        except sqlite3.Error as exc:
            self._demote(entry.name, 'putback', exc)
            return self._interp_putback(entry, sources, new_view_rows,
                                        check_constraints=check_constraints)

    @_locked
    def check_view_constraints(self, entry,
                               sources: Mapping[str, object],
                               new_view_rows) -> None:
        prog = self._compiled[entry.name].putback
        if prog is None:
            self._interp_check_constraints(entry, sources, new_view_rows)
            return
        if not prog.constraint_sql:
            return                    # nothing to check: skip staging
        inputs = dict(sources)
        inputs[entry.name] = new_view_rows
        try:
            with self._staged(prog, inputs) as cur:
                self._check_constraints_on(cur, prog)
        except sqlite3.Error as exc:
            self._demote(entry.name, 'putback', exc)
            self._interp_check_constraints(entry, sources, new_view_rows)

    # -- introspection / lifecycle ------------------------------------

    def lowering_fallbacks(self, view: str) -> list:
        """``(program_label, reason)`` pairs for every plan of ``view``
        that executes interpreted because SQL lowering failed."""
        return list(self._compiled[view].fallbacks)

    def compiled_sql(self, view: str) -> dict[str, str]:
        """The cached SQL texts for ``view`` (debugging / tests)."""
        out: dict[str, str] = {}
        compiled = self._compiled[view]
        for label, prog in (('get', compiled.get),
                            ('incremental', compiled.incremental),
                            ('putback', compiled.putback)):
            if prog is None:
                continue
            for goal, sql in prog.delta_sql:
                out[f'{label}:{goal}'] = sql
            for rule, sql in prog.constraint_sql:
                out[f'{label}:⊥:{pretty_rule(rule)}'] = sql
        return out

    def close(self) -> None:
        """Close every thread's leased connection (idempotent)."""
        with self._mutex:
            if self._closed:
                return
            self._closed = True
            for _thread, conn in self._leases.values():
                conn.close()
            self._leases.clear()
            # Stale Python-side row images must not outlive the
            # database they mirror: post-close reads should fail,
            # not answer from cache.
            self._rows_cache.clear()
            try:
                self._root_conn.close()
            except sqlite3.ProgrammingError:   # already closed above
                pass
        self._tls.conn = None
