"""The in-process backend: indexed Python sets, interpreted plans.

This preserves the original engine substrate exactly: tables and view
caches are :class:`~repro.datalog.evaluator.IndexedRelation` objects
whose hash indexes persist across updates and are maintained
incrementally on commit (the role PostgreSQL's B-trees play in the
paper's Figure 6 experiment), and every plan runs through the
slot-machine interpreter of :mod:`repro.datalog.evaluator`.
"""

from __future__ import annotations

from typing import Iterable, Mapping

from repro.datalog.evaluator import IndexedRelation
from repro.datalog.pretty import pretty_rule
from repro.errors import ConstraintViolation, SchemaError
from repro.rdbms.backends.base import Backend
from repro.relational.database import Database
from repro.relational.delta import Delta, DeltaSet
from repro.relational.schema import DatabaseSchema

__all__ = ['MemoryBackend']


class MemoryBackend(Backend):
    """Mutable indexed sets; evaluation by the compiled-plan interpreter."""

    kind = 'memory'

    def __init__(self, schema: DatabaseSchema):
        super().__init__(schema)
        self._tables: dict[str, IndexedRelation] = {
            rel.name: IndexedRelation(set()) for rel in schema}
        self._caches: dict[str, IndexedRelation] = {}
        # relation -> hash-index masks declared by registered plans;
        # applied eagerly to tables and to view caches on (re)build.
        self._index_hints: dict[str, set[tuple[int, ...]]] = {}

    # -- storage ------------------------------------------------------

    def _apply_index_hints(self, name: str,
                           relation: IndexedRelation) -> None:
        for positions in self._index_hints.get(name, ()):
            relation.ensure_index(positions)

    def _relation(self, name: str) -> IndexedRelation:
        if name in self._tables:
            return self._tables[name]
        if name in self._caches:
            return self._caches[name]
        raise SchemaError(f'unknown or unmaterialised relation {name!r}')

    def load(self, name: str, rows: set) -> None:
        table = IndexedRelation(set(rows))
        self._apply_index_hints(name, table)
        self._tables[name] = table

    def rows(self, name: str):
        return self._relation(name).rows

    def snapshot(self) -> Database:
        return Database({name: frozenset(rel.rows)
                         for name, rel in self._tables.items()})

    def apply_delta(self, name: str, delta: Delta, *,
                    is_cache: bool) -> None:
        relation = self._caches[name] if is_cache else self._tables[name]
        for row in delta.deletions:
            relation.discard(row)
        for row in delta.insertions:
            relation.add(row)

    # -- view caches --------------------------------------------------

    def has_cache(self, name: str) -> bool:
        return name in self._caches

    def store_cache(self, name: str, rows: Iterable[tuple]) -> None:
        cached = IndexedRelation(set(rows))
        self._apply_index_hints(name, cached)
        self._caches[name] = cached

    def drop_cache(self, name: str) -> None:
        self._caches.pop(name, None)

    # -- indexes ------------------------------------------------------

    def add_index_hint(self, name: str, positions: tuple[int, ...]) -> None:
        self._index_hints.setdefault(name, set()).add(positions)
        if name in self._tables:
            self._tables[name].ensure_index(positions)
        elif name in self._caches:
            self._caches[name].ensure_index(positions)

    # -- plan execution -----------------------------------------------

    def eval_handle(self, name: str):
        """The persistent indexed relation itself — evaluation shares
        its hash indexes, nothing is copied."""
        return self._relation(name)

    def evaluate_get(self, entry, sources: Mapping[str, object]
                     ) -> frozenset:
        return self._interp_get(entry, sources)

    def evaluate_incremental(self, entry, sources: Mapping[str, object],
                             view_handle, delta: Delta) -> DeltaSet:
        return self._interp_incremental(entry, sources, view_handle,
                                        delta)

    def evaluate_incremental_batch(self, entry,
                                   sources: Mapping[str, object],
                                   view_handle, delta: Delta, *,
                                   new_view_rows=None) -> DeltaSet:
        """One interpreted pass over the transaction's merged multi-row
        delta: a single plan context (one index/EDB setup) however many
        statements were coalesced.  The fused full constraint check
        runs directly over the live evaluation handles — no per-source
        freezing — and short-circuits at the first witness."""
        if new_view_rows is not None and entry.strategy.constraints():
            edb = self._interp_edb(sources)
            edb[entry.name] = new_view_rows
            violations = entry.strategy.putdelta_plan \
                .constraint_violations(edb, first_witness=True)
            if violations:
                rule, witness = violations[0]
                raise ConstraintViolation(pretty_rule(rule), witness)
        return self._interp_incremental(entry, sources, view_handle,
                                        delta)

    def evaluate_putback(self, entry, sources: Mapping[str, object],
                         new_view_rows, *,
                         check_constraints: bool = False) -> DeltaSet:
        return self._interp_putback(entry, sources, new_view_rows,
                                    check_constraints=check_constraints)

    def check_view_constraints(self, entry,
                               sources: Mapping[str, object],
                               new_view_rows) -> None:
        self._interp_check_constraints(entry, sources, new_view_rows)
