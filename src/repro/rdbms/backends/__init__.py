"""Pluggable storage backends for the RDBMS engine.

The engine's storage and plan-execution substrate is the
:class:`~repro.rdbms.backends.base.Backend` interface; two
implementations ship:

* ``memory`` — :class:`MemoryBackend`, indexed Python sets executed by
  the compiled-plan interpreter (the original substrate, and the
  default);
* ``sqlite`` — :class:`SQLiteBackend`, tables in SQLite with plans
  lowered to SQL once per view (the paper's run-inside-the-database
  deployment style).

``create_backend`` resolves a backend by name; the engine (and the
benchsuite) read the default from the ``REPRO_BACKEND`` environment
variable, which is how CI runs the whole test suite over each backend.
"""

from __future__ import annotations

import os

from repro.errors import SchemaError
from repro.rdbms.backends.base import Backend, StoredRelation
from repro.rdbms.backends.memory import MemoryBackend
from repro.rdbms.backends.sqlite import SQLiteBackend

__all__ = ['Backend', 'StoredRelation', 'MemoryBackend', 'SQLiteBackend',
           'BACKENDS', 'create_backend', 'create_shard_backends',
           'default_backend_kind']

BACKENDS = {
    MemoryBackend.kind: MemoryBackend,
    SQLiteBackend.kind: SQLiteBackend,
}


def default_backend_kind() -> str:
    """The backend used when none is requested explicitly: the
    ``REPRO_BACKEND`` environment variable, defaulting to ``memory``."""
    kind = os.environ.get('REPRO_BACKEND', 'memory').strip() or 'memory'
    if kind not in BACKENDS:
        raise SchemaError(
            f'REPRO_BACKEND={kind!r} is not a known backend; expected '
            f'one of {sorted(BACKENDS)}')
    return kind


def create_backend(kind, schema) -> Backend:
    """Instantiate a backend for ``schema``.

    ``kind`` may be a backend name (``'memory'``/``'sqlite'``), ``None``
    (resolve via :func:`default_backend_kind`), or an already-built
    :class:`Backend` instance (returned as-is, so callers can hand the
    engine a specially configured backend, e.g. a file-backed SQLite
    database).
    """
    if isinstance(kind, Backend):
        return kind
    if kind is None:
        kind = default_backend_kind()
    try:
        factory = BACKENDS[kind]
    except KeyError:
        raise SchemaError(f'unknown backend {kind!r}; expected one of '
                          f'{sorted(BACKENDS)}') from None
    return factory(schema)


def create_shard_backends(spec, schema, n_shards: int) -> list[Backend]:
    """Instantiate one backend per shard for a sharded engine.

    ``spec`` is ``None`` (the default kind for every shard), a single
    backend *name* (a fresh instance of that kind per shard), or a
    sequence of exactly ``n_shards`` names/instances — which is how hot
    shards are kept on ``'memory'`` while cold shards run on
    ``'sqlite'``.  Backend *instances* are only accepted inside the
    per-shard sequence, and each must be distinct: one instance is one
    shard's storage, and sharing it would make every shard write the
    same tables.
    """
    if isinstance(spec, Backend):
        raise SchemaError(
            'a single Backend instance cannot serve every shard (each '
            'shard needs its own storage); pass a backend name, or a '
            'sequence with one distinct instance per shard')
    if spec is None or isinstance(spec, str):
        spec = [spec] * n_shards
    else:
        spec = list(spec)
    if len(spec) != n_shards:
        raise SchemaError(
            f'{len(spec)} shard backends specified for {n_shards} shards')
    instances = [kind for kind in spec if isinstance(kind, Backend)]
    if len(instances) != len({id(backend) for backend in instances}):
        raise SchemaError('the same Backend instance appears more than '
                          'once in the shard backends')
    return [create_backend(kind, schema) for kind in spec]
