"""The storage/execution interface behind :class:`repro.rdbms.engine.
Engine`.

A :class:`Backend` owns everything the engine used to do directly
against :class:`~repro.datalog.evaluator.IndexedRelation` objects:

* base-table storage (bulk load, row access, frozen snapshots, applying
  committed deltas in place);
* materialised view caches (store/drop/apply-delta);
* the persistent index hints declared by compiled plans;
* plan evaluation — the view-definition ``get``, the incrementalized
  putback ``∂put``, the full putback, and ⊥-constraint checks.

The engine's transaction pipeline is backend-agnostic: it stages deltas
in Python, hands the backend *evaluation handles* for whatever each
evaluation must read (see :meth:`Backend.eval_handle`), and commits the
accumulated deltas through :meth:`Backend.apply_delta`.

Two implementations ship: :class:`~repro.rdbms.backends.memory.
MemoryBackend` (indexed Python sets, the original engine substrate) and
:class:`~repro.rdbms.backends.sqlite.SQLiteBackend` (tables in SQLite,
plans lowered to SQL once per view).  The interpreted execution paths
live here as ``_interp_*`` helpers so every backend can fall back to
them for programs its native execution cannot express.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Iterable, Mapping, Sequence

from repro.datalog.ast import delete_pred, insert_pred
from repro.datalog.pretty import pretty_rule
from repro.errors import ConstraintViolation
from repro.relational.database import Database
from repro.relational.delta import Delta, DeltaSet
from repro.relational.schema import DatabaseSchema

if TYPE_CHECKING:  # pragma: no cover - import cycle with engine.py
    from repro.rdbms.engine import ViewEntry

__all__ = ['Backend', 'StoredRelation']


class StoredRelation:
    """Evaluation handle meaning "read relation ``name`` from the
    backend's own storage" — the unstaged case.  Backends whose storage
    the interpreter cannot read directly (SQLite) return these from
    :meth:`Backend.eval_handle` and resolve them at evaluation time;
    staged relations always arrive as plain row sets."""

    __slots__ = ('name',)

    def __init__(self, name: str):
        self.name = name

    def __repr__(self):
        return f'StoredRelation({self.name!r})'


class Backend(ABC):
    """Pluggable storage + plan-execution substrate for the engine."""

    #: short name used by ``--backend`` flags and ``REPRO_BACKEND``
    kind: str = '?'

    def __init__(self, schema: DatabaseSchema):
        self.schema = schema

    # -- storage ------------------------------------------------------

    @abstractmethod
    def load(self, name: str, rows: set) -> None:
        """Replace the contents of base table ``name`` (rows are already
        schema-validated by the engine)."""

    @abstractmethod
    def rows(self, name: str):
        """Current contents of a base table or a stored view cache, as a
        set-like object.  Treat the result as read-only; it may be live
        backend state (memory) or a frozen copy (SQLite)."""

    @abstractmethod
    def snapshot(self) -> Database:
        """A frozen snapshot of all base tables."""

    def count(self, name: str) -> int:
        """Cardinality of a stored table or view cache.  The default
        counts :meth:`rows`; backends with a cheaper native count
        (``COUNT(*)``) override."""
        return len(self.rows(name))

    @abstractmethod
    def apply_delta(self, name: str, delta: Delta, *,
                    is_cache: bool) -> None:
        """Apply one committed delta in place (deletions first, then
        insertions — matching set semantics ``(R \\ Δ⁻) ∪ Δ⁺``)."""

    def apply_deltas(self, deltas: Sequence[tuple[str, Delta, bool]]
                     ) -> None:
        """Apply one transaction's deltas — ``(name, delta, is_cache)``
        triples.  Backends with a durable medium override this to make
        the whole batch atomic (the SQLite backend wraps it in one SQL
        transaction); the default applies them in order."""
        for name, delta, is_cache in deltas:
            self.apply_delta(name, delta, is_cache=is_cache)

    # -- view caches --------------------------------------------------

    @abstractmethod
    def has_cache(self, name: str) -> bool:
        """Is a materialisation of view ``name`` currently stored?"""

    @abstractmethod
    def store_cache(self, name: str, rows: Iterable[tuple]) -> None:
        """Store (or replace) the materialisation of view ``name``."""

    @abstractmethod
    def drop_cache(self, name: str) -> None:
        """Invalidate the stored materialisation of ``name`` (no-op when
        absent)."""

    # -- indexes ------------------------------------------------------

    @abstractmethod
    def add_index_hint(self, name: str, positions: tuple[int, ...]) -> None:
        """A compiled plan will probe ``name`` on ``positions``: build
        the matching access structure now and maintain it across
        updates and cache rebuilds."""

    # -- plan execution -----------------------------------------------

    def register_view(self, entry: 'ViewEntry') -> None:
        """Called once per :meth:`Engine.define_view` — the backend's
        chance to compile the view's plans into its native execution
        form (the SQLite backend lowers them to SQL here)."""

    @abstractmethod
    def eval_handle(self, name: str):
        """What plan evaluation should read for an *unstaged* relation:
        an object the interpreter accepts directly (memory hands out its
        persistent :class:`IndexedRelation`) or a :class:`StoredRelation`
        marker the backend resolves itself."""

    @abstractmethod
    def evaluate_get(self, entry: 'ViewEntry',
                     sources: Mapping[str, object]) -> frozenset:
        """Evaluate the view definition over ``sources`` (a mapping of
        source name → evaluation handle) and return the view rows."""

    @abstractmethod
    def evaluate_incremental(self, entry: 'ViewEntry',
                             sources: Mapping[str, object],
                             view_handle, delta: Delta) -> DeltaSet:
        """Evaluate ``∂put`` over ``S ∪ {v, +v, -v}``; constraint rules
        carried by the incremental program are checked first (raising
        :class:`ConstraintViolation`)."""

    def evaluate_incremental_batch(self, entry: 'ViewEntry',
                                   sources: Mapping[str, object],
                                   view_handle, delta: Delta, *,
                                   new_view_rows=None) -> DeltaSet:
        """Evaluate ``∂put`` once over one transaction's *coalesced*
        view delta.

        The engine's batched pipeline composes every staged delta of a
        view (``Delta.then``) and calls this exactly once per touched
        view per transaction, with ``delta`` the merged multi-row
        effective delta — instead of once per statement bucket.  When
        ``new_view_rows`` is not ``None`` the strategy declares
        ⊥-constraints that the incremental program does not carry, and
        the backend must check them against ``(S, V')`` in the same
        pass (raising :class:`ConstraintViolation` before staging ΔS).

        The default delegates to :meth:`check_view_constraints` +
        :meth:`evaluate_incremental`; backends override to exploit the
        single-call shape (one plan context in memory, one multi-row
        TEMP stage per relation on SQLite)."""
        if new_view_rows is not None:
            self.check_view_constraints(entry, sources, new_view_rows)
        return self.evaluate_incremental(entry, sources, view_handle,
                                         delta)

    @abstractmethod
    def evaluate_putback(self, entry: 'ViewEntry',
                         sources: Mapping[str, object],
                         new_view_rows, *,
                         check_constraints: bool = False) -> DeltaSet:
        """Evaluate the full putback program over ``S ∪ {v'}``.

        With ``check_constraints``, the strategy's ⊥-rules are checked
        against the same staged inputs first (one staging/freeze pass
        for both steps), raising :class:`ConstraintViolation`."""

    @abstractmethod
    def check_view_constraints(self, entry: 'ViewEntry',
                               sources: Mapping[str, object],
                               new_view_rows) -> None:
        """Check the strategy's ⊥-constraints on ``(S, V')``, raising
        :class:`ConstraintViolation` on the first violation."""

    def close(self) -> None:
        """Release backend resources (connections, files), including
        every thread's leased resources (see :meth:`release_thread`)."""

    # -- per-thread resource leasing ----------------------------------
    #
    # Some storage substrates hold thread-affine resources (SQLite
    # connections must not cross threads).  Backends acquire such
    # resources implicitly, per calling thread, on first use — the
    # *lease* — and a thread that is done with the backend (a worker
    # leaving a pool) releases its lease explicitly.  Backends without
    # thread-affine state need nothing: the default is a no-op.

    def release_thread(self) -> None:
        """Release resources leased to the *calling* thread (no-op by
        default).  Safe to call on a thread that never used the
        backend; :meth:`close` releases every thread's lease."""

    # -- interpreted execution (shared fallback) ----------------------
    #
    # These run the compiled ExecutionPlans through the in-process
    # interpreter.  MemoryBackend uses them as its primary execution
    # path; other backends fall back to them for programs their native
    # lowering cannot express.

    def _eval_input(self, handle):
        """Resolve an evaluation handle into something the interpreter
        reads (rows or an IndexedRelation).  Identity by default."""
        return handle

    def _interp_edb(self, sources: Mapping[str, object]) -> dict:
        return {name: self._eval_input(handle)
                for name, handle in sources.items()}

    def _frozen_sources(self, sources: Mapping[str, object]) -> Database:
        from repro.datalog.evaluator import IndexedRelation
        frozen: dict[str, frozenset] = {}
        for name, handle in sources.items():
            resolved = self._eval_input(handle)
            if isinstance(resolved, IndexedRelation):
                resolved = resolved.rows
            frozen[name] = frozenset(resolved)
        return Database(frozen)

    def _interp_get(self, entry: 'ViewEntry',
                    sources: Mapping[str, object]) -> frozenset:
        name = entry.name
        output = entry.get_plan.evaluate(self._interp_edb(sources),
                                         goals=(name,))
        return output[name]

    def _interp_incremental(self, entry: 'ViewEntry',
                            sources: Mapping[str, object],
                            view_handle, delta: Delta) -> DeltaSet:
        name = entry.name
        plan = entry.incremental_plan
        edb = self._interp_edb(sources)
        edb[insert_pred(name)] = delta.insertions
        edb[delete_pred(name)] = delta.deletions
        edb[name] = self._eval_input(view_handle)
        if plan.constraint_plans:
            violations = plan.constraint_violations(edb,
                                                    first_witness=True)
            if violations:
                rule, witness = violations[0]
                raise ConstraintViolation(pretty_rule(rule), witness)
        output = plan.evaluate(edb, goals=plan.delta_goals)
        return DeltaSet.from_database(
            output, relations=entry.strategy.updated_relations())

    def _interp_putback(self, entry: 'ViewEntry',
                        sources: Mapping[str, object],
                        new_view_rows, *,
                        check_constraints: bool = False) -> DeltaSet:
        frozen = self._frozen_sources(sources)
        if check_constraints:
            entry.strategy.check_constraints(frozen, new_view_rows)
        return entry.strategy.compute_delta(frozen, new_view_rows)

    def _interp_check_constraints(self, entry: 'ViewEntry',
                                  sources: Mapping[str, object],
                                  new_view_rows) -> None:
        entry.strategy.check_constraints(self._frozen_sources(sources),
                                         new_view_rows)
