"""A durable write-ahead log of coalesced per-transaction deltas.

The batched transaction pipeline already produces each transaction's
net effect as a first-class value — the
:class:`~repro.rdbms.engine.PreparedCommit` batch of
``(relation, delta, is_cache)`` triples.  This module makes that value
the unit of durability *and* of replication: the engine appends one
``commit`` record per transaction (plus ``load``/``define_view``/
``drop_view`` catalog records), and the same byte stream serves

* **crash recovery** — replaying the log from the start rebuilds the
  engine's committed state; :meth:`WriteAheadLog.checkpoint` compacts
  the log into a snapshot prefix (``load`` + ``define_view`` records of
  the current state) so replay stays O(|DB| + |tail|);
* **read replicas** — :class:`~repro.rdbms.replica.ReplicaEngine`
  tails the log and applies the recorded deltas straight through
  ``Backend.apply_deltas``, never re-running ∂put/get plans, so
  catch-up costs O(|Δ|) rather than re-evaluation.

**Record format.**  The file starts with a magic line plus the 8-byte
starting LSN (zero for a fresh log; a checkpoint writes the LSN the
compaction happened at, so LSNs stay monotonic across compactions).
Each record is a frame of ``[4-byte length][4-byte CRC-32][payload]``
where the payload pickles ``(kind, data)``; a record's LSN is implicit
— ``start_lsn + its position`` — which makes monotonicity structural.

**Committed-prefix semantics.**  A transaction is committed exactly
when its record is fully in the log.  On open, the tail is scanned and
the first incomplete or checksum-failing frame — a torn write from a
crash mid-append — marks the end of the committed prefix: everything
after it is truncated, never half-applied.  Readers
(:func:`read_records`) independently stop at the same point, so a
file-tailing replica in another process can never observe a torn
record either.
"""

from __future__ import annotations

import os
import pickle
import signal
import struct
import threading
import time
import zlib
from pathlib import Path
from typing import Callable, Iterable, Iterator, NamedTuple

from repro.errors import SchemaError
from repro.rdbms import faults

__all__ = ['WalRecord', 'WriteAheadLog', 'read_records', 'scan_tail',
           'encode_record', 'read_start_lsn', 'RECORD_KINDS']

MAGIC = b'REPROWAL1\n'
_HEADER = struct.Struct('>Q')    # starting LSN
_FRAME = struct.Struct('>II')    # payload length, CRC-32 of payload

#: Every record kind the engine writes.  ``commit`` carries
#: ``(batch, changed_bases, keep)`` — the PreparedCommit shape — or the
#: 4-tuple ``(batch, changed_bases, keep, note)`` when the transaction
#: embeds a durable note (e.g. a peer link watermark); the catalog
#: kinds carry what re-running the call needs.  ``note`` records hold
#: opaque sidecar state replay collects but does not interpret, and
#: ``checkpoint`` is the sentinel :meth:`WriteAheadLog.checkpoint`
#: appends after a snapshot so a mid-history reader can tell where the
#: rewritten prefix ends.
RECORD_KINDS = ('load', 'define_view', 'drop_view', 'commit',
                'note', 'checkpoint')


def _fsync_dir(path: Path) -> None:
    """Fsync a directory so a just-renamed file survives power loss
    (the rename itself is atomic either way; this makes it durable)."""
    fd = os.open(path, os.O_RDONLY | getattr(os, 'O_DIRECTORY', 0))
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - fs without dir fsync
        pass
    finally:
        os.close(fd)


class WalRecord(NamedTuple):
    """One committed log record."""

    lsn: int
    kind: str
    data: object


class _Tail(NamedTuple):
    """What :func:`scan_tail` learns about a log file."""

    start_lsn: int
    last_lsn: int
    end_offset: int       # byte offset just past the committed prefix
    torn: bool            # bytes beyond the prefix (a torn tail)


def encode_record(kind: str, data: object) -> bytes:
    """The on-disk frame for one record (exposed for fault-injection
    tests that need to write *partial* frames)."""
    if kind not in RECORD_KINDS:
        raise SchemaError(f'unknown WAL record kind {kind!r}')
    payload = pickle.dumps((kind, data),
                           protocol=pickle.HIGHEST_PROTOCOL)
    return _FRAME.pack(len(payload), zlib.crc32(payload)) + payload


def read_start_lsn(path: str | Path) -> int:
    """The file's header ``start_lsn`` alone (no frame scan).  A
    file-tailing reader compares this against its own applied position
    to detect that :meth:`WriteAheadLog.checkpoint` atomically replaced
    the file with a snapshot prefix: the header LSN jumps past any
    reader that was mid-history."""
    try:
        with open(path, 'rb') as handle:
            header = handle.read(len(MAGIC) + _HEADER.size)
    except FileNotFoundError:
        return 0
    if len(header) < len(MAGIC) + _HEADER.size \
            or not header.startswith(MAGIC):
        raise SchemaError(f'{path} is not a repro WAL file')
    (start_lsn,) = _HEADER.unpack(header[len(MAGIC):])
    return start_lsn


def scan_tail(path: str | Path) -> _Tail:
    """Scan a log file's frames (without unpickling payloads) to find
    the committed prefix: its last LSN and end offset."""
    with open(path, 'rb') as handle:
        header = handle.read(len(MAGIC) + _HEADER.size)
        if len(header) < len(MAGIC) + _HEADER.size \
                or not header.startswith(MAGIC):
            raise SchemaError(f'{path} is not a repro WAL file')
        (start_lsn,) = _HEADER.unpack(header[len(MAGIC):])
        lsn = start_lsn
        offset = len(header)
        while True:
            frame = handle.read(_FRAME.size)
            if len(frame) < _FRAME.size:
                torn = len(frame) > 0
                break
            length, crc = _FRAME.unpack(frame)
            payload = handle.read(length)
            if len(payload) < length or zlib.crc32(payload) != crc:
                torn = True
                break
            lsn += 1
            offset += _FRAME.size + length
        return _Tail(start_lsn, lsn, offset, torn)


def read_records(path: str | Path, *,
                 after: int = 0) -> Iterator[WalRecord]:
    """The committed records with LSN > ``after``, from a fresh read
    handle — safe to call from another thread or process while the
    writer appends, and across checkpoints (a compacted file's records
    all carry fresh LSNs, so a reader that was mid-history simply
    replays the snapshot prefix).  Stops silently at a torn tail: a
    reader can never observe a half-written record."""
    try:
        handle = open(path, 'rb')
    except FileNotFoundError:
        return
    with handle:
        header = handle.read(len(MAGIC) + _HEADER.size)
        if len(header) < len(MAGIC) + _HEADER.size \
                or not header.startswith(MAGIC):
            raise SchemaError(f'{path} is not a repro WAL file')
        (lsn,) = _HEADER.unpack(header[len(MAGIC):])
        while True:
            frame = handle.read(_FRAME.size)
            if len(frame) < _FRAME.size:
                return
            length, crc = _FRAME.unpack(frame)
            payload = handle.read(length)
            if len(payload) < length or zlib.crc32(payload) != crc:
                return
            lsn += 1
            if lsn > after:
                kind, data = pickle.loads(payload)
                yield WalRecord(lsn, kind, data)


class WriteAheadLog:
    """Append-only durable log with monotonic LSNs.

    ``sync=True`` (the default) fsyncs every append — one fsync per
    *transaction*, which group commit naturally amortises across
    clients since a served group is a single engine transaction and
    therefore a single record.  ``sync=False`` trades durability of
    the OS page cache for speed (tests, benchmarks, replicas of a
    primary that is itself durable).

    Opening an existing file recovers it: the tail is scanned, a torn
    final record is truncated (see module docstring), and appends
    continue at ``last_lsn + 1``.

    In-process subscribers (:meth:`subscribe`) get every appended
    record pushed synchronously; out-of-process readers tail the file
    with :func:`read_records`.
    """

    def __init__(self, path: str | Path, *, sync: bool = True):
        self.path = Path(path)
        self.sync = sync
        self._lock = threading.RLock()
        self._subscribers: list[Callable[[WalRecord], None]] = []
        self._closed = False
        self._failed = False
        #: appends/bytes are cumulative for this handle;
        #: ``last_record_bytes`` is the size of the latest record —
        #: what the replication-cost benchmark samples.
        self.stats = {'appends': 0, 'bytes': 0, 'last_record_bytes': 0,
                      'truncated_tails': 0, 'append_failures': 0}
        #: Optional MetricsRegistry (set by the owning engine).  When
        #: attached and enabled, every append observes its write+fsync
        #: latency as the ``wal.append_seconds`` histogram.
        self.metrics = None
        # A crash between writing the checkpoint temp file and the
        # atomic rename leaves the temp behind; it was never the live
        # log, so drop it (the next checkpoint would overwrite it
        # anyway — this is pure hygiene).
        self.path.with_name(self.path.name + '.ckpt').unlink(
            missing_ok=True)
        if self.path.exists() and self.path.stat().st_size > 0:
            tail = scan_tail(self.path)
            if tail.torn:
                with open(self.path, 'r+b') as handle:
                    handle.truncate(tail.end_offset)
                self.stats['truncated_tails'] += 1
            self._start_lsn = tail.start_lsn
            self._last_lsn = tail.last_lsn
            self._file = open(self.path, 'ab')
        else:
            self._start_lsn = 0
            self._last_lsn = 0
            self._file = open(self.path, 'wb')
            self._file.write(MAGIC + _HEADER.pack(0))
            self._flush()

    def _flush(self) -> None:
        self._file.flush()
        faults.fire('wal.fsync')
        if self.sync:
            os.fsync(self._file.fileno())

    @property
    def last_lsn(self) -> int:
        """The LSN of the newest committed record (0 for an empty
        log) — the commit point a read session can demand with
        ``min_lsn``."""
        return self._last_lsn

    def append(self, kind: str, data: object) -> int:
        """Durably append one record; returns its LSN.  The append IS
        the commit point: once this returns, recovery and every replica
        will observe the record.

        A write or fsync failure **poisons** the log: the frame may be
        partially on disk (recovery will truncate it as a torn tail),
        so no further append can be allowed to write after it — every
        subsequent append raises until the log is reopened.  A worker
        process that hits this dies and recovers from the log rather
        than serve commits it cannot make durable."""
        encoded = encode_record(kind, data)
        with self._lock:
            if self._closed:
                raise SchemaError(f'WAL {self.path} is closed')
            if self._failed:
                raise SchemaError(
                    f'WAL {self.path} failed a previous append (the '
                    f'tail may be torn); reopen to recover')
            if faults.fire('wal.append', kind=kind) == 'tear':
                self._tear_and_die(encoded)
            metrics = self.metrics
            timed = metrics is not None and metrics.enabled
            started = time.perf_counter() if timed else 0.0
            try:
                self._file.write(encoded)
                self._flush()
            except OSError:
                self._failed = True
                self.stats['append_failures'] += 1
                raise
            if timed:
                metrics.observe('wal.append_seconds',
                                time.perf_counter() - started)
            self._last_lsn += 1
            lsn = self._last_lsn
            self.stats['appends'] += 1
            self.stats['bytes'] += len(encoded)
            self.stats['last_record_bytes'] = len(encoded)
        record = WalRecord(lsn, kind, data)
        for callback in list(self._subscribers):
            callback(record)
        return lsn

    def _tear_and_die(self, encoded: bytes) -> None:  # pragma: no cover
        """The ``tear`` fault action: persist *half* the frame, then
        SIGKILL — the mid-append crash whose torn tail recovery must
        truncate (only meaningful in a sacrificial subprocess)."""
        self._file.write(encoded[:max(1, len(encoded) // 2)])
        self._file.flush()
        try:
            os.fsync(self._file.fileno())
        except OSError:
            pass
        os.kill(os.getpid(), signal.SIGKILL)

    def subscribe(self, callback: Callable[[WalRecord], None]) -> None:
        """Push every subsequent append to ``callback`` (in-process
        subscription; the callback runs on the appending thread)."""
        self._subscribers.append(callback)

    def records(self, *, after: int = 0) -> Iterator[WalRecord]:
        """The committed records with LSN > ``after`` (a fresh read
        pass over the file; see :func:`read_records`)."""
        return read_records(self.path, after=after)

    def checkpoint(self, records: Iterable[tuple[str, object]]) -> int:
        """Atomically compact the log: replace it with ``records`` (the
        caller's snapshot of current state, as ``(kind, data)`` pairs)
        under a header whose starting LSN is the current ``last_lsn``
        — so the snapshot records receive fresh, still-monotonic LSNs
        and a replica at any position simply replays them.  Returns the
        new ``last_lsn``.

        Crash-safe: the snapshot is fully written and fsynced to a temp
        file first, swapped in with an atomic rename, and the directory
        entry is fsynced after the swap — a crash at any point leaves
        either the old log (intact, possibly plus a stale temp file) or
        the new one, never a half-written log."""
        with self._lock:
            if self._closed:
                raise SchemaError(f'WAL {self.path} is closed')
            temp = self.path.with_name(self.path.name + '.ckpt')
            count = 0
            with open(temp, 'wb') as handle:
                handle.write(MAGIC + _HEADER.pack(self._last_lsn))
                for kind, data in records:
                    faults.fire('wal.checkpoint', index=count)
                    handle.write(encode_record(kind, data))
                    count += 1
                # End-of-snapshot sentinel: a reader that detects the
                # rewrite (file start_lsn jumped past its position)
                # replays the snapshot prefix and must not stop early
                # mid-snapshot — it consumes records until this marker
                # before honouring any ``upto`` bound again.
                handle.write(encode_record(
                    'checkpoint', {'start_lsn': self._last_lsn}))
                count += 1
                handle.flush()
                if self.sync:
                    os.fsync(handle.fileno())
            self._file.close()
            os.replace(temp, self.path)
            if self.sync:
                _fsync_dir(self.path.parent)
            self._start_lsn = self._last_lsn
            self._last_lsn += count
            self._file = open(self.path, 'ab')
            self._flush()
            return self._last_lsn

    def close(self) -> None:
        """Flush and close the append handle.  Idempotent; readers
        (:func:`read_records`) keep working on the file."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            self._file.flush()
            self._file.close()

    def __enter__(self) -> 'WriteAheadLog':
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
