"""Delta-fed read replicas: tail the WAL, apply the primary's deltas.

A :class:`ReplicaEngine` is a full :class:`~repro.rdbms.engine.Engine`
(own backend, own view catalog, own caches) that never accepts writes:
its state advances only by replaying the primary's write-ahead log.
Catch-up applies each ``commit`` record's coalesced deltas straight
through ``Backend.apply_deltas`` — the ∂put/get plans that *derived*
those deltas ran exactly once, on the primary — so replication costs
O(|Δ|) per transaction regardless of |DB|.  That is the paper's
incremental-view machinery doing double duty as the replication
protocol.

:class:`ReplicaSet` is the read-routing policy in front of a primary
and N replicas:

* ``round-robin`` — spread reads evenly;
* ``freshest`` — always read the replica with the highest applied LSN;
* ``min_lsn=`` per read — the read-your-writes bound: a session that
  committed at LSN n passes ``min_lsn=n`` and is guaranteed to never
  observe a replica behind its own write (the routed replica catches
  up first if needed);
* ``max_lag`` — bounded staleness for reads without a ``min_lsn``
  bound: a replica more than ``max_lag`` records behind catches up
  before serving.

Replicas tail the log either in-process (sharing the primary's
:class:`~repro.rdbms.wal.WriteAheadLog` instance for an exact lag
signal) or by file path alone — a separate process pointed at the same
log file replays the identical committed prefix, torn tails excluded
by checksum.
"""

from __future__ import annotations

import threading
import time
from pathlib import Path

from repro.errors import SchemaError
from repro.rdbms import faults
from repro.rdbms.engine import Engine
from repro.rdbms.wal import (WriteAheadLog, read_records, read_start_lsn,
                             scan_tail)
from repro.relational.database import Database
from repro.relational.schema import DatabaseSchema

__all__ = ['ReplicaEngine', 'ReplicaSet']


class ReplicaEngine:
    """A read-only engine kept fresh by replaying a primary's WAL.

    ``wal`` is the primary's :class:`WriteAheadLog` (in-process; lag is
    then exact and free) or a path to its log file (file-tail; lag
    scans the file's frames).  ``catch_up()`` applies every committed
    record past the replica's ``applied_lsn``; reads are served from
    whatever LSN the replica has applied — call sites wanting
    freshness bounds go through :class:`ReplicaSet`.
    """

    def __init__(self, schema: DatabaseSchema,
                 wal: str | Path | WriteAheadLog, *,
                 backend: str | None = 'memory'):
        if isinstance(wal, WriteAheadLog):
            self._wal = wal
            self._path = wal.path
        else:
            self._wal = None
            self._path = Path(wal)
        self._engine = Engine(schema, backend=backend)
        self._lock = threading.RLock()
        self.applied_lsn = 0
        self.stats = {'catch_ups': 0, 'records_applied': 0,
                      'commits_applied': 0, 'catch_up_seconds': 0.0,
                      'rotations': 0}

    @property
    def engine(self) -> Engine:
        """The embedded engine (read-only by convention; writing to it
        forks the replica from the log)."""
        return self._engine

    def tail_lsn(self) -> int:
        """The newest committed LSN in the log being tailed."""
        if self._wal is not None:
            return self._wal.last_lsn
        try:
            return scan_tail(self._path).last_lsn
        except FileNotFoundError:
            return 0

    def lag(self) -> int:
        """How many committed records this replica has not yet applied."""
        return max(0, self.tail_lsn() - self.applied_lsn)

    def catch_up(self, upto: int | None = None) -> int:
        """Apply committed records past ``applied_lsn`` (all of them,
        or stop once ``upto`` is reached).  Returns the number of
        records applied.  O(|Δ|) per record: deltas go straight to the
        backend, no plan runs.

        **Rotation handling.**  The primary's ``checkpoint()``
        atomically replaces the log file with a snapshot prefix whose
        header ``start_lsn`` jumps past a mid-history tailer.  The
        snapshot's records do not correspond to historical states
        record-by-record (each ``load`` replaces one whole table), so
        an ``upto`` bound must not stop *inside* it — that would leave
        some tables from the snapshot and others from the old history,
        a state the primary never had.  When the header LSN has jumped
        past ``applied_lsn``, the early-stop is suspended until the
        end-of-snapshot ``checkpoint`` sentinel is consumed."""
        if faults.fire('replica.catch_up') == 'stall':
            return 0                   # injected stalled tail: no-op
        applied = 0
        started = time.perf_counter()
        with self._lock:
            in_snapshot = read_start_lsn(self._path) > self.applied_lsn
            if in_snapshot and self.applied_lsn:
                self.stats['rotations'] += 1
            for record in read_records(self._path,
                                       after=self.applied_lsn):
                self._engine.apply_wal_record(record.kind, record.data)
                self.applied_lsn = record.lsn
                applied += 1
                if record.kind == 'commit':
                    self.stats['commits_applied'] += 1
                if in_snapshot:
                    if record.kind == 'checkpoint':
                        in_snapshot = False
                    else:
                        continue       # never stop mid-snapshot
                if upto is not None and record.lsn >= upto:
                    break
            if applied:
                self.stats['records_applied'] += applied
                self.stats['catch_ups'] += 1
                self.stats['catch_up_seconds'] += \
                    time.perf_counter() - started
        return applied

    def rows(self, name: str, *, min_lsn: int | None = None):
        """Read a table or view at the replica's applied LSN.  With
        ``min_lsn``, catch up first when behind — the read-your-writes
        guarantee."""
        with self._lock:
            if min_lsn is not None and self.applied_lsn < min_lsn:
                self.catch_up(upto=min_lsn)
            return self._engine.rows(name)

    def database(self) -> Database:
        """Frozen base-table snapshot at the replica's applied LSN."""
        with self._lock:
            return self._engine.database()

    def close(self) -> None:
        self._engine.close()

    def __enter__(self) -> 'ReplicaEngine':
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


class ReplicaSet:
    """Read-routing over one primary and its replicas.

    ``policy`` picks the replica for an unbounded read: ``round-robin``
    rotates, ``freshest`` takes the highest applied LSN.  ``max_lag``
    bounds staleness (a routed replica further behind catches up before
    serving); ``read(..., min_lsn=n)`` additionally guarantees
    read-your-writes for a session that committed at LSN n.  Writes
    never route here — they stay on the primary, whose WAL feeds every
    replica.

    ``primary`` is any object exposing ``rows(name)`` and a
    ``commit_lsn`` attribute — an in-process
    :class:`~repro.rdbms.engine.Engine`, or a process shard whose
    worker owns the log the replicas tail.

    **Degradation.**  A replica whose tail *raises* (truncated log
    file, backend error, injected fault) is quarantined — dropped from
    the rotation (the monotonic ``stats['quarantines']`` counter ticks,
    and the live ``stats['quarantined']``/``stats['in_rotation']``
    gauges move) — and the read retries on the remaining replicas,
    falling back to the primary when none are left.  A replica whose
    tail merely *stalls* (catch-up applies nothing and the freshness
    bound is still unmet) keeps its place in the rotation but the
    bounded read degrades to the primary (``stats['stalled_reads']``):
    staleness bounds are honoured, and errors never propagate to the
    reader.  ``reinstate()`` restores quarantined replicas and the
    gauges with them.
    """

    POLICIES = ('round-robin', 'freshest')

    def __init__(self, primary, replicas, *,
                 policy: str = 'round-robin', max_lag: int = 0):
        if policy not in self.POLICIES:
            raise SchemaError(f'unknown read policy {policy!r} '
                              f'(expected one of {self.POLICIES})')
        self.primary = primary
        self.replicas = list(replicas)
        self.policy = policy
        self.max_lag = max_lag
        self._lock = threading.Lock()
        self._cursor = 0
        self._quarantined: list[ReplicaEngine] = []
        #: ``quarantines`` is a *monotonic counter* (total quarantine
        #: events, never decremented); ``in_rotation``/``quarantined``
        #: are *live gauges* that move in both directions as replicas
        #: leave and re-enter the rotation — ``reinstate()`` restores
        #: them.  (``quarantined`` was previously counter-shaped: it
        #: never came back down on reinstate.)
        self.stats = {'replica_reads': 0, 'primary_reads': 0,
                      'catch_ups': 0, 'quarantines': 0,
                      'stalled_reads': 0,
                      'in_rotation': len(self.replicas),
                      'quarantined': 0}

    def commit_lsn(self) -> int:
        """The primary's newest committed LSN — the token a session
        passes back as ``min_lsn`` to read its own writes."""
        return self.primary.commit_lsn

    def _pick(self) -> 'ReplicaEngine | None':
        with self._lock:
            if not self.replicas:
                return None
            if self.policy == 'freshest':
                return max(self.replicas, key=lambda r: r.applied_lsn)
            replica = self.replicas[self._cursor % len(self.replicas)]
            self._cursor += 1
        return replica

    def read(self, name: str, *, min_lsn: int | None = None):
        """Route one read.  Serves from the primary when the set has no
        (healthy) replicas or the routed replica cannot meet the
        freshness bound; quarantines a replica that raises and retries
        (see class docstring)."""
        while True:
            replica = self._pick()
            if replica is None:
                break                       # no healthy replica left
            try:
                behind = (min_lsn is not None
                          and replica.applied_lsn < min_lsn)
                stale = min_lsn is None and self.max_lag >= 0 \
                    and replica.lag() > self.max_lag
                if behind or stale:
                    replica.catch_up(upto=min_lsn)
                    self.stats['catch_ups'] += 1
                    still_behind = (min_lsn is not None
                                    and replica.applied_lsn < min_lsn)
                    still_stale = (min_lsn is None
                                   and replica.lag() > self.max_lag)
                    if still_behind or still_stale:
                        # Stalled tail: the bound is unmet and another
                        # pass would apply nothing new.  Degrade this
                        # read to the primary; the replica stays in
                        # rotation (it may recover on its own).
                        self.stats['stalled_reads'] += 1
                        break
                rows = replica.rows(name)
            except Exception:
                self.quarantine(replica)
                continue
            self.stats['replica_reads'] += 1
            return rows
        self.stats['primary_reads'] += 1
        return self.primary.rows(name)

    def quarantine(self, replica: ReplicaEngine) -> None:
        """Remove ``replica`` from the read rotation (idempotent).
        Called automatically when a replica's tail raises; callable
        directly by an operator."""
        with self._lock:
            if replica in self.replicas:
                self.replicas.remove(replica)
                self._quarantined.append(replica)
                self.stats['quarantines'] += 1
                self.stats['in_rotation'] = len(self.replicas)
                self.stats['quarantined'] = len(self._quarantined)

    @property
    def quarantined(self) -> tuple:
        """The replicas currently out of rotation."""
        return tuple(self._quarantined)

    def reinstate(self, replica: 'ReplicaEngine | None' = None) -> int:
        """Return quarantined replicas (one, or all) to the rotation —
        the operator's lever once the underlying fault is fixed.
        Returns how many came back."""
        with self._lock:
            back = (list(self._quarantined) if replica is None
                    else [replica] if replica in self._quarantined
                    else [])
            for one in back:
                self._quarantined.remove(one)
                self.replicas.append(one)
            self.stats['in_rotation'] = len(self.replicas)
            self.stats['quarantined'] = len(self._quarantined)
        return len(back)

    def metrics_snapshot(self) -> dict:
        """This router's stats in registry-snapshot shape (see
        rdbms/metrics.py) so a coordinator can fold it into a merged
        ``metrics()`` view: monotonic series become ``replica.*``
        counters, the rotation/lag state becomes gauges.  ``lag`` is
        the worst in-rotation lag at call time (a file-tail scan per
        replica — operator path, not hot path)."""
        with self._lock:
            stats = dict(self.stats)
            rotation = list(self.replicas)
        counters = {f'replica.{key}': value
                    for key, value in stats.items()
                    if key not in ('in_rotation', 'quarantined')}
        records = sum(r.stats['records_applied'] for r in rotation)
        seconds = sum(r.stats['catch_up_seconds'] for r in rotation)
        counters['replica.records_applied'] = records
        counters['replica.catch_up_seconds'] = seconds
        gauges = {
            'replica.in_rotation': float(stats['in_rotation']),
            'replica.quarantined': float(stats['quarantined']),
            'replica.lag': float(max((r.lag() for r in rotation),
                                     default=0)),
        }
        return {'counters': counters, 'gauges': gauges,
                'histograms': {}}

    def catch_up(self) -> int:
        """Bring every in-rotation replica fully up to date (records
        applied)."""
        return sum(replica.catch_up() for replica in self.replicas)

    def max_applied_lsn(self) -> int:
        return max((r.applied_lsn for r in self.replicas), default=0)

    def close(self) -> None:
        """Close the replicas, quarantined ones included (the
        primary's owner closes the primary)."""
        for replica in self.replicas + self._quarantined:
            replica.close()

    def __enter__(self) -> 'ReplicaSet':
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
