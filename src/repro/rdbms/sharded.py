"""A sharded engine over key-range partitions of the base tables.

The paper's putback strategies are *deterministic* Datalog programs, so
a sharded deployment must produce bit-identical source updates to a
single-node engine — the distribution setting of the companion work
("Making View Update Strategies Programmable — Toward Controlling and
Sharing Distributed Data").  :class:`ShardedEngine` partitions every
base table by a declared shard key across N inner
:class:`~repro.rdbms.engine.Engine` instances, each with its own
:class:`~repro.rdbms.backends.base.Backend` — hot shards on
``MemoryBackend``, cold shards on ``SQLiteBackend`` — and composes the
engine's reusable transaction pipeline (``begin`` /
``apply_statements`` / ``prepare_commit`` / ``apply_prepared``) rather
than reimplementing it.

**Partitioning.**  ``shard_keys`` declares, per relation (and per
view), the attribute whose value a :class:`Partitioner` maps to a shard
index: :class:`HashPartitioner` (stable modular/CRC hashing) or
:class:`RangePartitioner` (an explicit ordered range map).  A view is
*shard-local* when it declares a shard key and every relation its
putback can reach — its ``update_closure``, its sources, and the base
tables transitively underneath — is partitioned on the **same-named**
attribute.  Shard-local view updates then decompose exactly: a view
delta routed to the shards owning its rows is translated by each
shard's own trigger pipeline, and the resulting source deltas land on
the same shard by construction (the putback preserves the key
variable).

**Global fallback.**  A strategy whose ``update_closure`` writes a
relation partitioned on a *different* key (or not partitioned at all)
cannot be routed shard-locally; running it on one shard against
partitioned sources would be silently wrong.  Such views fall back to
a documented single-shard **global** placement, detected at
:meth:`define_view` time: the view is pinned to ``global_shard`` and
every base table underneath it is demoted to global placement too (its
rows migrate to the global shard).  Demotion refuses — with a
:class:`~repro.errors.SchemaError` — when a base is already serving an
existing shard-local view, since one relation cannot be both
partitioned and pinned.

**Routing.**  INSERTs route by the inserted row's key; DELETEs route by
a key-binding WHERE or broadcast; UPDATEs that do not touch the shard
key broadcast (rows cannot move); UPDATEs that *assign* the shard key
are derived centrally — the matched rows are gathered from every
shard's transaction state and re-emitted as per-shard DELETE + INSERT
statements on the owning shards (``Delta.split`` is the same operation
at the delta level).  ``get`` answers by scatter-gather union over the
per-shard view caches.

**Atomicity.**  A transaction prepares every touched shard first (plan
runs, ⊥-constraint checks, schema validation — everything that can
fail) and applies the prepared storage batches only after *all* shards
prepared, so an abort mid-transaction leaves every shard untouched.

**Parallelism.**  ``ShardedEngine(parallelism=N)`` backs the pipeline
with a thread pool: statement fan-out (``apply_statements`` per routed
shard), the cluster flush gate, the two-phase ``prepare_commit`` and
the apply phase all run concurrently across the shards a transaction
touches, and ``get``/``rows`` scatter-gathers reads concurrently.
Per-shard state keeps the fan-out safe: each shard is one inner engine
with its own backend (SQLite backends lease one connection per worker
thread), compiled plans are immutable and shared, and the engine
pipeline holds no engine-global mutable state during prepare.  Results
are bit-identical to ``parallelism=1``: workers run every task to
completion and the coordinator joins them in the order the serial loop
would have run, so the *first* error — in first-touched shard order —
is the one raised, no matter which worker failed first (the fuzz
oracle's ``parallel`` axis pins this).  Reads during an in-flight
transaction's *prepare* phase see pre-transaction state and are never
blocked (prepare stages in Python; only the apply phase writes
storage, and it excludes readers per shard with a lock).  During the
brief apply phase itself, consistency is per shard: a multi-shard
scatter-gather racing the apply may combine shards from either side
of the commit — cross-shard snapshot isolation for readers is future
work.

**Process execution.**  ``ShardedEngine(execution='processes')`` moves
each shard into a worker *process* (:mod:`repro.rdbms.procpool`),
escaping the GIL that makes the thread mode ≈ serial on CPU-bound
putbacks.  The coordinator logic above is unchanged — routing, the
flush gate, placement, 2PC — but each shard is driven through an RPC
client instead of an inner engine: statement fan-out is *pipelined*
(fire-and-forget submits whose outcomes are collected at the next
barrier **in submission order**, which is the serial execution order,
so the first error raised is serial-identical), while prepare, apply
and scatter-gather reads are synchronous RPCs overlapped by the same
thread pool (each blocks in ``recv``, releasing the GIL, so N workers
genuinely compute in parallel).  A worker death surfaces as
:class:`~repro.errors.ShardUnavailableError`: the cluster transaction
aborts on every surviving shard (staging never touches storage, so
abandoning it *is* rollback) and the pool restarts the worker.  Thread
mode routes through the same :class:`LocalShard` client, so both modes
run one code path and the differential fuzz oracle holds them
bit-identical.

**Fault tolerance.**  With ``wal_dir`` set, *both* executions are
durable: thread mode logs in the shard engines, process mode threads
``wal_dir/shard-<i>.wal`` into each worker — the worker's fsynced
append is its commit point, a restarted worker replays the committed
prefix, and a worker killed *mid-apply* is repaired from its prepare
reply (:meth:`~repro.rdbms.procpool.ProcessShard._repair_apply`), so a
SIGKILL anywhere in the 2PC loses no committed transaction.
``commit_lsns()`` and read-replica routing work uniformly across both
modes (process-mode replicas tail the shard logs by file path).
``rpc_timeout`` turns a *wedged* worker into
:class:`~repro.errors.ShardUnavailableError` instead of a hung
coordinator, and ``transient_retries`` re-runs a cluster transaction
that aborted cleanly on a worker failure (never one whose apply phase
partially committed).  Fault injection for all of this lives in
:mod:`repro.rdbms.faults`.
"""

from __future__ import annotations

import tempfile
import threading
import time
import zlib
from abc import ABC, abstractmethod
from bisect import bisect_right
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path
from typing import Callable, Iterable, Mapping, Sequence

from repro.core.strategy import UpdateStrategy
from repro.core.validation import ValidationReport, validate
from repro.datalog.ast import (Lit, Program, Rule, Var, delta_base,
                               is_delta_pred)
from repro.errors import SchemaError, ShardUnavailableError
from repro.rdbms.backends import (BACKENDS, Backend,
                                  create_shard_backends)
from repro.rdbms.dml import (Delete, Insert, Statement, Update,
                             _apply_assignments, compile_where)
from repro.rdbms.engine import (Engine, Transaction, ViewEntry,
                                coalesce_buckets)
from repro.rdbms.metrics import GLOBAL, MetricsRegistry, merge_snapshots
from repro.rdbms.procpool import ProcessPool
from repro.rdbms.replica import ReplicaEngine, ReplicaSet
from repro.relational.database import Database
from repro.relational.delta import Delta
from repro.relational.schema import DatabaseSchema, RelationSchema

__all__ = ['Partitioner', 'HashPartitioner', 'RangePartitioner',
           'LocalShard', 'ShardedEngine']


# ---------------------------------------------------------------------------
# Partitioners
# ---------------------------------------------------------------------------


class Partitioner(ABC):
    """Maps a shard-key *value* to a shard index in ``[0, n_shards)``.

    Implementations must respect value equality: ``x == y`` implies
    ``shard_of(x) == shard_of(y)`` — WHERE clauses match rows with
    ``==`` (where ``1 == 1.0 == True``), so a partitioner that told
    equal values apart would route a keyed statement away from the
    rows it matches."""

    def __init__(self, n_shards: int):
        if n_shards < 1:
            raise SchemaError(f'need at least one shard, got {n_shards}')
        self.n_shards = n_shards

    @abstractmethod
    def shard_of(self, value) -> int:
        """The shard owning rows whose key equals ``value``."""


class HashPartitioner(Partitioner):
    """Stable hash partitioning: numbers by modulus, everything else
    by CRC-32 of its ``repr`` — deliberately *not* Python's built-in
    ``hash``, whose string seed changes per process and would make two
    runs (or a differential test against a persisted SQLite shard)
    disagree about row ownership.  Numeric values that compare equal
    (``1``/``1.0``/``True``) normalise to the same shard."""

    def shard_of(self, value) -> int:
        # Normalise every numeric type onto one representative so
        # ==-equal values (True/1/1.0/Decimal(1), and inf/Decimal
        # ('Infinity') via the float step) share a shard; non-numerics
        # fall through to the repr hash.
        if isinstance(value, complex) and value.imag == 0:
            value = value.real
        if not isinstance(value, str):
            try:
                as_int = int(value)
                if as_int == value:
                    return as_int % self.n_shards
            except (TypeError, ValueError, OverflowError):
                pass
            try:
                value = float(value)
            except (TypeError, ValueError, OverflowError):
                pass
        return zlib.crc32(repr(value).encode('utf-8')) % self.n_shards


class RangePartitioner(Partitioner):
    """Explicit key-range partitioning over ``len(boundaries) + 1``
    shards: shard 0 owns values below ``boundaries[0]``, shard *i* owns
    ``boundaries[i-1] <= value < boundaries[i]``, the last shard owns
    the rest.  Boundaries must be sorted and mutually comparable with
    every key value (one key type per partitioned schema)."""

    def __init__(self, boundaries: Sequence):
        boundaries = tuple(boundaries)
        if list(boundaries) != sorted(boundaries) or \
                any(a == b for a, b in zip(boundaries, boundaries[1:])):
            raise SchemaError(f'range boundaries must be strictly '
                              f'increasing, got {boundaries!r} (a '
                              f'duplicate boundary would declare a '
                              f'shard that can never own a row)')
        super().__init__(len(boundaries) + 1)
        self.boundaries = boundaries

    def shard_of(self, value) -> int:
        return bisect_right(self.boundaries, value)


# ---------------------------------------------------------------------------
# Shard clients
# ---------------------------------------------------------------------------


class LocalShard:
    """In-process shard client: the thread-mode counterpart of
    :class:`~repro.rdbms.procpool.ProcessShard`, presenting the same
    surface over an inner engine on the coordinator's heap.  Reads and
    the apply phase take the shard's lock (the per-shard writer/reader
    exclusion of §"Parallelism"); transaction staging is lock-free."""

    def __init__(self, index: int, engine: Engine):
        self.index = index
        self.engine = engine
        self._lock = threading.RLock()

    # -- transaction pipeline -----------------------------------------

    def begin(self):
        return self.engine.begin()

    def apply_statements(self, handle, target: str, statements) -> None:
        self.engine.apply_statements(handle, target, statements)

    def flush_reads(self, handle, target: str) -> None:
        self.engine.flush_reads(handle, target)

    def txn_rows(self, handle, target: str) -> frozenset:
        self.engine.flush_reads(handle, target)
        return frozenset(handle.rows(target))

    def prepare_commit(self, handle):
        return self.engine.prepare_commit(handle)

    def apply_prepared(self, prepared) -> None:
        with self._lock:
            self.engine.apply_prepared(prepared)

    def abort(self, handle) -> None:
        """Abandoning the working IS rollback — staging never touches
        storage (§"Atomicity")."""

    # -- storage / catalog --------------------------------------------

    def rows(self, name: str) -> frozenset:
        with self._lock:
            return frozenset(self.engine.rows(name))

    def snapshot(self) -> Database:
        with self._lock:
            return self.engine.database()

    def load(self, name: str, rows) -> None:
        with self._lock:
            self.engine.load(name, rows)

    def count(self, name: str) -> int:
        return self.engine.backend.count(name)

    def has_cache(self, name: str) -> bool:
        return self.engine.backend.has_cache(name)

    def define_view(self, strategy, *, report=None,
                    use_incremental: bool = True, stats=None,
                    exist_ok: bool = False):
        return self.engine.define_view(strategy, report=report,
                                       validate_first=False,
                                       use_incremental=use_incremental,
                                       stats=stats, exist_ok=exist_ok)

    def drop_view(self, name: str) -> None:
        self.engine.drop_view(name)

    def close(self) -> None:
        self.engine.close()


class _ClusterTxn:
    """One cross-shard transaction's coordinator-side state: the
    per-shard transaction handles in **first-touched order** (the order
    prepare joins in) and, under process execution, the submission-order
    log of pipelined RPC tokens — drained at the next barrier in exactly
    the order the serial loop would have executed the calls, so the
    first error to surface is the serial-identical one."""

    __slots__ = ('handles', 'log')

    def __init__(self):
        self.handles: dict[int, object] = {}
        self.log: list[tuple[object, int]] = []


def _process_backend_specs(spec, n_shards: int) -> list:
    """Per-shard backend *kind names* for process execution, mirroring
    :func:`~repro.rdbms.backends.create_shard_backends` — except that
    prebuilt instances are rejected outright: a backend constructed in
    the coordinator cannot cross the fork (SQLite connections are
    process-bound), which is exactly why workers build their own."""
    reject = ('process shards construct their backend inside the '
              'worker (connections must not cross the fork); pass '
              'backend kind names, not instances')
    if isinstance(spec, Backend):
        raise SchemaError(reject)
    if spec is None or isinstance(spec, str):
        spec = [spec] * n_shards
    else:
        spec = list(spec)
    if len(spec) != n_shards:
        raise SchemaError(
            f'{len(spec)} shard backends specified for {n_shards} shards')
    for kind in spec:
        if isinstance(kind, Backend):
            raise SchemaError(reject)
        if kind is not None and kind not in BACKENDS:
            # Fail here, in the coordinator, with the canonical error —
            # a worker dying on a bad name would surface as an opaque
            # ShardUnavailableError instead.
            raise SchemaError(f'unknown backend {kind!r}; expected one '
                              f'of {sorted(BACKENDS)}')
    return spec


# ---------------------------------------------------------------------------
# The sharded engine
# ---------------------------------------------------------------------------

#: Set inside pool workers so nested coordinator calls (a worker that
#: ends up back in ShardedEngine code) never re-submit to the pool —
#: re-entrant submission from a full pool would deadlock.
_IN_WORKER = threading.local()


def _run_in_worker(thunk: Callable):
    _IN_WORKER.active = True
    return thunk()


class ShardedEngine:
    """N inner engines over key-range partitions, one backend each.

    Drop-in for :class:`~repro.rdbms.engine.Engine` on the DML surface
    (``insert``/``delete``/``update``/``execute``/``execute_many``/
    ``transaction``/``rows``/``database``/``load``/``define_view``).

    Parameters
    ----------
    shards:
        Shard count (default 2; inferred from ``backends`` or
        ``partitioner`` when those are given).
    backends:
        Per-shard storage — ``None``/a kind name for uniform shards, or
        a sequence mixing kinds and prebuilt Backend instances (hot
        shards in memory, cold shards in SQLite files); resolved by
        :func:`repro.rdbms.backends.create_shard_backends`.
    partitioner:
        A :class:`Partitioner` (default :class:`HashPartitioner`).
    shard_keys:
        ``{relation_or_view: attribute name (or position)}`` — the
        declared shard key of each partitioned relation.  Relations
        without a key are *global*: stored wholly on ``global_shard``.
    parallelism:
        Worker threads for the per-shard fan-out (capped at the shard
        count).  Defaults to ``1`` under thread execution — the serial
        baseline: every pipeline phase runs inline on the calling
        thread, with identical results (§"Parallelism" in the module
        docstring) — and to the shard count under process execution,
        where the threads only overlap blocking RPCs.
    execution:
        ``'threads'`` (inner engines on the coordinator's heap, default)
        or ``'processes'`` (one worker process per shard, §"Process
        execution"); results are bit-identical either way.
    rpc_timeout:
        Process execution only: seconds each RPC waits for its reply
        before the shard surfaces as
        :class:`~repro.errors.ShardUnavailableError` — a *wedged*
        worker (alive but stuck) no longer blocks the coordinator
        forever.  ``None`` waits indefinitely (the pre-timeout
        behaviour).
    transient_retries:
        Retry a cluster transaction up to this many times after a
        worker failure that aborted it *cleanly* (prepare-phase death,
        dropped RPC — the abort rolled every shard back and the dead
        worker was restarted).  An apply-phase failure that may have
        partially committed is never retried.  ``retry_backoff`` is the
        initial sleep between attempts, doubling each retry.
    """

    def __init__(self, schema: DatabaseSchema, *,
                 shards: int | None = None,
                 backends=None,
                 partitioner: Partitioner | None = None,
                 shard_keys: Mapping[str, str | int] | None = None,
                 batch_deltas: bool = True,
                 global_shard: int = 0,
                 parallelism: int | None = None,
                 execution: str = 'threads',
                 wal_dir=None,
                 wal_sync: bool = True,
                 read_replicas: int = 0,
                 read_policy: str = 'round-robin',
                 replica_max_lag: int = 0,
                 rpc_timeout: float | None = 120.0,
                 transient_retries: int = 0,
                 retry_backoff: float = 0.05,
                 retry_backoff_cap: float = 2.0,
                 retry_max_wait: float = 15.0):
        if execution not in ('threads', 'processes'):
            raise SchemaError(f"execution must be 'threads' or "
                              f"'processes', got {execution!r}")
        if transient_retries < 0:
            raise SchemaError(f'transient_retries must be >= 0, '
                              f'got {transient_retries}')
        if retry_backoff_cap <= 0:
            raise SchemaError(f'retry_backoff_cap must be > 0, '
                              f'got {retry_backoff_cap}')
        if retry_max_wait <= 0:
            raise SchemaError(f'retry_max_wait must be > 0, '
                              f'got {retry_max_wait}')
        if read_replicas < 0:
            raise SchemaError(f'read_replicas must be >= 0, '
                              f'got {read_replicas}')
        if shards is None:
            if partitioner is not None:
                shards = partitioner.n_shards
            elif backends is not None and \
                    not isinstance(backends, str) and \
                    hasattr(backends, '__len__'):
                shards = len(backends)
            else:
                shards = 2
        self.schema = schema
        self.partitioner = partitioner or HashPartitioner(shards)
        if self.partitioner.n_shards != shards:
            raise SchemaError(
                f'partitioner covers {self.partitioner.n_shards} shards '
                f'but {shards} were requested')
        if not 0 <= global_shard < shards:
            raise SchemaError(f'global_shard {global_shard} out of range '
                              f'for {shards} shards')
        self.global_shard = global_shard
        self.batch_deltas = batch_deltas
        self.execution = execution
        if parallelism is None:
            # Threads default to the serial baseline; processes default
            # to full fan-out — overlapping the workers is the whole
            # point of paying for them.
            parallelism = shards if execution == 'processes' else 1
        if parallelism < 1:
            raise SchemaError(f'parallelism must be >= 1, '
                              f'got {parallelism}')
        self.parallelism = min(parallelism, shards)
        self._pool: ThreadPoolExecutor | None = None
        self._pool_lock = threading.Lock()
        self._transient_retries = transient_retries
        self._retry_backoff = retry_backoff
        # The exponential backoff is bounded twice (the uncapped
        # doubling could sleep for minutes at large transient_retries):
        # no single sleep exceeds ``retry_backoff_cap`` and the summed
        # sleeps never exceed ``retry_max_wait`` — the budget runs out
        # before the attempt count does, the retry loop gives up.
        self._retry_backoff_cap = retry_backoff_cap
        self._retry_max_wait = retry_max_wait
        #: coordinator-side instrumentation: cluster phase timings
        #: (route/prepare/apply), transaction counts, retry traffic.
        #: :meth:`metrics` merges this with every shard's own snapshot.
        self._metrics = MetricsRegistry()
        #: Post-commit hooks: each callable receives the committed
        #: transaction's bucket targets (a tuple of relation names)
        #: after the cluster apply phase.  The coordinator-side
        #: analogue of ``Engine.commit_listeners`` — worker engines
        #: live behind the RPC boundary, so the peer network hooks the
        #: coordinator and republishes by diffing the shared view.
        self.commit_listeners: list = []
        # Durability + read replicas (both executions): each shard logs
        # to ``wal_dir/shard-<i>.wal`` — opened by the shard engine in
        # thread mode, *inside the worker* in process mode; replicas
        # tail their shard's log (in-process or by file path).
        # ``read_replicas`` without an explicit wal_dir uses an owned
        # temporary directory — the replication substrate without the
        # durability contract.
        self._wal_tmpdir = None
        wal_paths: list = [None] * shards
        if wal_dir is None and read_replicas:
            self._wal_tmpdir = tempfile.TemporaryDirectory(
                prefix='repro-wal-')
            wal_dir = self._wal_tmpdir.name
        if wal_dir is not None:
            base = Path(wal_dir)
            base.mkdir(parents=True, exist_ok=True)
            wal_paths = [base / f'shard-{i}.wal'
                         for i in range(shards)]
        self._wal_paths = tuple(wal_paths)
        if execution == 'processes':
            self._procpool: ProcessPool | None = ProcessPool(
                schema, _process_backend_specs(backends, shards),
                batch_deltas=batch_deltas,
                wal_paths=(wal_paths if wal_dir is not None else None),
                wal_sync=wal_sync, rpc_timeout=rpc_timeout)
            self.shards = self._procpool.shards
            #: the inner engines live in the workers under process
            #: execution; thread-mode introspection goes via .engines
            self.engines: tuple[Engine, ...] = ()
        else:
            self._procpool = None
            shard_backends = create_shard_backends(backends, schema,
                                                   shards)
            self.engines = tuple(Engine(schema, backend=b,
                                        batch_deltas=batch_deltas,
                                        wal=path, wal_sync=wal_sync)
                                 for b, path in zip(shard_backends,
                                                    wal_paths))
            for engine in self.engines:
                # Planner statistics (define_view seed AND drift
                # re-plans) come from cluster-wide aggregated counts,
                # never from one shard's local sizes.  (Process workers
                # cannot call back mid-transaction: their define_view
                # seed is the aggregated stats the coordinator ships,
                # and drift re-plans use local counts — which only ever
                # changes a join order, never a result.)
                engine.stats_provider = self._aggregated_stats
            self.shards = tuple(LocalShard(index, engine)
                                for index, engine
                                in enumerate(self.engines))
        #: one ReplicaSet per shard (empty tuple when read_replicas=0):
        #: reads fan across them, writes stay on the shard primaries.
        self.replica_sets: tuple[ReplicaSet, ...] = ()
        if read_replicas:
            # Thread mode shares the primary's WriteAheadLog instance
            # (exact lag); process mode tails the worker's log by file
            # path — same committed prefix, torn tails excluded by
            # checksum — with the ProcessShard client as the primary.
            primaries = self.engines or self.shards
            feeds = [engine.wal for engine in self.engines] \
                or list(self._wal_paths)
            self.replica_sets = tuple(
                ReplicaSet(primary,
                           [ReplicaEngine(schema, feed)
                            for _ in range(read_replicas)],
                           policy=read_policy,
                           max_lag=replica_max_lag)
                for primary, feed in zip(primaries, feeds))
        self._entries: dict[str, ViewEntry] = {}
        #: relation/view -> None (partitioned) or the pinned shard index
        self._placement: dict[str, int | None] = {}
        self._key_pos: dict[str, int] = {}
        self._key_attr: dict[str, str] = {}
        #: unresolved key declarations for views defined later
        self._pending_keys: dict[str, str | int] = {}
        for name, key in dict(shard_keys or {}).items():
            if name in schema:
                pos, attr = _resolve_key(schema[name], key)
                self._placement[name] = None
                self._key_pos[name] = pos
                self._key_attr[name] = attr
            else:
                self._pending_keys[name] = key
        for rel in schema.names():
            self._placement.setdefault(rel, self.global_shard)

    # -- the worker pool ----------------------------------------------

    def _ensure_pool(self) -> ThreadPoolExecutor | None:
        if self.parallelism <= 1:
            return None
        pool = self._pool
        if pool is None:
            with self._pool_lock:
                pool = self._pool
                if pool is None:
                    pool = ThreadPoolExecutor(
                        max_workers=self.parallelism,
                        thread_name_prefix='repro-shard')
                    self._pool = pool
        return pool

    def _pmap(self, thunks: Sequence[Callable]) -> list:
        """Run ``thunks`` and return their results in order.

        Parallel mode fans the thunks out to the pool, waits for ALL of
        them, and raises the first exception *in thunk order* — the
        error the serial loop would have raised, regardless of which
        worker actually failed first.  Runs inline when there is
        nothing to overlap (one thunk, ``parallelism=1``) or when the
        calling thread is itself a pool worker (re-submitting from
        inside the pool could exhaust it and deadlock)."""
        if len(thunks) <= 1 or self.parallelism <= 1 \
                or getattr(_IN_WORKER, 'active', False):
            return [thunk() for thunk in thunks]
        pool = self._ensure_pool()
        futures = [pool.submit(_run_in_worker, thunk)
                   for thunk in thunks]
        results: list = []
        first_error: BaseException | None = None
        for future in futures:
            try:
                results.append(future.result())
            except BaseException as error:
                if first_error is None:
                    first_error = error
                results.append(None)
        if first_error is not None:
            raise first_error
        return results

    # -- configuration introspection ----------------------------------

    @property
    def n_shards(self) -> int:
        return len(self.shards)

    def is_view(self, name: str) -> bool:
        return name in self._entries

    def view(self, name: str) -> ViewEntry:
        try:
            return self._entries[name]
        except KeyError:
            raise SchemaError(f'unknown view {name!r}') from None

    def relations(self) -> tuple[str, ...]:
        return self.schema.names() + tuple(self._entries)

    def placement(self, name: str):
        """``'partitioned'`` or the pinned (global) shard index."""
        place = self._placement_of(name)
        return 'partitioned' if place is None else place

    def is_partitioned(self, name: str) -> bool:
        return self._placement_of(name) is None

    def shard_key(self, name: str) -> str | None:
        """The declared shard-key attribute of a partitioned relation."""
        return self._key_attr.get(name)

    @property
    def unresolved_shard_keys(self) -> tuple[str, ...]:
        """``shard_keys`` entries naming neither a base table nor any
        view defined so far.  Such entries are legitimate *before* the
        named view's ``define_view`` call; one still listed after all
        views are defined is a typo (e.g. ``'item'`` for ``'items'``)
        that silently left the intended relation on global placement —
        assert this is empty after setup."""
        return tuple(sorted(name for name in self._pending_keys
                            if name not in self._entries))

    def _placement_of(self, name: str) -> int | None:
        try:
            return self._placement[name]
        except KeyError:
            raise SchemaError(f'unknown relation {name!r}') from None

    def _shard_of_row(self, name: str, row: tuple) -> int:
        return self.partitioner.shard_of(row[self._key_pos[name]])

    def classifier(self, name: str):
        """The partition predicate of ``name`` — the row → shard map
        that :meth:`repro.relational.delta.Delta.split` routes deltas
        with.  Global relations map every row to their pinned shard."""
        place = self._placement_of(name)
        if place is not None:
            return lambda row: place
        key = self._key_pos[name]
        shard_of = self.partitioner.shard_of
        return lambda row: shard_of(row[key])

    # -- storage access ------------------------------------------------

    def _read_shard(self, index: int, name: str) -> frozenset:
        """One *primary* shard's contents of ``name``, copied under the
        shard lock (worker-serialised for process shards) so an apply
        phase cannot mutate the rows mid-copy.  Internal machinery
        (migrations, diagnostics) reads here; replica routing happens
        one level up, in :meth:`_read_routed`."""
        return self.shards[index].rows(name)

    def _read_routed(self, index: int, name: str,
                     min_lsn: int | None) -> frozenset:
        """One shard's contents for an external read: through the
        shard's :class:`ReplicaSet` when replicas are attached (the
        primary only sees the write path), else the primary."""
        if self.replica_sets:
            return frozenset(
                self.replica_sets[index].read(name, min_lsn=min_lsn))
        return self._read_shard(index, name)

    def _shard_min_lsns(self, min_lsn) -> list:
        """Normalise a read bound: ``None``, one int for every shard,
        or a per-shard sequence (what :meth:`commit_lsns` returned)."""
        if min_lsn is None or isinstance(min_lsn, int):
            return [min_lsn] * self.n_shards
        bounds = list(min_lsn)
        if len(bounds) != self.n_shards:
            raise SchemaError(
                f'min_lsn sequence covers {len(bounds)} shards, '
                f'engine has {self.n_shards}')
        return bounds

    def rows(self, name: str, *, min_lsn=None) -> frozenset:
        """Scatter-gather union of ``name`` across its shards (the
        whole relation/view, exactly as the single engine reports it).
        Concurrent under ``parallelism > 1``: each shard's view cache
        is read by its own worker.  With read replicas attached the
        fan-out lands on them instead of the primaries; ``min_lsn``
        (an int, or the per-shard tuple from :meth:`commit_lsns`) is
        the read-your-writes bound."""
        bounds = self._shard_min_lsns(min_lsn)
        place = self._placement_of(name)
        if place is not None:
            return self._read_routed(place, name, bounds[place])
        parts = self._pmap([
            (lambda index=index: self._read_routed(index, name,
                                                   bounds[index]))
            for index in range(self.n_shards)])
        gathered: set = set()
        for part in parts:
            gathered |= part
        return frozenset(gathered)

    def commit_lsns(self) -> tuple[int, ...]:
        """Per-shard committed LSNs (zeros without a WAL) — pass the
        tuple back to :meth:`rows` as ``min_lsn`` to read your own
        writes through the replicas.  Uniform across executions: thread
        mode reads the shard engines, process mode asks each worker
        over RPC."""
        if self.engines:
            return tuple(engine.commit_lsn for engine in self.engines)
        if self._procpool is not None and self._wal_paths[0] is not None:
            return tuple(shard.commit_lsn for shard in self.shards)
        return (0,) * self.n_shards

    @property
    def commit_lsn(self) -> tuple[int, ...]:
        """Alias for :meth:`commit_lsns` (uniform surface with
        :attr:`Engine.commit_lsn`; the sharded commit point is a
        vector)."""
        return self.commit_lsns()

    def shard_rows(self, name: str) -> tuple[frozenset, ...]:
        """Per-shard contents of ``name`` (diagnostics and tests)."""
        return tuple(self._read_shard(index, name)
                     for index in range(self.n_shards))

    def _gather_primary(self, name: str) -> frozenset:
        """Union of ``name`` over the *primary* shards — what internal
        machinery (row migrations, statistics) must read regardless of
        replica routing."""
        place = self._placement_of(name)
        if place is not None:
            return self._read_shard(place, name)
        gathered: set = set()
        for index in range(self.n_shards):
            gathered |= self._read_shard(index, name)
        return frozenset(gathered)

    def count(self, name: str) -> int:
        """Cluster-wide cardinality, aggregated from the per-shard
        :meth:`Backend.count` (global relations live on one shard and
        the others report zero)."""
        if name in self._entries:
            return len(self._gather_primary(name))
        self._placement_of(name)
        return sum(client.count(name) for client in self.shards)

    def database(self) -> Database:
        """A frozen snapshot of the cluster-wide base-table state."""
        snapshots = self._pmap([
            (lambda client=client: client.snapshot())
            for client in self.shards])
        merged: dict[str, set] = {}
        for snapshot in snapshots:
            for name in snapshot.names():
                merged.setdefault(name, set()).update(snapshot[name])
        return Database.from_dict(merged)

    def load(self, name: str, rows: Iterable[tuple]) -> None:
        """Bulk-load a base table, splitting the rows across shards."""
        if name in self._entries or name not in self.schema:
            raise SchemaError(f'{name!r} is not a base table')
        loaded = {tuple(r) for r in rows}
        # Validate everything BEFORE any shard is replaced, like the
        # single engine: a bad row must not leave the cluster with a
        # mix of old and new shard contents.
        for row in loaded:
            self.schema[name].validate_tuple(row)
        classify = self.classifier(name)
        shares: dict[int, set] = {i: set() for i in range(self.n_shards)}
        for row in loaded:
            shares[classify(row)].add(row)
        self._pmap([
            (lambda index=index: self.shards[index].load(name,
                                                         shares[index]))
            for index in range(self.n_shards)])

    def close(self) -> None:
        """Shut the worker pool down (joining every worker, which
        bounds when per-thread backend leases stop being created) and
        close every shard — the backend's thread leases for local
        shards, the worker process for process shards.  Idempotent."""
        with self._pool_lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)
        for replica_set in self.replica_sets:
            replica_set.close()
        if self._procpool is not None:
            self._procpool.shutdown()
        else:
            for client in self.shards:
                client.close()
        if self._wal_tmpdir is not None:
            self._wal_tmpdir.cleanup()
            self._wal_tmpdir = None

    def __enter__(self) -> 'ShardedEngine':
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # -- view definition ----------------------------------------------

    def define_view(self, strategy: UpdateStrategy, *,
                    report: ValidationReport | None = None,
                    validate_first: bool = True,
                    use_incremental: bool = True,
                    exist_ok: bool = False) -> ViewEntry:
        """Register an updatable view on every shard.

        Validation runs once here (not once per shard); each inner
        engine compiles against the *aggregated* cluster-wide
        cardinalities so the per-shard planners see the same join-order
        statistics a single node would.

        ``exist_ok`` makes registration idempotent: shards that already
        carry the view (their WAL replay re-registered it during
        recovery) adopt it instead of raising, and a coordinator that
        already lists it returns the existing entry.  This is how a
        restarted coordinator rebuilds its catalog over the surviving
        shard logs — peers in the data-sharing network lean on it after
        a crash.
        """
        name = strategy.view.name
        if exist_ok and name in self._entries:
            return self._entries[name]
        if name in self.schema or name in self._entries:
            raise SchemaError(f'relation {name!r} already exists')
        for source in strategy.updated_relations():
            if source not in self.schema and source not in self._entries:
                raise SchemaError(
                    f'view {name!r} updates unknown relation {source!r}')
        if report is None and validate_first:
            report = validate(strategy)
        get_program = report.view_definition if report is not None \
            else strategy.expected_get
        placement, demotions = self._decide_placement(strategy,
                                                      get_program)
        stats = self._aggregated_stats()
        demoted: list[tuple[str, int, str]] = []
        entry: ViewEntry | None = None
        try:
            for client in self.shards:
                created = client.define_view(
                    strategy, report=report,
                    use_incremental=use_incremental, stats=stats,
                    exist_ok=exist_ok)
                if entry is None:
                    # Shard 0's entry (a pickled copy under process
                    # execution) is the cluster's catalog record.
                    entry = created
            # Cluster bookkeeping runs only once every shard accepted
            # the view; demotions are ordered after that so a failed
            # define_view cannot leave bases demoted.
            for base in demotions:
                undo = (base, self._key_pos[base], self._key_attr[base])
                self._demote_to_global(base)
                demoted.append(undo)
            self._entries[name] = entry
            if placement is None:
                pos, attr = _resolve_key(strategy.view,
                                         self._pending_keys[name])
                self._placement[name] = None
                self._key_pos[name] = pos
                self._key_attr[name] = attr
            else:
                self._placement[name] = placement
        except BaseException:
            # All-or-nothing across shards: a view registered on a
            # subset of the shards (drop_view is a no-op on the rest)
            # would wedge its name forever, and bases demoted for a
            # view that never materialised must get their partitioned
            # layout back.  A shard whose worker died is skipped (its
            # restart replays a journal that never recorded this view).
            for client in self.shards:
                try:
                    client.drop_view(name)
                except ShardUnavailableError:
                    pass
            if self._procpool is not None:
                self._procpool.restart_dead()
            self._entries.pop(name, None)
            for base, pos, attr in reversed(demoted):
                self._repartition(base, pos, attr)
            raise
        return self._entries[name]

    def _decide_placement(self, strategy: UpdateStrategy,
                          get_program: Program | None
                          ) -> tuple[int | None, list[str]]:
        """``(None, [])`` when the view can be routed shard-locally,
        else ``(global shard index, bases to demote)`` — the demotions
        are *decided* here but applied by the caller only after every
        shard accepted the view, so a failed ``define_view`` cannot
        leave the cluster degraded (§"Global fallback" in the module
        docstring).

        Shard-locality needs two proofs: every relation the putback can
        reach is partitioned on the same-named attribute, and the
        programs are *key-aligned* (:func:`_key_aligned`) — name
        matching alone would accept rules that join through a non-key
        variable and then route wrongly."""
        name = strategy.view.name
        update_closure: set[str] = set()
        for updated in strategy.updated_relations():
            update_closure.add(updated)
            if updated in self._entries:
                update_closure |= self._entries[updated].update_closure
        # Only relations the programs actually *read* constrain the
        # placement — the engine hands every schema relation to plan
        # evaluation, but unreferenced ones cannot affect the result.
        # ``get_program`` (the certified view definition when a report
        # was given) is the program the engine will evaluate, so it —
        # not ``strategy.expected_get`` — is what counts here.
        referenced: set[str] = set()
        for program in (strategy.putdelta, get_program):
            if program is not None:
                referenced |= program.edb_preds()
        known = set(self.schema.names()) | set(self._entries)
        source_names = referenced & known
        base_closure: set[str] = set()
        for source in source_names:
            if source in self._entries:
                base_closure |= self._entries[source].base_closure
            else:
                base_closure.add(source)
        relevant = (update_closure | source_names | base_closure) - {name}

        key_spec = self._pending_keys.get(name)
        if key_spec is not None:
            # A key declaration that does not resolve against the view
            # schema is a configuration error, exactly as it is for
            # base tables at construction — never a silent fallback.
            view_pos, view_attr = _resolve_key(strategy.view, key_spec)
            if all(
                    self._placement.get(rel) is None
                    and self._key_attr.get(rel) == view_attr
                    for rel in relevant):
                key_pos_of = {rel: self._key_pos[rel]
                              for rel in relevant}
                key_pos_of[name] = view_pos
                if _key_aligned(strategy.putdelta, get_program, name,
                                key_pos_of):
                    return None, []

        # Global fallback: pin the view, demote its base tables.
        demotions: list[str] = []
        for rel in sorted(relevant):
            if self._placement.get(rel) is None:
                holder = self._partitioned_view_over(rel)
                if holder is not None:
                    raise SchemaError(
                        f'view {name!r} is not shard-local (its update '
                        f'closure reaches {rel!r}, partitioned on '
                        f'{self._key_attr.get(rel)!r}) but {rel!r} '
                        f'already serves the shard-local view '
                        f'{holder!r}; declare a co-partitioned shard '
                        f'key for {name!r} or drop {rel!r} from '
                        f'shard_keys')
                if rel in self.schema:
                    demotions.append(rel)
                else:
                    # A previously defined shard-local *view* source
                    # cannot be re-placed — same conflict.
                    raise SchemaError(
                        f'view {name!r} is not shard-local but its '
                        f'source view {rel!r} is; declare a '
                        f'co-partitioned shard key for {name!r}')
        return self.global_shard, demotions

    def _partitioned_view_over(self, rel: str) -> str | None:
        for view, entry in self._entries.items():
            if self._placement.get(view) is not None:
                continue
            if rel in entry.base_closure or rel in entry.update_closure \
                    or rel in entry.source_names:
                return view
        return None

    def _demote_to_global(self, base: str) -> None:
        """Re-place a partitioned base wholly onto the global shard
        (the rows migrate; the key declaration is dropped).  The
        gathered copy is the recovery source: if any shard's load
        fails mid-migration, the partitioned layout is restored from
        it rather than leaving rows duplicated or half-moved."""
        gathered = set(self._gather_primary(base))
        try:
            for index, client in enumerate(self.shards):
                client.load(base, gathered
                            if index == self.global_shard else ())
        except BaseException:
            # _placement has not flipped yet, so a plain reload routes
            # the gathered copy back through the partitioned layout.
            self.load(base, gathered)
            raise
        self._placement[base] = self.global_shard
        self._key_pos.pop(base, None)
        self._key_attr.pop(base, None)

    def _repartition(self, base: str, pos: int, attr: str) -> None:
        """Undo a demotion: restore the key declaration and spread the
        (now global-shard) rows back over the partitioned layout."""
        gathered = set(self._gather_primary(base))
        self._placement[base] = None
        self._key_pos[base] = pos
        self._key_attr[base] = attr
        self.load(base, gathered)

    def _aggregated_stats(self) -> dict[str, int]:
        """Cluster-wide cardinalities for the per-shard planners."""
        stats = {name: sum(client.count(name)
                           for client in self.shards)
                 for name in self.schema.names()}
        for view in self._entries:
            place = self._placement.get(view)
            holders = [self.shards[place]] if place is not None \
                else list(self.shards)
            if all(client.has_cache(view) for client in holders):
                stats[view] = sum(client.count(view)
                                  for client in holders)
        return stats

    # -- observability --------------------------------------------------

    def metrics(self) -> dict:
        """One merged metrics snapshot for the whole cluster: the
        coordinator's own series (cluster phase timings, retry
        traffic), every shard engine's snapshot (txn phases, WAL
        append latency — worker processes ship theirs back over the
        RPC channel; a dead worker contributes nothing), this
        process's GLOBAL series (plan seals), the procpool's RPC/
        restart counts, and each shard's replica-set routing stats.
        See rdbms/metrics.py for the snapshot shape."""
        snapshots: list = [self._metrics.snapshot(), GLOBAL.snapshot()]
        if self._procpool is not None:
            rpc = {'counters': {
                'rpc.requests': sum(shard.rpc_requests
                                    for shard in self.shards),
                'procpool.restarts': sum(shard.generation
                                         for shard in self.shards),
            }, 'gauges': {
                'procpool.alive': float(sum(shard.alive
                                            for shard in self.shards)),
            }, 'histograms': {}}
            snapshots.append(rpc)
            snapshots.extend(shard.metrics() for shard in self.shards)
        else:
            snapshots.extend(engine.metrics_snapshot()
                             for engine in self.engines)
        snapshots.extend(replica_set.metrics_snapshot()
                         for replica_set in self.replica_sets)
        return merge_snapshots(snapshots)

    # -- DML -----------------------------------------------------------

    def insert(self, target: str, values: tuple) -> None:
        self.execute(target, [Insert(tuple(values))])

    def delete(self, target: str, where=None) -> None:
        self.execute(target, [Delete(where)])

    def update(self, target: str, assignments: Mapping[str, object],
               where=None) -> None:
        self.execute(target, [Update(assignments, where)])

    def transaction(self) -> Transaction:
        return Transaction(self)

    def execute(self, target: str, statements: Sequence[Statement]) -> None:
        self.execute_many([(target, statements)])

    def execute_many(self, batches: Sequence[tuple[str,
                                                   Sequence[Statement]]]
                     ) -> None:
        """One atomic transaction across shards: route every bucket,
        then two-phase commit — prepare every touched shard (every
        *logical* failure mode: translation, ⊥-constraints, schema
        validation), apply only when all prepared.  Shards prepare in
        *first-touched* order — the order their first bucket was
        staged — so a multi-view abort surfaces the same first
        violation a single engine's first-staged pending drain would.
        (Exact first-error parity covers translation and ⊥-constraint
        failures; an unvalidated strategy whose putback emits
        schema-invalid source rows may surface its row-validation
        error in shard rather than global staging order.)
        The apply phase carries the same trust the single engine
        places in ``Backend.apply_deltas``: a storage-level I/O
        failure there is not compensated (durable cross-shard 2PC
        logs are out of scope for this reproduction; under
        ``parallelism > 1`` every shard's apply is attempted even if a
        sibling's storage write fails, where the serial loop would
        have stopped — both leave a partially applied batch only on
        storage-level I/O failure).

        Under ``parallelism > 1`` the prepare phase runs concurrently
        across the touched shards — it is embarrassingly parallel:
        prepare only stages in Python and every already-prepared
        shard's work is simply abandoned on abort, which *is* the
        rollback (no shard storage was touched).  The coordinator
        waits for every in-flight prepare and then joins in
        first-touched order, so the raised error is deterministic and
        serial-identical.

        Under ``execution='processes'`` the statement fan-out is
        additionally *pipelined*: routing submits RPCs without waiting
        and a barrier before any synchronous read — and before the
        prepare phase — drains every outcome in submission order, so
        the first error surfaced is still the serial one.  Any failure
        (including a worker death) aborts the transaction on every
        shard and restarts dead workers before re-raising.

        ``transient_retries`` re-runs the transaction after a
        :class:`ShardUnavailableError` that aborted it *cleanly* —
        nothing was committed anywhere, and the restarted worker (with
        a WAL) recovered its full committed state, so a fresh attempt
        is exactly a new transaction.  A failure in the apply phase is
        never retried: sibling shards may already have applied (and
        with a WAL the repair path has already made every repairable
        case *succeed*), so what reaches the caller from apply is a
        genuine partial-commit report."""
        if self.batch_deltas:
            batches = coalesce_buckets(batches)
        metrics = self._metrics
        attempts = 0
        waited = 0.0
        while True:
            try:
                self._execute_cluster(batches)
                for listener in self.commit_listeners:
                    listener(tuple(target for target, _ in batches))
                return
            except ShardUnavailableError as error:
                if getattr(error, 'applied', False) \
                        or attempts >= self._transient_retries:
                    if attempts:
                        metrics.counter('retry.giveups')
                    raise
                # Exponential backoff, bounded per attempt and in
                # total: an uncapped 2**n sleep at large
                # transient_retries would park the coordinator for
                # minutes on a shard that is simply gone.
                delay = min(self._retry_backoff * (2 ** attempts),
                            self._retry_backoff_cap)
                if waited + delay > self._retry_max_wait:
                    metrics.counter('retry.giveups')
                    raise
                attempts += 1
                waited += delay
                metrics.counter('retry.attempts')
                time.sleep(delay)

    def _execute_cluster(self, batches) -> None:
        """One attempt of the routed 2PC (see :meth:`execute_many`)."""
        metrics = self._metrics
        timed = metrics.enabled
        started = time.perf_counter() if timed else 0.0
        txn = _ClusterTxn()
        order: list = []
        try:
            for target, statements in batches:
                self._route_bucket(txn, target, statements)
            self._barrier(txn)
            if timed:
                routed = time.perf_counter()
                metrics.observe('cluster.route_seconds',
                                routed - started)
            order = list(txn.handles.items())
            prepared = self._pmap([
                (lambda index=index, handle=handle:
                 self.shards[index].prepare_commit(handle))
                for index, handle in order])
            if timed:
                metrics.observe('cluster.prepare_seconds',
                                time.perf_counter() - routed)
        except BaseException:
            metrics.counter('cluster.aborts')
            self._abort(txn)
            raise
        apply_started = time.perf_counter() if timed else 0.0
        try:
            self._pmap([
                (lambda index=index, commit=commit:
                 self.shards[index].apply_prepared(commit))
                for (index, _), commit in zip(order, prepared)])
            if timed:
                metrics.counter('cluster.txns')
                metrics.observe('cluster.apply_seconds',
                                time.perf_counter() - apply_started)
        except BaseException as error:
            # Apply carries the single engine's storage trust (see
            # above): no compensation, but a worker that died here is
            # restarted so the cluster keeps serving.  Mark the error
            # as apply-phase so the transient-retry wrapper never
            # re-runs a transaction that may have partially committed.
            if self._procpool is not None:
                self._procpool.restart_dead()
            if isinstance(error, ShardUnavailableError):
                error.applied = True
            raise

    def _barrier(self, txn: _ClusterTxn) -> None:
        """Drain every pipelined outcome in submission order and raise
        the first failure — the serial-identical error.  Every token is
        drained even after a failure (an undrained reply would sit in
        the channel forever)."""
        log, txn.log = txn.log, []
        first_error: BaseException | None = None
        for client, token in log:
            try:
                client.drain(token)
            except Exception as error:
                if first_error is None:
                    first_error = error
        if first_error is not None:
            raise first_error

    def _abort(self, txn: _ClusterTxn) -> None:
        """Roll the cluster transaction back: drain what is still in
        flight (outcomes no longer matter), drop every shard's staged
        state, and restart any worker that died — so the *next*
        transaction finds a serving cluster."""
        for client, token in txn.log:
            try:
                client.drain(token)
            except Exception:
                pass
        txn.log = []
        for index, handle in txn.handles.items():
            try:
                self.shards[index].abort(handle)
            except Exception:
                pass
        if self._procpool is not None:
            self._procpool.restart_dead()

    # -- routing internals --------------------------------------------

    def _handle(self, txn: _ClusterTxn, index: int):
        if index not in txn.handles:
            txn.handles[index] = self.shards[index].begin()
        return txn.handles[index]

    def _forward(self, txn: _ClusterTxn, target: str,
                 per_shard: dict[int, list[Statement]]) -> None:
        if self._procpool is not None:
            for index in sorted(per_shard):
                statements = per_shard[index]
                if statements:
                    # Handle creation position fixes first-touched
                    # (prepare) order; submit position fixes error
                    # order — both on the routing thread.
                    handle = self._handle(txn, index)
                    client = self.shards[index]
                    txn.log.append((client, client.queue_apply(
                        handle, target, statements)))
            return
        thunks = []
        for index in sorted(per_shard):
            statements = per_shard[index]
            if statements:
                # The handle MUST be created here, on the routing
                # thread: its insertion position in ``txn.handles`` is
                # the first-touched order that prepare joins in.
                handle = self._handle(txn, index)
                thunks.append(
                    lambda client=self.shards[index], handle=handle,
                    statements=statements:
                    client.apply_statements(handle, target, statements))
        self._pmap(thunks)

    def _route_bucket(self, txn: _ClusterTxn, target: str,
                      statements: Sequence[Statement]) -> None:
        try:
            place = self._placement_of(target)
        except SchemaError:
            # A coordinator-side routing error must not outrank a
            # failure already in flight from an earlier bucket — the
            # serial loop would have hit that one first.
            self._barrier(txn)
            raise
        if not statements:
            # Mirror Engine.apply_statements exactly: an empty bucket
            # is a no-op BEFORE the flush gate, so it cannot split a
            # batched translation the single engine would coalesce.
            return
        # Cluster-wide statement-order gate, mirroring the single
        # engine's _flush_for_read: before ANY shard processes a bucket
        # on ``target``, every shard holding a pending view translation
        # that could still write ``target`` (or reads it as a source)
        # must drain it.  Without this, two faults routed to different
        # shards can surface in a different order than on a single
        # node — committing the same state but raising a different
        # error type, which the differential oracle forbids.  The
        # drains are independent plan runs, one per shard: fan out
        # (threads) or pipeline (processes — per-channel FIFO keeps
        # each shard's gate ahead of this bucket's statements).
        if self._procpool is not None:
            for index, handle in list(txn.handles.items()):
                client = self.shards[index]
                txn.log.append((client,
                                client.queue_flush(handle, target)))
        else:
            self._pmap([
                (lambda client=self.shards[index], handle=handle:
                 client.flush_reads(handle, target))
                for index, handle in list(txn.handles.items())])
        if place is not None:
            handle = self._handle(txn, place)
            client = self.shards[place]
            if self._procpool is not None:
                txn.log.append((client, client.queue_apply(
                    handle, target, list(statements))))
            else:
                client.apply_statements(handle, target,
                                        list(statements))
            return
        key_attr = self._key_attr[target]
        key_pos = self._key_pos[target]
        per_shard: dict[int, list[Statement]] = {}

        def stage(index: int, statement: Statement) -> None:
            per_shard.setdefault(index, []).append(statement)

        def broadcast(statement: Statement) -> None:
            for index in range(self.n_shards):
                stage(index, statement)

        for statement in statements:
            if isinstance(statement, Insert):
                row = tuple(statement.values)
                if len(row) <= key_pos:
                    # Arity error: forward anywhere, the shard's schema
                    # validation produces the canonical SchemaError.
                    stage(self.global_shard, statement)
                else:
                    stage(self.partitioner.shard_of(row[key_pos]),
                          statement)
            elif isinstance(statement, Delete):
                routed = self._where_shard(target, statement.where,
                                           key_attr)
                if routed is None:
                    broadcast(statement)
                else:
                    stage(routed, statement)
            elif isinstance(statement, Update):
                if key_attr in statement.assignments:
                    # Rows may change owner: derive centrally, then
                    # re-emit as per-shard DELETE + INSERT.  Forward
                    # what is already staged first so statement order
                    # is preserved on every shard.
                    self._forward(txn, target, per_shard)
                    per_shard = {}
                    self._route_moving_update(txn, target, statement)
                else:
                    routed = self._where_shard(target, statement.where,
                                               key_attr)
                    if routed is None:
                        broadcast(statement)
                    else:
                        stage(routed, statement)
            else:
                self._barrier(txn)   # in-flight failures rank first
                raise SchemaError(f'unknown statement {statement!r}')
        self._forward(txn, target, per_shard)

    def _where_shard(self, target: str, where,
                     key_attr: str) -> int | None:
        """The single shard a WHERE pins, when it binds the shard key
        to a constant; ``None`` means broadcast.  A mapping naming an
        unknown column is never pinned: the single engine raises its
        SchemaError from the first row it scans (and stays silent on
        an empty relation), and only a broadcast reproduces that
        data-dependent behavior."""
        if isinstance(where, Mapping) and key_attr in where and \
                set(where) <= set(self._target_schema(target).attributes):
            return self.partitioner.shard_of(where[key_attr])
        return None

    def _target_schema(self, target: str) -> RelationSchema:
        if target in self._entries:
            return self._entries[target].schema
        return self.schema[target]

    def _route_moving_update(self, txn: _ClusterTxn, target: str,
                             statement: Update) -> None:
        """An UPDATE that assigns the shard key: gather the matched
        rows from every shard's transaction state, apply the
        assignments centrally into one (Δ⁺, Δ⁻) pair, split it by the
        partition predicate (:meth:`Delta.split` — deletions route by
        the old row's owner, insertions by the new row's), and re-emit
        each shard's share as DELETE + INSERT statements.

        The gather is a synchronous read, so under process execution
        every pipelined outcome submitted before it must surface first
        (:meth:`_barrier`) — a failed earlier translation stops the
        derivation exactly where it stops the serial loop.  The
        per-shard reads themselves stay serial in shard order: each
        shard's flush errors must interleave with its rows' validation
        errors the way the serial loop produces them."""
        schema = self._target_schema(target)
        key_attr = self._key_attr[target]
        pinned = self._where_shard(target, statement.where, key_attr)
        shards = range(self.n_shards) if pinned is None else (pinned,)
        if self._procpool is not None:
            self._barrier(txn)
        victims: set = set()
        replacements: set = set()
        match = compile_where(statement.where, schema)
        for index in shards:
            handle = self._handle(txn, index)
            for row in self.shards[index].txn_rows(handle, target):
                if not match(row):
                    continue
                new_row = _apply_assignments(row, statement.assignments,
                                             schema)
                schema.validate_tuple(new_row)
                victims.add(row)
                replacements.add(new_row)
        moved = Delta(replacements, victims)
        merged: dict[int, list[Statement]] = {}
        for index, part in sorted(
                moved.split(self.classifier(target)).items()):
            # UPDATE is deletions followed by insertions (App. D):
            # keep that order on every shard.
            merged[index] = \
                [Delete(dict(zip(schema.attributes, row)))
                 for row in sorted(part.deletions)] + \
                [Insert(row) for row in sorted(part.insertions)]
        self._forward(txn, target, merged)


# ---------------------------------------------------------------------------
# Static key-alignment analysis
# ---------------------------------------------------------------------------
#
# Matching key *attribute names* is necessary but not sufficient for
# shard-local routing: a rule like ``+r1(X) :- r2(X), v(Y), not r1(X).``
# references only relations partitioned on the same attribute, yet the
# variable it writes ``r1`` with is not the view row's key — evaluating
# it per shard against shard-local sources would silently diverge from
# the single engine.  These helpers prove the stronger property the
# routing argument actually needs: in every rule of the putback, the
# ⊥-constraints, and the view definition, all partitioned atoms are
# keyed by ONE shared variable, which intermediate predicates carry
# through to the delta heads.


def _rule_key_var(rule: Rule, key_pos_of: Mapping[str, int],
                  carry: Mapping[str, int | None]) -> str | None:
    """The single variable sitting at the key position of every
    partitioned (or key-carrying intermediate) atom in ``rule``'s body,
    or ``None`` when no such shared variable exists.  The variable must
    occur in at least one *positive* atom so it is genuinely bound to a
    shard-owned row."""
    shared: str | None = None
    positively_bound = False
    for literal in rule.body:
        if not isinstance(literal, Lit):
            continue                      # builtins carry no key
        atom = literal.atom
        pred = delta_base(atom.pred) if is_delta_pred(atom.pred) \
            else atom.pred
        if pred in key_pos_of:
            position = key_pos_of[pred]
        elif atom.pred in carry:
            position = carry[atom.pred]
            if position is None:          # intermediate drops the key
                return None
        else:                             # unanalysable predicate
            return None
        argument = atom.args[position]
        if not isinstance(argument, Var):
            return None                   # constant/anonymous key
        if shared is None:
            shared = argument.name
        elif argument.name != shared:
            return None                   # two different join keys
        if literal.positive:
            positively_bound = True
    if shared is None or not positively_bound:
        return None
    return shared


def _carry_positions(program: Program,
                     key_pos_of: Mapping[str, int]) -> dict[str,
                                                            int | None]:
    """For each intermediate (non-delta IDB) predicate: the head
    position that provably carries the rule key through every defining
    rule, or ``None`` when no position does (the predicate "drops" the
    key and any rule using it is not shard-local)."""
    rules_of: dict[str, list[Rule]] = {}
    for rule in program.proper_rules():
        if rule.head is not None and not is_delta_pred(rule.head.pred) \
                and rule.head.pred not in key_pos_of:
            rules_of.setdefault(rule.head.pred, []).append(rule)
    carry: dict[str, int | None] = {}
    pending = dict(rules_of)
    progress = True
    while pending and progress:           # nonrecursive → terminates
        progress = False
        for pred in list(pending):
            rules = pending[pred]
            depends = {literal.atom.pred for rule in rules
                       for literal in rule.body
                       if isinstance(literal, Lit)}
            if depends & set(pending):
                continue                  # a dependency is unresolved
            positions: set[int] | None = None
            for rule in rules:
                key_var = _rule_key_var(rule, key_pos_of, carry)
                if key_var is None:
                    positions = set()
                    break
                here = {index for index, arg in enumerate(rule.head.args)
                        if isinstance(arg, Var) and arg.name == key_var}
                positions = here if positions is None \
                    else positions & here
            carry[pred] = min(positions) if positions else None
            del pending[pred]
            progress = True
    for pred in pending:                  # unresolvable (defensive)
        carry[pred] = None
    return carry


def _key_aligned(putdelta: Program, get_program: Program | None,
                 view_name: str,
                 key_pos_of: Mapping[str, int]) -> bool:
    """Is every rule of the putback and the view definition routable by
    the shared key — so that per-shard evaluation over shard-local
    state provably equals the single engine's result restricted to the
    shard?"""
    for program in (putdelta, get_program):
        if program is None:
            continue
        carry = _carry_positions(program, key_pos_of)
        for rule in program.rules:
            head = rule.head
            if head is None:              # ⊥-constraint: body only
                if _rule_key_var(rule, key_pos_of, carry) is None:
                    return False
                continue
            if is_delta_pred(head.pred):
                target = delta_base(head.pred)
            elif head.pred in key_pos_of:
                target = head.pred        # the view-definition head
            else:
                continue                  # intermediate: via ``carry``
            key_var = _rule_key_var(rule, key_pos_of, carry)
            if key_var is None:
                return False
            argument = head.args[key_pos_of[target]]
            if not (isinstance(argument, Var)
                    and argument.name == key_var):
                return False
    return True


def _resolve_key(schema: RelationSchema, key: str | int) -> tuple[int, str]:
    """Resolve a shard-key declaration (attribute name or position)
    against a relation schema → ``(position, attribute name)``."""
    if isinstance(key, int):
        if not 0 <= key < schema.arity:
            raise SchemaError(
                f'shard key position {key} out of range for '
                f'{schema.name!r} (arity {schema.arity})')
        return key, schema.attributes[key]
    try:
        return schema.attributes.index(key), key
    except ValueError:
        raise SchemaError(
            f'shard key {key!r} is not an attribute of '
            f'{schema.name!r} {schema.attributes}') from None
