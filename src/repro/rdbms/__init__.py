"""In-memory RDBMS with programmable updatable views — the execution
substrate standing in for PostgreSQL (§6.1; substitution documented in
DESIGN.md).

Observability: every engine owns a
:class:`~repro.rdbms.metrics.MetricsRegistry`; ``Engine`` exposes
``metrics_snapshot()``, ``ShardedEngine``/``ViewServer`` expose a
merged ``metrics()`` (worker processes ship their counters back over
the existing RPC channel)."""

from repro.rdbms.dml import (Delete, Insert, Statement, Update,
                             derive_view_delta)
from repro.rdbms.engine import Engine, Transaction, ViewEntry
from repro.rdbms.metrics import (MetricsRegistry, merge_snapshots,
                                 summarize_snapshot)
from repro.rdbms.peernet import (Peer, PeerCrashed, PeerGap, PeerNetwork,
                                 ShareDelta, converged)
from repro.rdbms.replica import ReplicaEngine, ReplicaSet
from repro.rdbms.serve import Receipt, ViewServer
from repro.rdbms.sharded import (HashPartitioner, Partitioner,
                                 RangePartitioner, ShardedEngine)
from repro.rdbms.wal import WalRecord, WriteAheadLog

__all__ = ['Delete', 'Insert', 'Statement', 'Update', 'derive_view_delta',
           'Engine', 'Transaction', 'ViewEntry', 'ShardedEngine',
           'Partitioner', 'HashPartitioner', 'RangePartitioner',
           'Receipt', 'ViewServer', 'WriteAheadLog', 'WalRecord',
           'ReplicaEngine', 'ReplicaSet', 'MetricsRegistry',
           'merge_snapshots', 'summarize_snapshot',
           'Peer', 'PeerNetwork', 'PeerGap', 'PeerCrashed', 'ShareDelta',
           'converged']
