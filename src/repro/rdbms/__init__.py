"""In-memory RDBMS with programmable updatable views — the execution
substrate standing in for PostgreSQL (§6.1; substitution documented in
DESIGN.md)."""

from repro.rdbms.dml import (Delete, Insert, Statement, Update,
                             derive_view_delta)
from repro.rdbms.engine import Engine, Transaction, ViewEntry
from repro.rdbms.replica import ReplicaEngine, ReplicaSet
from repro.rdbms.serve import Receipt, ViewServer
from repro.rdbms.sharded import (HashPartitioner, Partitioner,
                                 RangePartitioner, ShardedEngine)
from repro.rdbms.wal import WalRecord, WriteAheadLog

__all__ = ['Delete', 'Insert', 'Statement', 'Update', 'derive_view_delta',
           'Engine', 'Transaction', 'ViewEntry', 'ShardedEngine',
           'Partitioner', 'HashPartitioner', 'RangePartitioner',
           'Receipt', 'ViewServer', 'WriteAheadLog', 'WalRecord',
           'ReplicaEngine', 'ReplicaSet']
