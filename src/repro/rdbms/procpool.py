"""Process-per-shard execution: worker processes owning one engine each.

Threads cannot beat the GIL on CPU-bound putback translation
(BENCH_shard.json: 4 shards × 4 threads ≈ serial), so this module moves
each shard of a :class:`~repro.rdbms.sharded.ShardedEngine` into a
**worker process**.  The engine's transaction pipeline is already
message-shaped — ``begin`` / ``apply_statements`` / ``flush_reads`` /
``prepare_commit`` / ``apply_prepared`` are pure-data calls, and every
value they carry (statements, deltas, strategies, compiled plans,
library exceptions) pickles — so a worker is simply the same inner
:class:`~repro.rdbms.engine.Engine` behind an RPC loop.

Wire protocol
-------------

Length-prefixed pickle frames over a ``multiprocessing`` pipe: each
message is pickled with :data:`pickle.HIGHEST_PROTOCOL` and shipped via
``Connection.send_bytes`` (a 4-byte length header plus the payload).
Requests are ``(seq, method, args)`` triples; replies are ``(seq, ok,
payload)`` where ``payload`` is the return value (``ok``) or the
serialised exception (the library's error classes define ``__reduce__``
so the round trip is exact — see :mod:`repro.errors`).

**Pipelining.**  The worker serves strictly in request order and every
request gets exactly one reply, so the coordinator may submit several
requests before draining any reply (:meth:`_RpcChannel.submit` /
:meth:`_RpcChannel.drain`).  The sharded coordinator pipelines the
statement fan-out — ``begin``, ``flush_reads`` and ``apply_statements``
are fire-and-forget — and collects their outcomes at the next barrier
*in submission order*, which is exactly the order the serial loop
executes in, so the first error raised is the serial-identical one (the
PR 5 thread contract, kept by construction: a pipelined call's effect
and failure are both deterministic functions of its inputs).

Worker lifecycle
----------------

Backends are constructed **inside** the worker (the coordinator ships a
backend *kind*, never an instance), so SQLite connections never cross
the fork.  A dead worker (killed, crashed, broken pipe) — or a *wedged*
one, surfaced by the per-call RPC timeout — appears as
:class:`~repro.errors.ShardUnavailableError`; the coordinator aborts
the cluster transaction on every other shard and restarts the worker so
the next transaction finds a serving shard.

**Durability.**  With a WAL configured (``wal_path``, threaded down
from ``ShardedEngine(wal_dir=...)``), each worker opens its own
``shard-<i>.wal`` *inside the worker process*: the fsynced append in
``Engine.apply_prepared`` is the shard's commit point, and a restarted
worker replays the committed prefix through ``Engine.apply_wal_record``
— no committed transaction is lost to a crash.  The prepare reply
additionally carries the shard's pre-commit LSN and the frozen commit
record, so a worker that dies *mid-apply* is repaired exactly
(:meth:`ProcessShard._repair_apply`): after the restart's replay the
coordinator checks whether the append — the commit point — made it; if
not, it re-commits the record it kept, and the cluster transaction
succeeds instead of losing a commit its sibling shards already
applied.  Without a WAL, restart falls back to replaying the recorded
catalog setup (latest ``load`` per base table, ``define_view`` in
definition order) and committed deltas since the last load are lost —
the pre-WAL contract.

Deterministic fault injection (:mod:`repro.rdbms.faults`) hooks the
RPC send path (``rpc.send``) and the worker dispatch loop
(``worker.dispatch``); a plan installed before the pool forks is
inherited by every worker.

Fork hygiene: a forked worker inherits the coordinator's file
descriptors for every *other* worker's pipe.  Each worker closes those
inherited ends on startup (:data:`_COORDINATOR_CONNS`), otherwise a
sibling's death would never surface as EOF on the coordinator side; and
every shutdown finalizer is pid-guarded so a worker's own exit cannot
run the coordinator's cleanup against its siblings.

Statistics: workers re-plan on cardinality drift against their *local*
counts (a worker cannot ask the coordinator mid-transaction).  The
``define_view`` seed still uses cluster-wide aggregated stats (the
coordinator passes them explicitly), and re-planning only affects join
order, never results.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import threading
import time
import weakref
from pathlib import Path
from typing import Mapping, NamedTuple, Sequence

from repro.errors import SchemaError, ShardUnavailableError
from repro.rdbms import faults
from repro.rdbms.backends import Backend, create_backend
from repro.rdbms.engine import Engine

__all__ = ['ProcessPool', 'ProcessShard', 'WorkerRuntime',
           'serve_connection']

#: Coordinator-side pipe ends of every live worker, inherited by forked
#: children; a starting worker closes them all (its own inherited
#: duplicate included — the coordinator's original stays open).
_COORDINATOR_CONNS: 'weakref.WeakSet' = weakref.WeakSet()

#: The worker's shard index inside a worker process, ``None`` in the
#: coordinator.  Tests use this to make fork-inherited monkeypatches
#: fire in exactly one worker.
WORKER_INDEX: int | None = None


def _dumps(obj) -> bytes:
    return pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)


# ---------------------------------------------------------------------------
# Worker side
# ---------------------------------------------------------------------------


class WorkerRuntime:
    """One worker's state: the inner engine plus per-transaction
    working/prepared slots, with every RPC method as a plain method.

    Kept separate from the process entry point so the dispatch loop is
    drivable in-process (a thread over a pipe) by the test suite."""

    def __init__(self, schema, backend_spec, *, batch_deltas: bool = True,
                 index: int = 0, n_shards: int = 1,
                 wal_path=None, wal_sync: bool = True):
        self.index = index
        # With ``wal_path`` the worker owns its shard's log: the engine
        # appends each commit before storage (the commit point) and —
        # when the log already has records, i.e. this is a restart —
        # replays the committed prefix right here in the constructor.
        self.engine = Engine(schema,
                             backend=create_backend(backend_spec, schema),
                             batch_deltas=batch_deltas,
                             wal=wal_path, wal_sync=wal_sync)
        self._workings: dict[int, object] = {}
        self._prepared: dict[int, object] = {}

    # -- transaction pipeline -----------------------------------------

    def begin(self, txn: int) -> None:
        self._workings[txn] = self.engine.begin()

    def apply_statements(self, txn: int, target: str,
                         statements: Sequence) -> None:
        self.engine.apply_statements(self._workings[txn], target,
                                     statements)

    def flush_reads(self, txn: int, target: str) -> None:
        self.engine.flush_reads(self._workings[txn], target)

    def txn_rows(self, txn: int, target: str) -> frozenset:
        """The transaction's view of ``target`` (flushing pending
        translations first) — the coordinator's cross-shard read for
        key-moving UPDATE derivation."""
        working = self._workings[txn]
        self.engine.flush_reads(working, target)
        return frozenset(working.rows(target))

    def prepare_commit(self, txn: int) -> tuple:
        """Prepare, and reply with what apply repair needs: the shard's
        pre-commit LSN and the frozen commit record the apply phase
        will append (``None`` without a WAL, or when the batch is empty
        and nothing will be appended)."""
        prepared = self.engine.prepare_commit(self._workings[txn])
        self._prepared[txn] = prepared
        if self.engine.wal is None or not prepared.batch:
            return (self.engine.commit_lsn, None)
        return (self.engine.commit_lsn, prepared.wal_record())

    def apply_prepared(self, txn: int) -> None:
        prepared = self._prepared.pop(txn)
        self._workings.pop(txn, None)
        try:
            self.engine.apply_prepared(prepared)
        except OSError:
            # The WAL append — the commit point — failed (e.g. fsync
            # error): this worker can no longer make commits durable,
            # and its log may have a torn tail.  Die and recover from
            # the log rather than limp along; the coordinator repairs
            # the in-flight transaction from its prepare reply.
            if WORKER_INDEX is not None:
                os._exit(3)
            raise

    def commit_batch(self, data: tuple) -> int:
        """Apply repair: commit a frozen record this worker prepared in
        a previous incarnation but died before appending."""
        try:
            return self.engine.commit_logged(data)
        except OSError:
            if WORKER_INDEX is not None:
                os._exit(3)
            raise

    def commit_lsn(self) -> int:
        return self.engine.commit_lsn

    def abort(self, txn: int) -> None:
        """Drop a transaction's staged state (storage was never
        touched: abandoning the working/prepared slots IS rollback)."""
        self._workings.pop(txn, None)
        self._prepared.pop(txn, None)

    # -- storage / catalog --------------------------------------------

    def rows(self, name: str) -> frozenset:
        return frozenset(self.engine.rows(name))

    def snapshot(self):
        return self.engine.database()

    def load(self, name: str, rows) -> None:
        self.engine.load(name, rows)

    def count(self, name: str) -> int:
        return self.engine.backend.count(name)

    def has_cache(self, name: str) -> bool:
        return self.engine.backend.has_cache(name)

    def define_view(self, strategy, report, use_incremental: bool,
                    stats: Mapping[str, int], exist_ok: bool = False):
        return self.engine.define_view(strategy, report=report,
                                       validate_first=False,
                                       use_incremental=use_incremental,
                                       stats=stats, exist_ok=exist_ok)

    def drop_view(self, name: str) -> None:
        self.engine.drop_view(name)

    def ping(self) -> str:
        return 'pong'

    def metrics(self) -> dict:
        """The worker engine's metrics snapshot (plus this process's
        GLOBAL series, e.g. evaluator plan seals) — how worker
        counters travel back to the coordinator's merged
        ``ShardedEngine.metrics()`` over the ordinary RPC channel."""
        from repro.rdbms.metrics import GLOBAL, merge_snapshots
        return merge_snapshots([self.engine.metrics_snapshot(),
                                GLOBAL.snapshot()])

    def close(self) -> None:
        self.engine.close()

    def dispatch(self, method: str, args: tuple):
        """Execute one request (the RPC loop's inner step)."""
        if method.startswith('_') or not hasattr(self, method):
            raise SchemaError(f'unknown worker RPC method {method!r}')
        faults.fire('worker.dispatch', method=method)
        return getattr(self, method)(*args)


def serve_connection(runtime: WorkerRuntime, conn) -> None:
    """The RPC loop: recv → dispatch → reply, strictly in order, one
    reply per request, until ``close`` or EOF.  Request failures are
    replies, not loop exits — the worker survives a failed transaction
    exactly as an in-process engine does.

    The pipelining contract (see module docstring) is *FIFO by
    sequence number*, and the transport may misbehave: an
    at-least-once sender can deliver a frame twice, and an injected
    reorder (``FaultPlan.reorder_rpc``) can deliver frames out of
    order.  The loop restores the contract at the boundary — a frame
    whose seq was already dispatched is silently absorbed (dispatching
    it again would double-execute the method *and* desynchronise the
    reply stream), and a frame from the future is held until the gap
    closes, so ``dispatch`` only ever sees each seq once, in order."""
    expected = 1
    held: dict[int, tuple] = {}        # future frames, keyed by seq
    closing = False
    while not closing:
        try:
            request = pickle.loads(conn.recv_bytes())
        except (EOFError, OSError):
            break                          # coordinator went away
        seq, method, args = request
        if seq < expected or seq in held:
            continue                       # duplicate frame: absorbed
        held[seq] = (method, args)
        while expected in held:
            method, args = held.pop(expected)
            expected += 1
            try:
                result = runtime.dispatch(method, args)
                reply = (expected - 1, True, result)
            except Exception as error:
                reply = (expected - 1, False, error)
            try:
                conn.send_bytes(_dumps(reply))
            except Exception as error:
                # An unpicklable *result* must not kill the channel:
                # the coordinator is blocked waiting for exactly this
                # seq.
                if reply[1]:
                    conn.send_bytes(_dumps(
                        (reply[0], False,
                         SchemaError(f'worker reply for {method!r} did '
                                     f'not serialise: {error}'))))
                else:
                    conn.send_bytes(_dumps(
                        (reply[0], False,
                         SchemaError(f'worker error for {method!r} did '
                                     f'not serialise: {error}'))))
            if method == 'close':
                closing = True
                break


def _worker_main(conn, index: int, schema, backend_spec,
                 batch_deltas: bool, wal_path=None,
                 wal_sync: bool = True, generation: int = 0) -> None:
    """Process entry point: drop inherited sibling pipe ends, build the
    engine *in this process* (replaying the shard's WAL when one is
    configured and has records), serve until told to stop."""
    global WORKER_INDEX
    WORKER_INDEX = index
    faults.set_identity(shard=index, generation=generation)
    for inherited in list(_COORDINATOR_CONNS):
        try:
            inherited.close()
        except OSError:  # pragma: no cover - already closed
            pass
    runtime = WorkerRuntime(schema, backend_spec,
                            batch_deltas=batch_deltas, index=index,
                            wal_path=wal_path, wal_sync=wal_sync)
    try:
        serve_connection(runtime, conn)
    finally:
        runtime.close()
        conn.close()


# ---------------------------------------------------------------------------
# Coordinator side
# ---------------------------------------------------------------------------


class _RpcChannel:
    """Pipelined request/reply over one connection.

    ``submit`` sends a request and returns its sequence number (the
    *token*); ``drain`` blocks until that token's reply arrived —
    absorbing, in order, every reply before it.  Thread-safe: all I/O
    happens under one lock, and because the worker replies strictly in
    order, the thread holding the lock is always the one whose reply
    arrives next (no cross-thread starvation).

    ``timeout`` bounds each drain's wait for the *next reply frame*: a
    worker that is wedged (alive but not replying — an infinite loop, a
    deadlock) surfaces as :class:`ShardUnavailableError` instead of
    blocking the coordinator forever.  ``liveness`` (the worker
    process's ``is_alive``) turns a silent death into the same error
    without waiting out the full timeout."""

    def __init__(self, conn, shard: int, *,
                 timeout: float | None = None, liveness=None):
        self.conn = conn
        self.shard = shard
        self.timeout = timeout
        self._liveness = liveness
        self._seq = 0
        self._lock = threading.RLock()
        self._replies: dict[int, tuple[bool, object]] = {}
        #: Frames held back by an injected ``reorder`` fault, flushed
        #: after the next frame is sent (the actual inversion) or at
        #: drain entry (so a held frame can never deadlock a caller
        #: waiting on its reply).
        self._held: list[bytes] = []
        self.dead: str | None = None       # reason, once broken

    def _broken(self, reason: str) -> ShardUnavailableError:
        self.dead = self.dead or reason
        return ShardUnavailableError(self.shard, self.dead)

    def submit(self, method: str, *args) -> int:
        with self._lock:
            if self.dead:
                raise ShardUnavailableError(self.shard, self.dead)
            seq = self._seq + 1
            # Pickle before sending: a pickling error must surface
            # before any bytes hit the pipe, or the frame stream (and
            # the seq numbering) would be corrupt.
            payload = _dumps((seq, method, args))
            self._seq = seq
            try:
                action = faults.fire('rpc.send', method=method,
                                     shard=self.shard)
                if action == 'reorder':
                    self._held.append(payload)
                    return seq
                self.conn.send_bytes(payload)
                if action == 'dup':
                    self.conn.send_bytes(payload)
                self._flush_held()
            except (OSError, ValueError) as error:
                raise self._broken(f'send failed: {error}') from error
            return seq

    def _flush_held(self) -> None:
        """Send any reorder-held frames (after a later frame went out,
        completing the inversion — the worker re-sequences them)."""
        while self._held:
            self.conn.send_bytes(self._held.pop(0))

    def _wait_readable(self) -> None:
        """Bound the wait for the next reply frame (see class
        docstring).  The poll loop costs nothing on the happy path —
        ``poll`` returns the moment data arrives — and checks worker
        liveness between slices so a silent death is surfaced early."""
        if self.timeout is None:
            return                      # recv_bytes blocks natively
        deadline = time.monotonic() + self.timeout
        while not self.conn.poll(min(0.05, max(self.timeout, 0.001))):
            if self._liveness is not None and not self._liveness() \
                    and not self.conn.poll(0):
                raise self._broken('worker process died')
            if time.monotonic() >= deadline:
                raise self._broken(
                    f'no reply within {self.timeout:g}s '
                    f'(worker wedged or overloaded)')

    def drain(self, token: int):
        """The reply for ``token``: its value, or its raised error."""
        with self._lock:
            if self._held and not self.dead:
                try:
                    self._flush_held()
                except (OSError, ValueError) as error:
                    raise self._broken(
                        f'send failed: {error}') from error
            while token not in self._replies:
                if self.dead:
                    raise ShardUnavailableError(self.shard, self.dead)
                try:
                    self._wait_readable()
                    seq, ok, payload = pickle.loads(
                        self.conn.recv_bytes())
                except (EOFError, OSError) as error:
                    raise self._broken(
                        f'worker died mid-request ({error!r})'
                    ) from error
                self._replies[seq] = (ok, payload)
            ok, payload = self._replies.pop(token)
        if ok:
            return payload
        raise payload

    def call(self, method: str, *args):
        return self.drain(self.submit(method, *args))


class _PreparedToken(NamedTuple):
    """ProcessShard's prepare→apply handle: the worker-side slot id
    plus what apply repair needs — the shard's pre-commit LSN and the
    frozen commit record (``None`` without a WAL, or when the batch is
    empty and nothing will be appended)."""

    txn: int
    lsn: int
    record: tuple | None


class ProcessShard:
    """Coordinator-side client for one worker process.

    Presents the same surface as a local shard (see
    ``LocalShard`` in :mod:`repro.rdbms.sharded`): the transaction
    pipeline, scatter-gather reads, and catalog operations — plus the
    pipelined ``queue_*`` variants the router uses, whose tokens the
    cluster transaction collects and drains at its barriers.

    ``wal_path`` gives the worker a durable log (opened *inside* the
    worker); restart then recovers committed state by replay, and
    :meth:`apply_prepared` repairs a worker that died mid-apply (see
    the module docstring's Durability section).  ``rpc_timeout`` bounds
    each call's wait so a wedged worker surfaces as
    :class:`ShardUnavailableError`."""

    def __init__(self, index: int, schema, backend_spec, *,
                 batch_deltas: bool = True,
                 mp_context=None, wal_path=None, wal_sync: bool = True,
                 rpc_timeout: float | None = None):
        if isinstance(backend_spec, Backend):
            raise SchemaError(
                'process shards construct their backend inside the '
                'worker (connections must not cross the fork); pass a '
                'backend kind name, not an instance')
        self.index = index
        self._schema = schema
        self._spec = backend_spec
        self._batch_deltas = batch_deltas
        self._wal_path = Path(wal_path) if wal_path is not None else None
        self._wal_sync = wal_sync
        self._rpc_timeout = rpc_timeout
        self._ctx = mp_context or _default_context()
        self._txn_counter = 0
        #: restarts so far — the worker's fault-plan ``generation``
        self.generation = 0
        #: RPC round-trips completed on channels already torn down; a
        #: restart replaces the channel (whose sequence counter starts
        #: over), so the cumulative count lives here — see
        #: :attr:`rpc_requests`.
        self._rpc_retired = 0
        # Recovery journal for WAL-less shards: the catalog calls a
        # restarted worker replays (latest load per table; views in
        # definition order).  With a WAL the log itself is the journal.
        self._loads: dict[str, frozenset] = {}
        self._views: list[tuple] = []
        self.channel: _RpcChannel | None = None
        self.process = None
        self._spawn()

    # -- lifecycle ----------------------------------------------------

    def _spawn(self) -> None:
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        process = self._ctx.Process(
            target=_worker_main,
            args=(child_conn, self.index, self._schema, self._spec,
                  self._batch_deltas, self._wal_path, self._wal_sync,
                  self.generation),
            name=f'repro-shard-{self.index}', daemon=True)
        process.start()
        child_conn.close()                 # the worker owns that end
        _COORDINATOR_CONNS.add(parent_conn)
        self.channel = _RpcChannel(parent_conn, self.index,
                                   timeout=self._rpc_timeout,
                                   liveness=process.is_alive)
        self.process = process

    @property
    def alive(self) -> bool:
        return (self.channel is not None and not self.channel.dead
                and self.process is not None and self.process.is_alive())

    def restart(self) -> None:
        """Replace a dead (or wedged — ``_reap`` terminates it) worker
        with a fresh one.  With a WAL configured the new worker replays
        the committed prefix of ``shard-<i>.wal`` itself during
        construction — no committed transaction is lost.  Without one,
        the recorded catalog setup is replayed instead and committed
        deltas since the last bulk load are lost (the pre-WAL
        contract)."""
        self._reap()
        self.generation += 1
        self._spawn()
        if self._wal_path is not None:
            return                  # the log replay rebuilt everything
        for name, rows in self._loads.items():
            self.channel.call('load', name, rows)
        for view_args in self._views:
            self.channel.call('define_view', *view_args)

    @property
    def rpc_requests(self) -> int:
        """Total RPC requests ever sent to this shard (across worker
        generations)."""
        current = self.channel._seq if self.channel is not None else 0
        return self._rpc_retired + current

    def metrics(self) -> 'dict | None':
        """The worker's metrics snapshot (``None`` when the worker is
        unreachable — a dead shard contributes nothing to the merge)."""
        if self.channel is None or self.channel.dead:
            return None
        try:
            return self.channel.call('metrics')
        except ShardUnavailableError:
            return None

    def _reap(self) -> None:
        if self.channel is not None:
            self._rpc_retired += self.channel._seq
            try:
                self.channel.conn.close()
            except OSError:  # pragma: no cover - already closed
                pass
            self.channel = None
        if self.process is not None:
            if self.process.is_alive():    # pragma: no cover - kill path
                self.process.terminate()
            self.process.join(timeout=5)
            self.process = None

    def close(self) -> None:
        """Idempotent worker shutdown: ask politely, then reap."""
        if self.channel is not None and not self.channel.dead:
            try:
                self.channel.call('close')
            except ShardUnavailableError:
                pass
        self._reap()

    # -- transaction pipeline (pipelined where the router allows) -----

    def begin(self) -> int:
        # Synchronous (one RTT per first touch): begin cannot fail
        # logically, and a fire-and-forget token here would have no
        # barrier responsible for draining it.
        self._txn_counter += 1
        txn = self._txn_counter
        self.channel.call('begin', txn)
        return txn

    def queue_apply(self, txn: int, target: str, statements) -> int:
        return self.channel.submit('apply_statements', txn, target,
                                   list(statements))

    def queue_flush(self, txn: int, target: str) -> int:
        return self.channel.submit('flush_reads', txn, target)

    def drain(self, token: int):
        return self.channel.drain(token)

    def txn_rows(self, txn: int, target: str) -> frozenset:
        return self.channel.call('txn_rows', txn, target)

    def prepare_commit(self, txn: int) -> _PreparedToken:
        lsn, record = self.channel.call('prepare_commit', txn)
        return _PreparedToken(txn, lsn, record)

    def apply_prepared(self, prepared: _PreparedToken) -> None:
        try:
            self.channel.call('apply_prepared', prepared.txn)
        except ShardUnavailableError:
            if not self._repair_apply(prepared):
                raise

    def _repair_apply(self, token: _PreparedToken) -> bool:
        """A worker died (or its channel broke) *during* apply — after
        sibling shards may already have applied.  With a WAL the
        outcome is decidable: restart the worker (its constructor
        replays the committed prefix) and compare LSNs against the
        prepare reply.  The append — the commit point — either made it
        (``lsn == token.lsn + 1``: done) or it did not (``lsn ==
        token.lsn``: re-commit the frozen record the coordinator kept).
        Either way the cluster transaction *succeeds*, keeping the
        shards convergent.  Returns ``False`` — caller re-raises — when
        repair is impossible (no WAL, an unexpected LSN, or the
        restarted worker failing too)."""
        if self._wal_path is None:
            return False
        try:
            self.restart()
            lsn = self.commit_lsn
            if token.record is None:
                return lsn == token.lsn    # nothing was to be appended
            if lsn == token.lsn + 1:
                return True                # commit point was reached
            if lsn == token.lsn:
                self.channel.call('commit_batch', token.record)
                return True
        except ShardUnavailableError:
            return False
        return False

    @property
    def commit_lsn(self) -> int:
        return self.channel.call('commit_lsn')

    def abort(self, txn: int) -> None:
        if self.channel is not None and not self.channel.dead:
            try:
                self.channel.call('abort', txn)
            except ShardUnavailableError:
                pass

    # -- storage / catalog --------------------------------------------

    def rows(self, name: str) -> frozenset:
        return self.channel.call('rows', name)

    def snapshot(self):
        return self.channel.call('snapshot')

    def load(self, name: str, rows) -> None:
        rows = frozenset(tuple(r) for r in rows)
        self.channel.call('load', name, rows)
        if self._wal_path is None:      # with a WAL the log records it
            self._loads[name] = rows

    def count(self, name: str) -> int:
        return self.channel.call('count', name)

    def has_cache(self, name: str) -> bool:
        return self.channel.call('has_cache', name)

    def define_view(self, strategy, *, report=None,
                    use_incremental: bool = True, stats=None,
                    exist_ok: bool = False):
        args = (strategy, report, use_incremental, dict(stats or {}),
                exist_ok)
        entry = self.channel.call('define_view', *args)
        if self._wal_path is None:
            self._views.append(args)
        return entry

    def drop_view(self, name: str) -> None:
        self.channel.call('drop_view', name)
        self._views = [args for args in self._views
                       if args[0].view.name != name]


def _default_context():
    """Fork where available (cheap, inherits the warmed import state);
    the platform default elsewhere.  The entry point is module-level
    and all arguments pickle, so spawn works too."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        'fork' if 'fork' in methods else None)


def _shutdown_shards(shards, owner_pid: int) -> None:
    """The pool finalizer.  Pid-guarded: a forked worker inherits this
    finalizer and must not run the coordinator's cleanup at its own
    exit (it would close its siblings' pipes)."""
    if os.getpid() != owner_pid:  # pragma: no cover - worker-side exit
        return
    for shard in shards:
        try:
            shard.close()
        except Exception:  # pragma: no cover - best-effort teardown
            pass


class ProcessPool:
    """N worker processes, one per shard, shut down idempotently on
    :meth:`shutdown`, coordinator GC, and interpreter exit (one
    pid-guarded ``weakref.finalize``, which Python also runs atexit)."""

    def __init__(self, schema, backend_specs: Sequence, *,
                 batch_deltas: bool = True, wal_paths=None,
                 wal_sync: bool = True, rpc_timeout: float | None = None):
        context = _default_context()
        if wal_paths is not None and len(wal_paths) != len(backend_specs):
            raise SchemaError(
                f'wal_paths must name one log per shard: got '
                f'{len(wal_paths)} for {len(backend_specs)} shards')
        self.shards = tuple(
            ProcessShard(index, schema, spec, batch_deltas=batch_deltas,
                         mp_context=context,
                         wal_path=(None if wal_paths is None
                                   else wal_paths[index]),
                         wal_sync=wal_sync, rpc_timeout=rpc_timeout)
            for index, spec in enumerate(backend_specs))
        self._finalizer = weakref.finalize(
            self, _shutdown_shards, self.shards, os.getpid())

    def restart_dead(self) -> list[int]:
        """Restart every dead worker; the restarted shard indices."""
        restarted = []
        for shard in self.shards:
            if not shard.alive:
                shard.restart()
                restarted.append(shard.index)
        return restarted

    def shutdown(self) -> None:
        if self._finalizer.detach() is not None:
            _shutdown_shards(self.shards, os.getpid())
