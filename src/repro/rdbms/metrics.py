"""Lightweight, thread-safe metrics for the engine's hot paths.

One :class:`MetricsRegistry` per ``Engine`` / ``ShardedEngine`` /
``ViewServer`` holds three kinds of series:

* **counters** — monotonic integers (``txn.commits``, ``wal.appends``,
  ``retry.attempts``).  Never reset, never decremented.
* **gauges** — last-write-wins floats for instantaneous state
  (``replica.in_rotation``, ``replica.lag``).
* **histograms** — streaming latency/size distributions.  Each keeps
  exact ``count``/``sum``/``min``/``max`` plus a bounded reservoir of
  recent samples from which percentiles are computed on demand (via
  ``repro.benchsuite.latency`` — imported lazily so this module stays
  stdlib-only on the hot path and free of import cycles).

Snapshots are plain dicts (picklable — worker processes ship theirs
back over the existing RPC channel) and :func:`merge_snapshots` folds
any number of them into one cluster-wide view: counters sum, gauges
sum (every current use is additive: rotation sizes, lags), histogram
aggregates combine and reservoirs concatenate (capped).

Instrumentation cost is gated in CI (``bench_all`` measures the
instrumented hot path against ``registry.enabled = False``); hook
sites check ``enabled`` *before* calling ``time.perf_counter`` so a
disabled registry costs one attribute load per site.
"""

from __future__ import annotations

import threading

__all__ = [
    'MetricsRegistry',
    'GLOBAL',
    'merge_snapshots',
    'summarize_snapshot',
]

#: Reservoir low-water mark per histogram.  Aggregates (count/sum/
#: min/max) stay exact; percentiles are over the most recent
#: RESERVOIR_SIZE..2×RESERVOIR_SIZE observations — the trim drops the
#: oldest half only when the doubled bound is hit, so the hot path
#: pays O(1) amortised instead of an O(RESERVOIR_SIZE) shift per
#: sample.
RESERVOIR_SIZE = 512

#: Cap on a merged histogram's reservoir (merging N workers must not
#: produce unbounded snapshots).
MERGED_RESERVOIR_SIZE = 2048


class MetricsRegistry:
    """Thread-safe counters + gauges + streaming histograms."""

    __slots__ = ('enabled', '_lock', '_counters', '_gauges', '_hists')

    def __init__(self, *, enabled: bool = True) -> None:
        self.enabled = enabled
        self._lock = threading.Lock()
        self._counters: dict[str, int] = {}
        self._gauges: dict[str, float] = {}
        self._hists: dict[str, dict] = {}

    # -- write side (hot path) -------------------------------------

    def counter(self, name: str, n: int = 1) -> None:
        """Add ``n`` to the monotonic counter ``name``."""
        if not self.enabled:
            return
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + n

    def gauge(self, name: str, value: float) -> None:
        """Set the gauge ``name`` to ``value`` (last write wins)."""
        if not self.enabled:
            return
        with self._lock:
            self._gauges[name] = value

    def observe(self, name: str, value: float) -> None:
        """Record one sample into the histogram ``name``."""
        if not self.enabled:
            return
        with self._lock:
            hist = self._hists.get(name)
            if hist is None:
                hist = self._hists[name] = {
                    'count': 0, 'sum': 0.0,
                    'min': value, 'max': value,
                    'reservoir': [],
                }
            hist['count'] += 1
            hist['sum'] += value
            if value < hist['min']:
                hist['min'] = value
            if value > hist['max']:
                hist['max'] = value
            reservoir = hist['reservoir']
            if len(reservoir) >= 2 * RESERVOIR_SIZE:
                # Keep the most recent window (recency is what
                # operators want from latency percentiles), trimming
                # half at a time so appends stay amortised O(1).
                del reservoir[:RESERVOIR_SIZE]
            reservoir.append(value)

    # -- read side --------------------------------------------------

    def snapshot(self) -> dict:
        """A picklable point-in-time copy of every series."""
        with self._lock:
            return {
                'counters': dict(self._counters),
                'gauges': dict(self._gauges),
                'histograms': {
                    name: {'count': h['count'], 'sum': h['sum'],
                           'min': h['min'], 'max': h['max'],
                           'reservoir': list(h['reservoir'])}
                    for name, h in self._hists.items()
                },
            }

    def reset(self) -> None:
        """Drop every series (bench harness isolation)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._hists.clear()


#: Process-wide registry for series that do not belong to any single
#: engine instance (e.g. ``plan.seals`` from the evaluator's code-gen
#: tier, which fires deep inside the datalog layer).  Worker processes
#: merge *their* GLOBAL into the snapshot they ship back, so the
#: cluster-level ``metrics()`` sees seals from every process exactly
#: once.
GLOBAL = MetricsRegistry()


def merge_snapshots(snapshots) -> dict:
    """Fold snapshot dicts into one.  ``None`` entries are skipped
    (a dead worker simply contributes nothing)."""
    counters: dict[str, int] = {}
    gauges: dict[str, float] = {}
    hists: dict[str, dict] = {}
    for snap in snapshots:
        if not snap:
            continue
        for name, value in snap.get('counters', {}).items():
            counters[name] = counters.get(name, 0) + value
        for name, value in snap.get('gauges', {}).items():
            gauges[name] = gauges.get(name, 0.0) + value
        for name, h in snap.get('histograms', {}).items():
            merged = hists.get(name)
            if merged is None:
                hists[name] = {'count': h['count'], 'sum': h['sum'],
                               'min': h['min'], 'max': h['max'],
                               'reservoir': list(h['reservoir'])}
                continue
            merged['count'] += h['count']
            merged['sum'] += h['sum']
            merged['min'] = min(merged['min'], h['min'])
            merged['max'] = max(merged['max'], h['max'])
            merged['reservoir'].extend(h['reservoir'])
            if len(merged['reservoir']) > MERGED_RESERVOIR_SIZE:
                del merged['reservoir'][:len(merged['reservoir'])
                                        - MERGED_RESERVOIR_SIZE]
    return {'counters': counters, 'gauges': gauges,
            'histograms': hists}


def summarize_snapshot(snapshot: dict) -> dict:
    """Replace each histogram's raw reservoir with a latency-style
    percentile summary (JSON/report friendly).  Values are kept in
    the unit they were observed in; the summary's ``*_ms`` keys
    therefore read as milliseconds only for seconds-valued series
    (sizes keep their unit, scaled by 1000 — use ``mean`` instead)."""
    from repro.benchsuite.latency import summarize_latencies

    out = {'counters': dict(snapshot.get('counters', {})),
           'gauges': dict(snapshot.get('gauges', {})),
           'histograms': {}}
    for name, h in snapshot.get('histograms', {}).items():
        count = h['count']
        summary = {
            'count': count,
            'sum': h['sum'],
            'min': h['min'],
            'max': h['max'],
            'mean': (h['sum'] / count) if count else 0.0,
        }
        if h['reservoir']:
            summary['percentiles'] = summarize_latencies(h['reservoir'])
        out['histograms'][name] = summary
    return out
