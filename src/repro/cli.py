"""Command-line interface — the reproduction's counterpart of the
``birds`` binary.

::

    python -m repro validate strategy.dlog        # Algorithm 1
    python -m repro derive   strategy.dlog        # print the derived get
    python -m repro fragment strategy.dlog        # LVGN / operators
    python -m repro compile  strategy.dlog -o out.sql
    python -m repro bench table1|fig6             # the paper's evaluation
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.benchsuite.classify import constraint_kinds, view_operators
from repro.core.lvgn import classify
from repro.core.strategyfile import load_strategy
from repro.core.validation import validate
from repro.datalog.pretty import pretty
from repro.errors import ReproError
from repro.fol.solver import SolverConfig
from repro.sql.triggers import compile_strategy_to_sql

__all__ = ['main']


def _config(args) -> SolverConfig | None:
    if getattr(args, 'quick', False):
        return SolverConfig().scaled_down()
    return None


def _cmd_validate(args) -> int:
    strategy = load_strategy(args.file)
    report = validate(strategy, config=_config(args))
    if args.json:
        payload = {
            'view': strategy.view.name,
            'valid': report.valid,
            'conclusive': report.conclusive,
            'fragment': str(report.fragment),
            'expected_get_confirmed': report.expected_get_confirmed,
            'checks': [{'name': c.name, 'passed': c.passed,
                        'detail': c.detail, 'seconds': round(c.elapsed, 4)}
                       for c in report.checks],
            'derived_get': (pretty(report.derived_get)
                            if report.derived_get else None),
        }
        print(json.dumps(payload, indent=2, ensure_ascii=False))
    else:
        print(report)
    return 0 if report.valid else 1


def _cmd_derive(args) -> int:
    strategy = load_strategy(args.file)
    report = validate(strategy, config=_config(args))
    definition = report.view_definition
    if definition is None:
        print('no view definition could be certified:', file=sys.stderr)
        for check in report.failures():
            print(f'  {check}', file=sys.stderr)
        return 1
    print(pretty(definition))
    return 0


def _cmd_fragment(args) -> int:
    strategy = load_strategy(args.file)
    report = classify(strategy.putdelta, strategy.view.name)
    print(f'view        : {strategy.view}')
    print(f'fragment    : {report}')
    source_names = set(strategy.sources.names())
    if strategy.expected_get is not None:
        operators = view_operators(strategy.expected_get,
                                   strategy.view.name, source_names)
        print(f'operators   : {operators or "(copy)"}')
    constraints = constraint_kinds(strategy.putdelta, strategy.view.name,
                                   source_names)
    print(f'constraints : {constraints or "(none)"}')
    print(f'program LOC : {strategy.program_size()}')
    return 0


def _cmd_compile(args) -> int:
    strategy = load_strategy(args.file)
    report = validate(strategy, config=_config(args))
    try:
        report.raise_if_invalid()
    except ReproError as exc:
        print(f'refusing to compile an invalid strategy: {exc}',
              file=sys.stderr)
        return 1
    sql = compile_strategy_to_sql(strategy, report.view_definition,
                                  incremental=not args.no_incremental)
    if args.output:
        with open(args.output, 'w', encoding='utf-8') as handle:
            handle.write(sql)
        print(f'wrote {len(sql.encode())} bytes to {args.output}')
    else:
        print(sql)
    return 0


def _cmd_bench(args) -> int:
    from repro.benchsuite import runner
    rest = list(args.rest or [])
    if getattr(args, 'backend', None) and args.experiment == 'fig6' \
            and '--backend' not in rest:
        rest += ['--backend', args.backend]
    return runner.main([args.experiment] + rest)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog='repro',
        description='BIRDS reproduction: programmable view update '
                    'strategies on relations (VLDB 2020)')
    sub = parser.add_subparsers(dest='command', required=True)

    for name, handler, doc in [
            ('validate', _cmd_validate, 'run Algorithm 1 on a strategy'),
            ('derive', _cmd_derive, 'print the certified view definition'),
            ('fragment', _cmd_fragment, 'classify fragment and operators'),
            ('compile', _cmd_compile, 'compile to PostgreSQL SQL')]:
        cmd = sub.add_parser(name, help=doc)
        cmd.add_argument('file', help='strategy file (.dlog)')
        cmd.add_argument('--quick', action='store_true',
                         help='reduced solver budgets')
        if name == 'validate':
            cmd.add_argument('--json', action='store_true',
                             help='machine-readable report')
        if name == 'compile':
            cmd.add_argument('-o', '--output', help='output file')
            cmd.add_argument('--no-incremental', action='store_true',
                             help='compile the full putback program '
                                  'instead of ∂put')
        cmd.set_defaults(handler=handler)

    bench = sub.add_parser('bench', help="regenerate the paper's "
                                         'evaluation artifacts')
    bench.add_argument('experiment', choices=['table1', 'fig6',
                                              'backends'])
    bench.add_argument('--backend', choices=['memory', 'sqlite'],
                       help='storage backend for fig6 (default: '
                            'REPRO_BACKEND or memory)')
    bench.add_argument('rest', nargs=argparse.REMAINDER,
                       help='extra arguments for the bench runner')
    bench.set_defaults(handler=_cmd_bench)
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.handler(args)
    except ReproError as exc:
        print(f'error: {exc}', file=sys.stderr)
        return 2


if __name__ == '__main__':
    raise SystemExit(main())
