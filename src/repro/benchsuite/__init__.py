"""The paper's evaluation suite: the 32-view Table 1 catalog, workload
generators, and the harnesses regenerating Table 1 and Figure 6."""

from repro.benchsuite.bench_all import (build_summary, check_summary,
                                        run_bench_all, run_overhead)
from repro.benchsuite.catalog import (ALL_ENTRIES, FIGURE6_VIEWS,
                                      entry_by_id, entry_by_name)
from repro.benchsuite.entry import BenchmarkEntry, PaperRow
from repro.benchsuite.harness import BenchCase, CaseResult, run_cases
from repro.benchsuite.runner import (Fig6Point, Table1Row, format_fig6,
                                     format_table1, run_fig6, run_table1)
from repro.benchsuite.workload import build_engine, update_statement

__all__ = ['ALL_ENTRIES', 'FIGURE6_VIEWS', 'entry_by_id', 'entry_by_name',
           'BenchmarkEntry', 'PaperRow', 'Fig6Point', 'Table1Row',
           'format_fig6', 'format_table1', 'run_fig6', 'run_table1',
           'build_engine', 'update_statement',
           'BenchCase', 'CaseResult', 'run_cases',
           'run_bench_all', 'run_overhead', 'build_summary',
           'check_summary']
