"""The full Table 1 benchmark catalog (§6.2.1).

32 views collected by the paper from the literature (textbooks, tutorials,
papers, the §3.3 case study) and from Q&A sites, re-authored from their
published profiles.  See :mod:`repro.benchsuite.catalog_literature` and
:mod:`repro.benchsuite.catalog_qa` for the entries themselves.
"""

from __future__ import annotations

from repro.benchsuite.catalog_literature import LITERATURE_ENTRIES
from repro.benchsuite.catalog_qa import QA_ENTRIES
from repro.benchsuite.entry import BenchmarkEntry

__all__ = ['ALL_ENTRIES', 'entry_by_name', 'entry_by_id',
           'FIGURE6_VIEWS']

ALL_ENTRIES: tuple[BenchmarkEntry, ...] = tuple(LITERATURE_ENTRIES +
                                                QA_ENTRIES)

#: The four views the paper benchmarks in Figure 6 (a–d).
FIGURE6_VIEWS = ('luxuryitems', 'officeinfo', 'outstanding_task',
                 'vw_brands')

_BY_NAME = {entry.name: entry for entry in ALL_ENTRIES}
_BY_ID = {entry.id: entry for entry in ALL_ENTRIES}


def entry_by_name(name: str) -> BenchmarkEntry:
    return _BY_NAME[name]


def entry_by_id(entry_id: int) -> BenchmarkEntry:
    return _BY_ID[entry_id]
