"""``python -m repro.benchsuite`` — the suite's command line.

``bench_all`` runs the cross-configuration summary benchmark
(:mod:`repro.benchsuite.bench_all`); every other subcommand
(``table1``, ``fig6``, ``backends``) is the paper-artifact runner
(:mod:`repro.benchsuite.runner`), unchanged.
"""

import sys


def main(argv=None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == 'bench_all':
        from repro.benchsuite.bench_all import main as bench_all_main
        return bench_all_main(argv[1:])
    from repro.benchsuite.runner import main as runner_main
    return runner_main(argv)


if __name__ == '__main__':
    raise SystemExit(main())
