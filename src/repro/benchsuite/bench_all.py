"""``bench_all``: every engine configuration, one comparable summary.

Runs the same key-local OLTP mix (write transactions of ``stmts``
inserts, each followed by view reads) across the seven engine
configurations this repo ships —

* ``memory``   — single :class:`~repro.rdbms.engine.Engine`, memory
  backend (the baseline every speedup is relative to);
* ``sqlite``   — single engine, SQLite backend;
* ``sharded``  — :class:`~repro.rdbms.sharded.ShardedEngine`, two
  thread shards, serial pipeline;
* ``parallel`` — two thread shards, thread-pooled fan-out;
* ``procs``    — two worker *processes* (pipelined pickle RPC);
* ``replica``  — single WAL-backed engine with delta-fed read
  replicas serving the reads;
* ``peers``    — a two-peer :class:`~repro.rdbms.peernet.PeerNetwork`
  (Dejima-style data sharing): writes commit on one peer, each read
  settles the network and serves from the *subscribed* peer, so the
  measured latency includes delta shipping plus the receiver's own
  putback

— through the shared :mod:`repro.benchsuite.harness` (seeded iterated
rounds, execution-order rotation, warmup), and emits ONE summary JSON:
per-config throughput, P50/P95/P99 latency, CPU seconds
(``resource.getrusage`` — psutil-free), run-level peak RSS, a merged
engine metrics sample, and a **metrics-overhead** section proving the
instrumented hot path stays within :data:`OVERHEAD_CEILING` of the
same engine with ``metrics.enabled = False`` (CI gates on it).

Per-config ``cpu_seconds`` is the *coordinator process* delta around
each timed round (exact for every in-process config); worker-process
CPU only appears in the run-level ``resources.cpu_children_seconds``
total, because ``RUSAGE_CHILDREN`` counts children only once reaped.

``speedup_vs_memory`` is the hardware-independent ratio
``benchmarks/trend.py`` tracks across the committed trajectory.
"""

from __future__ import annotations

import argparse
import json
import os
import resource
import sys
import tempfile
import time
from pathlib import Path

from repro.benchsuite.harness import BenchCase, run_cases
from repro.core.strategy import UpdateStrategy
from repro.rdbms.dml import Insert
from repro.rdbms.engine import Engine
from repro.rdbms.metrics import merge_snapshots, summarize_snapshot
from repro.rdbms.peernet import PeerNetwork
from repro.rdbms.replica import ReplicaEngine, ReplicaSet
from repro.rdbms.sharded import ShardedEngine
from repro.relational.schema import DatabaseSchema

__all__ = ['CONFIGS', 'OVERHEAD_CEILING', 'run_bench_all',
           'run_overhead', 'build_summary', 'check_summary', 'main']

#: Every configuration the summary must cover, in baseline-first order.
CONFIGS = ('memory', 'sqlite', 'sharded', 'parallel', 'procs',
           'replica', 'peers')

#: The gated bound on instrumented/uninstrumented hot-path time (the
#: per-transaction hooks are a handful of ``perf_counter`` calls and
#: locked dict updates on a millisecond-scale pipeline).  See
#: :func:`run_overhead` for how the ratio is measured.
OVERHEAD_CEILING = 1.02

SHARD_KEYS = {'items': 'iid', 'luxuryitems': 'iid'}


def _strategy() -> UpdateStrategy:
    sources = DatabaseSchema.build(
        items={'iid': 'int', 'iname': 'string', 'price': 'int'})
    return UpdateStrategy.parse('luxuryitems', sources, """
        ⊥ :- luxuryitems(I, N, P), not P > 1000.
        +items(I, N, P) :- luxuryitems(I, N, P), not items(I, N, P).
        expensive(I, N, P) :- items(I, N, P), P > 1000.
        -items(I, N, P) :- expensive(I, N, P), not luxuryitems(I, N, P).
    """, expected_get='luxuryitems(I, N, P) :- items(I, N, P), '
                      'P > 1000.')


def _base_rows(size: int) -> list[tuple]:
    return [(i, f'item_{i}', 2000 + i % 500) for i in range(size)]


def _cpu_self() -> float:
    usage = resource.getrusage(resource.RUSAGE_SELF)
    return usage.ru_utime + usage.ru_stime


def _build(config: str, strategy: UpdateStrategy, size: int,
           wal_dir: str) -> dict:
    """One ready-to-measure context for ``config``: ``engine`` takes
    ``execute_many`` writes, ``read()`` serves the view."""
    schema = strategy.sources
    rows = _base_rows(size)
    if config in ('memory', 'sqlite'):
        engine = Engine(schema, backend=config)
        engine.load('items', rows)
        engine.define_view(strategy, validate_first=False)
        return {'engine': engine, 'read': lambda: engine.rows('luxuryitems'),
                'close': engine.close}
    if config in ('sharded', 'parallel', 'procs'):
        engine = ShardedEngine(
            schema, shards=2, shard_keys=SHARD_KEYS,
            parallelism=2 if config == 'parallel' else None,
            execution='processes' if config == 'procs' else 'threads')
        engine.load('items', rows)
        engine.define_view(strategy, validate_first=False)
        return {'engine': engine, 'read': lambda: engine.rows('luxuryitems'),
                'close': engine.close}
    if config == 'replica':
        engine = Engine(schema,
                        wal=Path(wal_dir) / 'bench-all-replica.wal',
                        wal_sync=False)
        engine.load('items', rows)
        engine.define_view(strategy, validate_first=False)
        router = ReplicaSet(
            engine, [ReplicaEngine(schema, engine.wal)
                     for _ in range(2)],
            policy='round-robin', max_lag=24)
        router.catch_up()

        def close():
            router.close()
            engine.close()

        return {'engine': engine, 'router': router,
                'read': lambda: router.read('luxuryitems'),
                'close': close}
    if config == 'peers':
        def factory(load_rows):
            def build(directory):
                engine = Engine(schema,
                                wal=Path(directory) / 'engine.wal',
                                wal_sync=False)
                if load_rows:
                    engine.load('items', load_rows)
                engine.define_view(strategy, validate_first=False,
                                   exist_ok=True)
                return engine
            return build

        net = PeerNetwork(retry_backoff=0.001)
        base = Path(wal_dir)
        writer = net.add_peer('writer', factory(rows),
                              base / 'peer-writer',
                              shares=('luxuryitems',))
        reader = net.add_peer('reader', factory(None),
                              base / 'peer-reader',
                              shares=('luxuryitems',))
        net.share('luxuryitems', ('writer', 'reader'))
        net.settle()             # ship the initial view state once

        def read():
            # A read on the *partner*: the measured path is commit ->
            # delta shipped -> applied through the reader's putback.
            net.settle()
            return reader.engine.rows('luxuryitems')

        return {'engine': writer.engine, 'net': net, 'read': read,
                'close': net.close}
    raise ValueError(f'unknown bench_all config {config!r}')


def _mix_cases(strategy, size: int, wal_dir: str, *, txns: int,
               stmts: int, reads: int, cpu_totals: dict,
               metrics_holder: dict) -> list[BenchCase]:
    def make_case(config: str) -> BenchCase:
        def setup():
            ctx = _build(config, strategy, size, wal_dir)
            ctx['next_key'] = 10_000_000
            ctx['cpu'] = 0.0
            return ctx

        def op(ctx, round_index):
            engine, read = ctx['engine'], ctx['read']
            latencies = []
            cpu_before = _cpu_self()
            for _ in range(txns):
                key = ctx['next_key']
                ctx['next_key'] += stmts
                statements = [
                    ('items', [Insert((key + n, f'b{key + n}', 5000))
                               for n in range(stmts)])]
                t0 = time.perf_counter()
                engine.execute_many(statements)
                latencies.append(time.perf_counter() - t0)
                for _ in range(reads):
                    t0 = time.perf_counter()
                    read()
                    latencies.append(time.perf_counter() - t0)
            ctx['cpu'] += _cpu_self() - cpu_before
            return latencies

        def teardown(ctx):
            cpu_totals[config] = ctx['cpu']
            engine = ctx['engine']
            if hasattr(engine, 'metrics'):
                try:
                    snapshot = engine.metrics() \
                        if callable(engine.metrics) \
                        else engine.metrics_snapshot()
                    router = ctx.get('router')
                    if router is not None:
                        snapshot = merge_snapshots(
                            [snapshot, router.metrics_snapshot()])
                    net = ctx.get('net')
                    if net is not None:
                        snapshot = merge_snapshots(
                            [snapshot, net.metrics.snapshot()])
                    metrics_holder[config] = \
                        summarize_snapshot(snapshot)
                except Exception:
                    pass
            ctx['close']()

        return BenchCase(name=config, setup=setup, op=op,
                         teardown=teardown, warmup=1,
                         meta={'config': config})
    return [make_case(config) for config in CONFIGS]


def run_bench_all(size: int, *, rounds: int, txns: int, stmts: int,
                  reads: int, progress=None) -> tuple[list[dict], dict]:
    """The cross-config mix.  Returns ``(points, metrics_sample)``:
    one point per config (throughput, latency summary, CPU seconds,
    speedup vs the memory baseline) and each config's summarized
    engine-metrics snapshot."""
    strategy = _strategy()
    cpu_totals: dict = {}
    metrics_holder: dict = {}
    with tempfile.TemporaryDirectory(prefix='repro-bench-all-') as d:
        results = run_cases(
            _mix_cases(strategy, size, d, txns=txns, stmts=stmts,
                       reads=reads, cpu_totals=cpu_totals,
                       metrics_holder=metrics_holder),
            rounds=rounds, seed=7, progress=progress)
    points = []
    for result in results:
        ops = len(result.samples)
        busy = sum(result.samples)
        points.append({
            'config': result.name,
            'base_size': size,
            'rounds': len(result.wall),
            'txns_per_round': txns,
            'statements_per_txn': stmts,
            'reads_per_txn': reads,
            'ops_per_second': ops / busy if busy else 0.0,
            'latency': result.latency,
            'cpu_seconds': cpu_totals.get(result.name),
            'wall_seconds': result.total_seconds,
        })
    baseline = points[0]['ops_per_second']
    for point in points:
        point['speedup_vs_memory'] = \
            point['ops_per_second'] / baseline if baseline else 0.0
    return points, metrics_holder


# -- metrics overhead -------------------------------------------------

def run_overhead(size: int, *, rounds: int, micro_txns: int = 1000,
                 stmts: int = 1000, txns: int = 4,
                 progress=None) -> dict:
    """The gated metrics-overhead measurement, in two differential
    parts on **one** engine (same object, same memory layout — only
    the ``metrics.enabled`` flag varies):

    1. **Hook cost per transaction** — paired loops of ``micro_txns``
       single-insert commits, flag on vs flag off, alternating which
       side runs first; the per-transaction *difference* of the best
       per-side loops isolates the instrumentation (a handful of
       ``perf_counter`` calls and locked dict updates — a few µs).
    2. **A realistic transaction's duration** — the best
       ``stmts``-insert commit with metrics off.

    ``ratio`` = ``1 + hook_seconds / plain_txn_seconds``.  A direct
    A/B of millisecond transactions cannot resolve a ≤2% question on
    a noisy shared box (run-to-run jitter is ±3–5% even on minima);
    the paired differential resolves the hook cost to sub-µs because
    both sides average it over thousands of *identical* commits —
    and the hook count is per-transaction (per phase), not
    per-statement, so the µs figure transfers to transactions of any
    size.  Micro-commits would show the same fixed cost as a
    double-digit percentage, which is what ``enabled = False`` is
    for — the gate asks about transactions doing real putback work."""
    strategy = _strategy()
    engine = Engine(strategy.sources)
    try:
        engine.load('items', _base_rows(size))
        engine.define_view(strategy, validate_first=False)
        state = {'next_key': 20_000_000}

        def micro_loop() -> float:
            key = state['next_key']
            state['next_key'] += micro_txns
            t0 = time.perf_counter()
            for n in range(micro_txns):
                engine.execute_many(
                    [('items', [Insert((key + n, f'o{key + n}',
                                        5000))])])
            return time.perf_counter() - t0

        def big_txn() -> float:
            key = state['next_key']
            state['next_key'] += stmts
            statements = [
                ('items', [Insert((key + n, f'o{key + n}', 5000))
                           for n in range(stmts)])]
            t0 = time.perf_counter()
            engine.execute_many(statements)
            return time.perf_counter() - t0

        reps = max(rounds, 4)
        engine.metrics.enabled = True
        micro_loop()                       # warm the sealed plans
        on_best = off_best = float('inf')
        for rep in range(reps):
            order = (True, False) if rep % 2 == 0 else (False, True)
            for enabled in order:
                engine.metrics.enabled = enabled
                elapsed = micro_loop()
                if enabled:
                    on_best = min(on_best, elapsed)
                else:
                    off_best = min(off_best, elapsed)
            if progress:
                progress(f'overhead pair {rep + 1}/{reps}')
        hook_seconds = max(0.0, (on_best - off_best) / micro_txns)

        engine.metrics.enabled = False
        plain_txn = min(big_txn() for _ in range(max(txns, 2)))
    finally:
        engine.close()
    return {
        'micro_txns_per_loop': micro_txns,
        'pairs': reps,
        'stmts_per_txn': stmts,
        'hook_seconds_per_txn': hook_seconds,
        'micro_txn_on_seconds': on_best / micro_txns,
        'micro_txn_off_seconds': off_best / micro_txns,
        'plain_txn_seconds': plain_txn,
        'ratio': 1.0 + (hook_seconds / plain_txn if plain_txn
                        else 0.0),
        'ceiling': OVERHEAD_CEILING,
    }


# -- summary / gating -------------------------------------------------

def build_summary(points: list[dict], metrics_sample: dict,
                  overhead: dict, *, mode: str, size: int,
                  rounds: int) -> dict:
    self_usage = resource.getrusage(resource.RUSAGE_SELF)
    child_usage = resource.getrusage(resource.RUSAGE_CHILDREN)
    return {
        'benchmark': 'bench_all',
        'mode': mode,
        'size': size,
        'rounds': rounds,
        'cpu_count': os.cpu_count(),
        'note': ('one OLTP mix, six engine configurations, shared '
                 'rotation-fair harness; speedup_vs_memory is the '
                 'hardware-independent ratio the committed trend file '
                 'gates on.  cpu_seconds is coordinator-process time '
                 'per config; worker-process CPU appears only in '
                 'resources.cpu_children_seconds (getrusage counts '
                 'children once reaped).'),
        'configs': points,
        'metrics_overhead': overhead,
        'metrics_sample': metrics_sample,
        'resources': {
            'cpu_self_seconds': self_usage.ru_utime +
            self_usage.ru_stime,
            'cpu_children_seconds': child_usage.ru_utime +
            child_usage.ru_stime,
            'max_rss_kb': self_usage.ru_maxrss,
            'children_max_rss_kb': child_usage.ru_maxrss,
        },
    }


def check_summary(summary: dict) -> list[str]:
    """Schema + overhead gates.  Returns failure messages (empty =
    pass) so CI, tests, and the CLI share one validator."""
    failures = []
    for key in ('benchmark', 'mode', 'size', 'rounds', 'configs',
                'metrics_overhead', 'metrics_sample', 'resources'):
        if key not in summary:
            failures.append(f'summary missing key {key!r}')
    points = {p.get('config'): p for p in summary.get('configs', [])}
    for config in CONFIGS:
        point = points.get(config)
        if point is None:
            failures.append(f'summary missing config {config!r}')
            continue
        for key in ('ops_per_second', 'latency', 'cpu_seconds',
                    'speedup_vs_memory'):
            if key not in point:
                failures.append(f'config {config!r} missing {key!r}')
        latency = point.get('latency') or {}
        for pct in ('p50_ms', 'p95_ms', 'p99_ms'):
            if pct not in latency:
                failures.append(
                    f'config {config!r} latency missing {pct!r}')
    resources = summary.get('resources', {})
    for key in ('cpu_self_seconds', 'max_rss_kb'):
        if key not in resources:
            failures.append(f'resources missing key {key!r}')
    overhead = summary.get('metrics_overhead', {})
    ratio = overhead.get('ratio')
    if ratio is None:
        failures.append('metrics_overhead missing ratio')
    elif ratio > overhead.get('ceiling', OVERHEAD_CEILING):
        failures.append(
            f'metrics overhead {ratio:.4f}x exceeds the '
            f'{overhead.get("ceiling", OVERHEAD_CEILING):.2f}x ceiling '
            f'(instrumented hot path is no longer negligible)')
    return failures


def format_points(points: list[dict]) -> str:
    lines = [f'{"config":>10} {"ops/s":>10} {"p50 ms":>8} '
             f'{"p95 ms":>8} {"p99 ms":>8} {"cpu s":>7} {"x mem":>6}']
    lines.append('-' * len(lines[0]))
    for p in points:
        lat = p['latency']
        lines.append(
            f'{p["config"]:>10} {p["ops_per_second"]:>10.0f} '
            f'{lat["p50_ms"]:>8.3f} {lat["p95_ms"]:>8.3f} '
            f'{lat["p99_ms"]:>8.3f} {p["cpu_seconds"]:>7.2f} '
            f'{p["speedup_vs_memory"]:>6.2f}')
    return '\n'.join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog='python -m repro.benchsuite bench_all',
        description=__doc__)
    parser.add_argument('--size', type=int, default=20_000,
                        help='base items rows per configuration')
    parser.add_argument('--rounds', type=int, default=5,
                        help='timed harness rounds per configuration')
    parser.add_argument('--txns', type=int, default=12,
                        help='write transactions per round')
    parser.add_argument('--stmts', type=int, default=10,
                        help='insert statements per transaction')
    parser.add_argument('--reads', type=int, default=2,
                        help='view reads after each transaction')
    parser.add_argument('--quick', action='store_true',
                        help='small sizes: a CI smoke run')
    parser.add_argument('--check', action='store_true',
                        help='fail on summary-schema violations or a '
                             'metrics overhead beyond the ceiling')
    parser.add_argument('--json', type=Path,
                        default=Path.cwd() / 'BENCH_all.json')
    args = parser.parse_args(argv)
    size, rounds, txns = args.size, args.rounds, args.txns
    mode = 'full'
    if args.quick:
        size, rounds, txns = 5_000, 3, 6
        mode = 'quick'

    progress = lambda msg: print(f'  bench_all: {msg}',    # noqa: E731
                                 file=sys.stderr)
    points, metrics_sample = run_bench_all(
        size, rounds=rounds, txns=txns, stmts=args.stmts,
        reads=args.reads, progress=progress)
    print(format_points(points))
    overhead = run_overhead(size, rounds=max(rounds, 5),
                            progress=progress)
    print(f'metrics overhead: {overhead["ratio"]:.4f}x instrumented '
          f'vs plain (ceiling {OVERHEAD_CEILING:.2f}x)')

    summary = build_summary(points, metrics_sample, overhead,
                            mode=mode, size=size, rounds=rounds)
    args.json.write_text(json.dumps(summary, indent=2) + '\n',
                         encoding='utf-8')
    print(f'wrote {args.json}')

    if args.check:
        failures = check_summary(summary)
        for failure in failures:
            print(f'FAIL: {failure}', file=sys.stderr)
        if failures:
            return 1
        print('check passed: summary schema complete, metrics '
              f'overhead {overhead["ratio"]:.4f}x within ceiling')
    return 0


if __name__ == '__main__':
    raise SystemExit(main())
