"""Latency summarisation for the benchmark suite.

Mean throughput hides the tail — a serving layer is judged on what its
*slowest* percentile of clients experience, so the benchmarks record
per-transaction latencies from seeded iterated runs and summarise them
here: P50/P95/P99 by linear interpolation (the same estimator NumPy
calls ``linear`` and SQL engines call ``percentile_cont``), which is
stable for the small-N samples a quick bench run produces — the nearest
-rank estimator would jump a whole sample at a time.

This is the first slice of the ROADMAP observability item; the JSON
artifacts (``BENCH_shard.json``, ``BENCH_serve.json``) carry the
summaries so regressions in tail latency gate like throughput does.
"""

from __future__ import annotations

import statistics
from typing import Iterable, Sequence

__all__ = ['percentile', 'summarize_latencies']


def percentile(samples: Sequence[float], q: float) -> float:
    """The ``q``-th percentile (``0 <= q <= 100``) of ``samples`` by
    linear interpolation between closest ranks."""
    if not samples:
        raise ValueError('percentile of an empty sample set')
    if not 0 <= q <= 100:
        raise ValueError(f'percentile must be in [0, 100], got {q}')
    ordered = sorted(samples)
    if len(ordered) == 1:
        return ordered[0]
    rank = (len(ordered) - 1) * (q / 100.0)
    low = int(rank)
    frac = rank - low
    if frac == 0:
        return ordered[low]
    return ordered[low] + (ordered[low + 1] - ordered[low]) * frac


def summarize_latencies(seconds: Iterable[float]) -> dict:
    """Summarise per-operation latencies (in seconds) into the
    milliseconds the JSON artifacts record: P50/P95/P99, mean, max and
    the sample count."""
    samples = [s * 1000.0 for s in seconds]
    return {
        'n': len(samples),
        'mean_ms': statistics.fmean(samples),
        'p50_ms': percentile(samples, 50),
        'p95_ms': percentile(samples, 95),
        'p99_ms': percentile(samples, 99),
        'max_ms': max(samples),
    }
