"""Table 1 benchmark entries #24–#32: view update questions collected from
Database Administrators Stack Exchange and Stack Overflow (§6.2.1)."""

from __future__ import annotations

from repro.benchsuite.entry import BenchmarkEntry, PaperRow
from repro.relational.schema import DatabaseSchema

__all__ = ['QA_ENTRIES']


def _ids(n: int) -> list:
    return list(range(n))


QA_ENTRIES: list[BenchmarkEntry] = [

    # ----------------------------------------------------------------- #24
    BenchmarkEntry(
        id=24, name='ukaz_lok', source='qa',
        paper=PaperRow('S', 6, 'C', True, True, 1.79, 10104),
        sources=DatabaseSchema.build(
            lok={'lid': 'int', 'nazev': 'string', 'stav': 'int'}),
        putdelta="""
            ⊥ :- ukaz_lok(L, N, S), not S > 0.
            aktivni(L, N, S) :- lok(L, N, S), S > 0.
            +lok(L, N, S) :- ukaz_lok(L, N, S), not lok(L, N, S).
            -lok(L, N, S) :- aktivni(L, N, S), not ukaz_lok(L, N, S).
        """,
        expected_get="ukaz_lok(L, N, S) :- lok(L, N, S), S > 0.",
        column_pools={'lok': {'stav': [0, 1, 2, 3]}},
        notes='Stack Overflow (Czech rail example): selection of active '
              'locomotives.'),

    # ----------------------------------------------------------------- #25
    BenchmarkEntry(
        id=25, name='message', source='qa',
        paper=PaperRow('U', 8, 'C', True, True, 1.8, 15770),
        sources=DatabaseSchema.build(
            inbox={'mid': 'int', 'body': 'string'},
            outbox={'mid': 'int', 'body': 'string'}),
        putdelta="""
            ⊥ :- message(M, B, F), not F = 'in', not F = 'out'.
            +inbox(M, B) :- message(M, B, F), F = 'in', not inbox(M, B).
            -inbox(M, B) :- inbox(M, B), not message(M, B, 'in').
            +outbox(M, B) :- message(M, B, F), F = 'out',
                not outbox(M, B).
            -outbox(M, B) :- outbox(M, B), not message(M, B, 'out').
        """,
        expected_get="""
            message(M, B, F) :- inbox(M, B), F = 'in'.
            message(M, B, F) :- outbox(M, B), F = 'out'.
        """,
        notes='DBA Stack Exchange: union of inbox and outbox folders '
              'with a folder-tag domain constraint.'),

    # ----------------------------------------------------------------- #26
    BenchmarkEntry(
        id=26, name='outstanding_task', source='qa',
        paper=PaperRow('P, SJ', 10, 'ID, C', True, True, 10.07, 18253),
        sources=DatabaseSchema.build(
            tasks={'tid': 'int', 'title': 'string', 'owner': 'string',
                   'created': 'date', 'priority': 'int',
                   'status': 'string'},
            flow={'tid': 'int', 'step': 'string'}),
        putdelta="""
            ⊥ :- outstanding_task(T, N, O, P), not inflow(T).
            ⊥ :- outstanding_task(T, N, O, P), P < 0.
            inflow(T) :- flow(T, _).
            open_task(T, N, O, P) :- tasks(T, N, O, _, P, S), S = 'open'.
            +tasks(T, N, O, C, P, S) :- outstanding_task(T, N, O, P),
                not open_task(T, N, O, P), C = '2020-01-01', S = 'open'.
            -tasks(T, N, O, C, P, S) :- tasks(T, N, O, C, P, S),
                S = 'open', inflow(T), not outstanding_task(T, N, O, P).
        """,
        expected_get="outstanding_task(T, N, O, P) :- "
                     "tasks(T, N, O, _, P, S), S = 'open', inflow(T).\n"
                     "inflow(T) :- flow(T, _).",
        column_pools={'tasks': {'tid': _ids(1500),
                                'status': ['open', 'done'],
                                'priority': [0, 1, 2, 3]},
                      'flow': {'tid': _ids(1500),
                               'step': ['triage', 'review', 'qa']}},
        size_weights={'tasks': 1.0, 'flow': 0.6},
        notes='Figure 6c subject (DBA Stack Exchange): open tasks that '
              'appear in the workflow table — the widest schema in the '
              'suite, hence the paper\'s longest validation time.'),

    # ----------------------------------------------------------------- #27
    BenchmarkEntry(
        id=27, name='poi_view', source='qa',
        paper=PaperRow('P,IJ', 12, 'PK', False, True, 2.1, 24741),
        sources=DatabaseSchema.build(
            poi={'pid': 'int', 'pname': 'string', 'loc': 'int'},
            locations={'loc': 'int', 'lat': 'float', 'lon': 'float'}),
        putdelta="""
            ⊥ :- poi_view(P, N1, L, LA1, LO1), poi_view(P, N2, L2, LA2,
                LO2), not N1 = N2.
            ⊥ :- poi_view(P1, N1, L, LA1, LO1), poi_view(P2, N2, L, LA2,
                LO2), not LA1 = LA2.
            ⊥ :- poi_view(P1, N1, L, LA1, LO1), poi_view(P2, N2, L, LA2,
                LO2), not LO1 = LO2.
            vpoi(P, N, L) :- poi_view(P, N, L, _, _).
            vloc(L, LA, LO) :- poi_view(_, _, L, LA, LO).
            +poi(P, N, L) :- poi_view(P, N, L, LA, LO), not poi(P, N, L).
            +locations(L, LA, LO) :- poi_view(P, N, L, LA, LO),
                not locations(L, LA, LO).
            -locations(L, LA, LO) :- locations(L, LA, LO), vloc(L, LA2,
                LO2), not LA = LA2.
            -locations(L, LA, LO) :- locations(L, LA, LO), vloc(L, LA2,
                LO2), not LO = LO2.
            -poi(P, N, L) :- poi(P, N, L), locations(L, _, _),
                not vpoi(P, N, L).
            -poi(P, N, L) :- poi(P, N, L), vloc(L, _, _),
                not vpoi(P, N, L).
        """,
        expected_get="poi_view(P, N, L, LA, LO) :- poi(P, N, L), "
                     "locations(L, LA, LO).",
        column_pools={'poi': {'loc': _ids(200)},
                      'locations': {'loc': _ids(200)}},
        size_weights={'poi': 1.0, 'locations': 0.25},
        notes='Stack Overflow: points of interest joined with their '
              'coordinates.'),

    # ----------------------------------------------------------------- #28
    BenchmarkEntry(
        id=28, name='phonelist', source='qa',
        paper=PaperRow('U', 14, 'C', True, True, 1.94, 16553),
        sources=DatabaseSchema.build(
            phones_office={'owner': 'string', 'number': 'string'},
            phones_mobile={'owner': 'string', 'number': 'string'},
            phones_home={'owner': 'string', 'number': 'string'}),
        putdelta="""
            ⊥ :- phonelist(O, N, K), not K = 'office', not K = 'mobile',
                not K = 'home'.
            +phones_office(O, N) :- phonelist(O, N, K), K = 'office',
                not phones_office(O, N).
            -phones_office(O, N) :- phones_office(O, N),
                not phonelist(O, N, 'office').
            +phones_mobile(O, N) :- phonelist(O, N, K), K = 'mobile',
                not phones_mobile(O, N).
            -phones_mobile(O, N) :- phones_mobile(O, N),
                not phonelist(O, N, 'mobile').
            +phones_home(O, N) :- phonelist(O, N, K), K = 'home',
                not phones_home(O, N).
            -phones_home(O, N) :- phones_home(O, N),
                not phonelist(O, N, 'home').
        """,
        expected_get="""
            phonelist(O, N, K) :- phones_office(O, N), K = 'office'.
            phonelist(O, N, K) :- phones_mobile(O, N), K = 'mobile'.
            phonelist(O, N, K) :- phones_home(O, N), K = 'home'.
        """,
        notes='DBA Stack Exchange: three-way tagged union of phone '
              'directories.'),

    # ----------------------------------------------------------------- #29
    BenchmarkEntry(
        id=29, name='products', source='qa',
        paper=PaperRow('LJ', 16, 'PK, FK, C', False, True, 3.6, 58394),
        sources=DatabaseSchema.build(
            product_names={'pid': 'int', 'pname': 'string'},
            stock={'pid': 'int', 'qty': 'int'}),
        putdelta="""
            ⊥ :- products(P, N1, Q1), products(P, N2, Q2), not N1 = N2.
            ⊥ :- products(P, N1, Q1), products(P, N2, Q2), not Q1 = Q2.
            ⊥ :- products(P, N, Q), Q < -1.
            ⊥ :- stock(P, Q), not has_name(P).
            has_name(P) :- product_names(P, _).
            vpn(P, N) :- products(P, N, _).
            vname(P) :- products(P, _, _).
            vq(P, Q) :- products(P, _, Q).
            +product_names(P, N) :- products(P, N, Q),
                not product_names(P, N).
            -product_names(P, N) :- product_names(P, N), not vpn(P, N).
            +stock(P, Q) :- products(P, N, Q), not Q = -1,
                not stock(P, Q).
            -stock(P, Q) :- stock(P, Q), vq(P, Q2), not Q = Q2.
            -stock(P, Q) :- stock(P, Q), has_name(P), not vname(P).
        """,
        expected_get="""
            products(P, N, Q) :- product_names(P, N), stock(P, Q).
            products(P, N, Q) :- product_names(P, N), not stock(P, _),
                Q = -1.
        """,
        column_pools={'product_names': {'pid': _ids(1000)},
                      'stock': {'pid': _ids(1000),
                                'qty': list(range(0, 500))}},
        size_weights={'product_names': 1.0, 'stock': 0.7},
        notes='Stack Overflow: LEFT JOIN of products with stock; the '
              'missing side is encoded as qty = -1 (Datalog has no '
              'NULL), guarded by the qty ≥ -1 domain constraint.'),

    # ----------------------------------------------------------------- #30
    BenchmarkEntry(
        id=30, name='koncerty', source='qa',
        paper=PaperRow('IJ', 17, 'PK', False, True, 1.93, 29147),
        sources=DatabaseSchema.build(
            koncert={'kid': 'int', 'kname': 'string', 'vid': 'int'},
            venues={'vid': 'int', 'vname': 'string', 'city': 'string'}),
        putdelta="""
            ⊥ :- koncerty(K, N, V, VN1, C1), koncerty(K2, N2, V, VN2,
                C2), not VN1 = VN2.
            ⊥ :- koncerty(K, N, V, VN1, C1), koncerty(K2, N2, V, VN2,
                C2), not C1 = C2.
            ⊥ :- koncerty(K, N1, V1, VN1, C1), koncerty(K, N2, V2, VN2,
                C2), not N1 = N2.
            vkon(K, N, V) :- koncerty(K, N, V, _, _).
            vven(V, VN, C) :- koncerty(_, _, V, VN, C).
            +koncert(K, N, V) :- koncerty(K, N, V, VN, C),
                not koncert(K, N, V).
            +venues(V, VN, C) :- koncerty(K, N, V, VN, C),
                not venues(V, VN, C).
            -venues(V, VN, C) :- venues(V, VN, C), vven(V, VN2, C2),
                not VN = VN2.
            -venues(V, VN, C) :- venues(V, VN, C), vven(V, VN2, C2),
                not C = C2.
            -koncert(K, N, V) :- koncert(K, N, V), venues(V, _, _),
                not vkon(K, N, V).
            -koncert(K, N, V) :- koncert(K, N, V), vven(V, _, _),
                not vkon(K, N, V).
        """,
        expected_get="koncerty(K, N, V, VN, C) :- koncert(K, N, V), "
                     "venues(V, VN, C).",
        column_pools={'koncert': {'vid': _ids(120)},
                      'venues': {'vid': _ids(120)}},
        size_weights={'koncert': 1.0, 'venues': 0.12},
        notes='Stack Overflow (Czech): concerts joined with venues.'),

    # ----------------------------------------------------------------- #31
    BenchmarkEntry(
        id=31, name='purchaseview', source='qa',
        paper=PaperRow('P,IJ', 19, 'PK, FK, JD', False, True, 1.89,
                       27262),
        sources=DatabaseSchema.build(
            purchases={'puid': 'int', 'cid': 'int', 'amount': 'int',
                       'pdate': 'date'},
            customers2={'cid': 'int', 'cname': 'string'}),
        putdelta="""
            ⊥ :- purchaseview(P, C, N1, A1), purchaseview(P, C2, N2, A2),
                not C = C2.
            ⊥ :- purchaseview(P, C, N1, A1), purchaseview(P, C2, N2, A2),
                not A1 = A2.
            ⊥ :- purchaseview(P1, C, N1, A1), purchaseview(P2, C, N2,
                A2), not N1 = N2.
            vpur(P, C, A) :- purchaseview(P, C, _, A).
            vcust(C, N) :- purchaseview(_, C, N, _).
            known_purchase(P, C, A) :- purchases(P, C, A, _).
            +purchases(P, C, A, D) :- purchaseview(P, C, N, A),
                not known_purchase(P, C, A), D = '2020-01-01'.
            +customers2(C, N) :- purchaseview(P, C, N, A),
                not customers2(C, N).
            -customers2(C, N) :- customers2(C, N), vcust(C, N2),
                not N = N2.
            -purchases(P, C, A, D) :- purchases(P, C, A, D),
                customers2(C, _), not vpur(P, C, A).
            -purchases(P, C, A, D) :- purchases(P, C, A, D), vcust(C, _),
                not vpur(P, C, A).
        """,
        expected_get="purchaseview(P, C, N, A) :- purchases(P, C, A, _), "
                     "customers2(C, N).",
        column_pools={'purchases': {'cid': _ids(250)},
                      'customers2': {'cid': _ids(250)}},
        size_weights={'purchases': 1.0, 'customers2': 0.2},
        notes='DBA Stack Exchange: purchases joined with customer names; '
              'purchase date is projected away.'),

    # ----------------------------------------------------------------- #32
    BenchmarkEntry(
        id=32, name='vehicle_view', source='qa',
        paper=PaperRow('P,IJ', 20, 'PK, FK, JD', False, True, 2.03,
                       25226),
        sources=DatabaseSchema.build(
            vehicles={'vid': 'int', 'plate': 'string', 'oid': 'int'},
            owners={'oid': 'int', 'oname': 'string', 'phone': 'string'}),
        putdelta="""
            ⊥ :- vehicle_view(V, P1, O, N1), vehicle_view(V, P2, O2, N2),
                not P1 = P2.
            ⊥ :- vehicle_view(V, P1, O, N1), vehicle_view(V, P2, O2, N2),
                not O = O2.
            ⊥ :- vehicle_view(V1, P1, O, N1), vehicle_view(V2, P2, O,
                N2), not N1 = N2.
            vveh(V, P, O) :- vehicle_view(V, P, O, _).
            vown(O, N) :- vehicle_view(_, _, O, N).
            known_owner(O, N) :- owners(O, N, _).
            +vehicles(V, P, O) :- vehicle_view(V, P, O, N),
                not vehicles(V, P, O).
            +owners(O, N, T) :- vehicle_view(V, P, O, N),
                not known_owner(O, N), T = 'n/a'.
            -owners(O, N, T) :- owners(O, N, T), vown(O, N2), not N = N2.
            -vehicles(V, P, O) :- vehicles(V, P, O), owners(O, _, _),
                not vveh(V, P, O).
            -vehicles(V, P, O) :- vehicles(V, P, O), vown(O, _),
                not vveh(V, P, O).
        """,
        expected_get="vehicle_view(V, P, O, N) :- vehicles(V, P, O), "
                     "owners(O, N, _).",
        column_pools={'vehicles': {'oid': _ids(300)},
                      'owners': {'oid': _ids(300)}},
        size_weights={'vehicles': 1.0, 'owners': 0.3},
        notes='Stack Overflow: vehicles joined with owner names; the '
              'owner phone column is projected away.'),
]
