"""Benchmark entry model for the Table 1 reproduction.

Each entry re-authors one of the paper's 32 collected views from its
published profile: the operators in the view definition, the program size,
the constraint kinds, and LVGN/NR-Datalog membership.  The paper's own
numbers are carried in :attr:`BenchmarkEntry.paper` so the harness can
print paper-vs-measured side by side.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.strategy import UpdateStrategy
from repro.relational.schema import DatabaseSchema

__all__ = ['PaperRow', 'BenchmarkEntry']


@dataclass(frozen=True)
class PaperRow:
    """The published Table 1 row for one view."""

    operators: str          # S, P, SJ, IJ, LJ, U, D, A combinations
    size_loc: int | None    # "Program size (LOC)"
    constraints: str        # PK, FK, ID, C, JD combinations ('' = none)
    lvgn: bool | None       # LVGN-Datalog column (None for '-')
    nr_datalog: bool | None
    validation_time: float | None   # seconds
    sql_bytes: int | None


@dataclass(frozen=True)
class BenchmarkEntry:
    """One re-authored benchmark view."""

    id: int
    name: str
    source: str                  # 'literature' or 'qa'
    paper: PaperRow
    sources: DatabaseSchema | None
    putdelta: str | None         # None: not expressible (emp_view)
    expected_get: str | None = None
    notes: str = ''
    # Column pools for workload generation: relation -> column -> pool.
    column_pools: dict = field(default_factory=dict)
    # Relative cardinalities per base relation (scaled by the workload n).
    size_weights: dict = field(default_factory=dict)

    @property
    def expressible(self) -> bool:
        return self.putdelta is not None

    def strategy(self) -> UpdateStrategy:
        if not self.expressible:
            from repro.errors import FragmentError
            raise FragmentError(
                f'{self.name} uses aggregation, which NR-Datalog (and this '
                f'reproduction, like the paper) does not support')
        return UpdateStrategy.parse(self.name, self.sources, self.putdelta,
                                    self.expected_get)

    def sizes(self, n: int) -> dict[str, int]:
        """Per-relation cardinalities for a workload of scale ``n``."""
        weights = self.size_weights or {rel.name: 1.0
                                        for rel in self.sources}
        return {name: max(1, int(n * weight))
                for name, weight in weights.items()}
