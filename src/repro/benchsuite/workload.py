"""Workload generation for the Figure 6 experiments.

The paper's protocol (§6.2.2): "For each view, we randomly generate data
for the base tables and measure the running time of the view update
strategy against the base table size when there is an SQL statement that
attempts to modify the view."

:func:`build_engine` loads a random instance at scale ``n`` and registers
the view twice is not needed — callers build one engine per mode
(``incremental`` True/False) and :func:`update_statement` supplies a
fresh single-tuple view INSERT that satisfies the entry's constraints.
"""

from __future__ import annotations

import random

from repro.benchsuite.catalog import entry_by_name
from repro.benchsuite.entry import BenchmarkEntry
from repro.core.strategy import UpdateStrategy
from repro.rdbms.engine import Engine
from repro.relational.generators import random_database

__all__ = ['build_engine', 'update_statement', 'FIG6_PROTOCOL']


def build_engine(entry: BenchmarkEntry, n: int, *, seed: int = 7,
                 incremental: bool = True,
                 strategy: UpdateStrategy | None = None,
                 backend: str | None = None) -> Engine:
    """An engine with random base data at scale ``n`` and the entry's
    view registered (trusting the expected get — the strategy is
    validated separately by the Table 1 harness).  ``backend`` selects
    the storage substrate (default: ``REPRO_BACKEND`` or memory)."""
    strategy = strategy or entry.strategy()
    engine = Engine(strategy.sources, backend=backend)
    data = random_database(strategy.sources, entry.sizes(n), seed=seed,
                           column_pools=entry.column_pools)
    for name in strategy.sources.names():
        engine.load(name, data[name])
    engine.define_view(strategy, validate_first=False,
                       use_incremental=incremental)
    return engine


def _fresh_insert(entry_name: str, engine: Engine, index: int) -> tuple:
    """A view tuple that is insertable under the entry's constraints."""
    if entry_name == 'luxuryitems':
        return (10_000_000 + index, f'bench_item_{index}', 5000 + index)
    if entry_name == 'officeinfo':
        return (f'bench_person_{index}', f'office_{index}')
    if entry_name == 'outstanding_task':
        # The ID constraint requires the task id to appear in `flow`.
        flow = engine.rows('flow')
        tid = next(iter(flow))[0]
        return (tid, f'bench_task_{index}', f'owner_{index}', 1)
    if entry_name == 'vw_brands':
        return (10_000_000 + index, f'bench_brand_{index}', 'domestic')
    raise KeyError(f'no insert template for {entry_name!r}')


def update_statement(entry: BenchmarkEntry, engine: Engine,
                     index: int) -> tuple:
    """The single view tuple to INSERT for one measured update."""
    return _fresh_insert(entry.name, engine, index)


#: Scales used by the Figure 6 reproduction (the paper sweeps 0–3×10⁶ on
#: PostgreSQL; pure Python runs the same sweep at 10⁴–2×10⁵ by default —
#: the compared quantity is the growth *shape*, not absolute time).
FIG6_PROTOCOL = {
    'sizes': (10_000, 25_000, 50_000, 100_000, 200_000),
    'views': ('luxuryitems', 'officeinfo', 'outstanding_task',
              'vw_brands'),
}
