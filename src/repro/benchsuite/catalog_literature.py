"""Table 1 benchmark entries #1–#23: views collected from the literature
(textbooks, tutorials, papers, and the paper's own case study, §6.2.1).

The paper's benchmark SQL collection is private; every entry here is
re-authored from the published profile (operators / LOC / constraints /
fragment membership — see DESIGN.md §3).  Paper numbers come from Table 1.
"""

from __future__ import annotations

from repro.benchsuite.entry import BenchmarkEntry, PaperRow
from repro.relational.schema import DatabaseSchema

__all__ = ['LITERATURE_ENTRIES']


def _ids(n: int = 2000) -> list:
    return list(range(n))


LITERATURE_ENTRIES: list[BenchmarkEntry] = [

    # ------------------------------------------------------------------ #1
    BenchmarkEntry(
        id=1, name='car_master', source='literature',
        paper=PaperRow('P', 4, '', True, True, 1.74, 8447),
        sources=DatabaseSchema.build(
            car={'cid': 'int', 'model': 'string', 'price': 'int'}),
        putdelta="""
            car_names(C, M) :- car(C, M, _).
            +car(C, M, P) :- car_master(C, M), not car_names(C, M), P = 0.
            -car(C, M, P) :- car(C, M, P), not car_master(C, M).
        """,
        expected_get="car_master(C, M) :- car(C, M, _).",
        notes='Projection view; insertions take a default price.'),

    # ------------------------------------------------------------------ #2
    BenchmarkEntry(
        id=2, name='goodstudents', source='literature',
        paper=PaperRow('P,S', 5, 'C', True, True, 1.86, 9182),
        sources=DatabaseSchema.build(
            student={'sid': 'int', 'sname': 'string', 'gpa': 'float',
                     'major': 'string'}),
        putdelta="""
            ⊥ :- goodstudents(S, N, G), not G > 3.5.
            in_student(S, N, G) :- student(S, N, G, _).
            +student(S, N, G, M) :- goodstudents(S, N, G),
                not in_student(S, N, G), M = 'undeclared'.
            -student(S, N, G, M) :- student(S, N, G, M), G > 3.5,
                not goodstudents(S, N, G).
        """,
        expected_get="goodstudents(S, N, G) :- student(S, N, G, _), "
                     "G > 3.5.",
        column_pools={'student': {'gpa': [2.0, 3.0, 3.6, 3.9, 4.0]}},
        notes='Selection on GPA with projection of the major column.'),

    # ------------------------------------------------------------------ #3
    BenchmarkEntry(
        id=3, name='luxuryitems', source='literature',
        paper=PaperRow('S', 5, 'C', True, True, 1.77, 8938),
        sources=DatabaseSchema.build(
            items={'iid': 'int', 'iname': 'string', 'price': 'int'}),
        putdelta="""
            ⊥ :- luxuryitems(I, N, P), not P > 1000.
            +items(I, N, P) :- luxuryitems(I, N, P), not items(I, N, P).
            expensive(I, N, P) :- items(I, N, P), P > 1000.
            -items(I, N, P) :- expensive(I, N, P),
                not luxuryitems(I, N, P).
        """,
        expected_get="luxuryitems(I, N, P) :- items(I, N, P), P > 1000.",
        column_pools={'items': {'price': list(range(1, 2001, 7))}},
        notes='Figure 6a subject: pure selection view.'),

    # ------------------------------------------------------------------ #4
    BenchmarkEntry(
        id=4, name='usa_city', source='literature',
        paper=PaperRow('P,S', 5, 'C', True, True, 1.77, 9059),
        sources=DatabaseSchema.build(
            city={'cid': 'int', 'cname': 'string', 'country': 'string',
                  'population': 'int'}),
        putdelta="""
            ⊥ :- usa_city(I, N, C), not C = 'USA'.
            known_city(I, N, C) :- city(I, N, C, _).
            +city(I, N, C, P) :- usa_city(I, N, C),
                not known_city(I, N, C), P = 0.
            -city(I, N, C, P) :- city(I, N, C, P), C = 'USA',
                not usa_city(I, N, C).
        """,
        expected_get="usa_city(I, N, C) :- city(I, N, C, _), C = 'USA'.",
        column_pools={'city': {'country': ['USA', 'Japan', 'France',
                                           'Brazil']}},
        notes='Selection on country plus projection of population.'),

    # ------------------------------------------------------------------ #5
    BenchmarkEntry(
        id=5, name='ced', source='literature',
        paper=PaperRow('D', 6, '', True, True, 1.72, 8847),
        sources=DatabaseSchema.build(
            ed={'emp_name': 'string', 'dept_name': 'string'},
            eed={'emp_name': 'string', 'dept_name': 'string'}),
        putdelta="""
            +ed(E, D) :- ced(E, D), not ed(E, D).
            -eed(E, D) :- ced(E, D), eed(E, D).
            +eed(E, D) :- ed(E, D), not ced(E, D), not eed(E, D).
        """,
        expected_get="ced(E, D) :- ed(E, D), not eed(E, D).",
        notes="Case study (§3.3): set difference of current from "
              "historical departments."),

    # ------------------------------------------------------------------ #6
    BenchmarkEntry(
        id=6, name='residents1962', source='literature',
        paper=PaperRow('S', 6, 'C', True, True, 1.73, 9699),
        sources=DatabaseSchema.build(
            residents={'emp_name': 'string', 'birth_date': 'date',
                       'gender': 'string'}),
        putdelta="""
            ⊥ :- residents1962(E, B, G), B > '1962-12-31'.
            ⊥ :- residents1962(E, B, G), B < '1962-01-01'.
            +residents(E, B, G) :- residents1962(E, B, G),
                not residents(E, B, G).
            -residents(E, B, G) :- residents(E, B, G),
                not B < '1962-01-01', not B > '1962-12-31',
                not residents1962(E, B, G).
        """,
        expected_get="residents1962(E, B, G) :- residents(E, B, G), "
                     "not B < '1962-01-01', not B > '1962-12-31'.",
        column_pools={'residents': {'birth_date':
                                    ['1950-03-10', '1962-01-15',
                                     '1962-06-20', '1962-12-31',
                                     '1971-08-01']}},
        notes='Case study (§3.3): date-range selection over a view used '
              'as a source.'),

    # ------------------------------------------------------------------ #7
    BenchmarkEntry(
        id=7, name='employees', source='literature',
        paper=PaperRow('SJ,P', 6, 'ID', True, True, 1.76, 9358),
        sources=DatabaseSchema.build(
            residents={'emp_name': 'string', 'birth_date': 'date',
                       'gender': 'string'},
            ced={'emp_name': 'string', 'dept_name': 'string'}),
        putdelta="""
            ⊥ :- employees(E, B, G), not ced(E, _).
            +residents(E, B, G) :- employees(E, B, G),
                not residents(E, B, G).
            -residents(E, B, G) :- residents(E, B, G), ced(E, _),
                not employees(E, B, G).
        """,
        expected_get="employees(E, B, G) :- residents(E, B, G), "
                     "ced(E, _).",
        column_pools={'residents': {'emp_name': [f'e{i}' for i in
                                                 range(1200)]},
                      'ced': {'emp_name': [f'e{i}' for i in range(1200)]}},
        notes='Case study (§3.3): semijoin with an inclusion-dependency '
              'constraint routing updates to residents.'),

    # ------------------------------------------------------------------ #8
    BenchmarkEntry(
        id=8, name='researchers', source='literature',
        paper=PaperRow('SJ,S,P', 6, '', True, True, 1.79, 9058),
        sources=DatabaseSchema.build(
            residents={'emp_name': 'string', 'birth_date': 'date',
                       'gender': 'string'},
            ced={'emp_name': 'string', 'dept_name': 'string'}),
        putdelta="""
            ⊥ :- researchers(E, B, G), not rdept(E).
            rdept(E) :- ced(E, D), D = 'research'.
            +residents(E, B, G) :- researchers(E, B, G),
                not residents(E, B, G).
            -residents(E, B, G) :- residents(E, B, G), rdept(E),
                not researchers(E, B, G).
        """,
        expected_get="researchers(E, B, G) :- residents(E, B, G), "
                     "rdept(E).\n"
                     "rdept(E) :- ced(E, D), D = 'research'.",
        column_pools={'residents': {'emp_name': [f'e{i}' for i in
                                                 range(1200)]},
                      'ced': {'emp_name': [f'e{i}' for i in range(1200)],
                              'dept_name': ['research', 'sales', 'hr']}},
        notes='Semijoin restricted to research departments.  Deviation '
              'from the paper: our version needs the ID-style constraint '
              'to be PutGet-valid (the paper lists none).'),

    # ------------------------------------------------------------------ #9
    BenchmarkEntry(
        id=9, name='retired', source='literature',
        paper=PaperRow('SJ,P,D', 6, '', True, True, 1.76, 9048),
        sources=DatabaseSchema.build(
            residents={'emp_name': 'string', 'birth_date': 'date',
                       'gender': 'string'},
            ced={'emp_name': 'string', 'dept_name': 'string'}),
        putdelta="""
            -ced(E, D) :- ced(E, D), retired(E).
            +ced(E, D) :- residents(E, _, _), not retired(E),
                not ced(E, _), D = 'unknown'.
            +residents(E, B, G) :- retired(E), G = 'unknown',
                not residents(E, _, _), B = '0000-00-00'.
        """,
        expected_get="retired(E) :- residents(E, B, G), not ced(E, _).",
        column_pools={'residents': {'emp_name': [f'e{i}' for i in
                                                 range(1200)]},
                      'ced': {'emp_name': [f'e{i}' for i in range(1200)]}},
        notes='Case study (§3.3): anti-semijoin (residents without a '
              'current department).'),

    # ----------------------------------------------------------------- #10
    BenchmarkEntry(
        id=10, name='paramountmovies', source='literature',
        paper=PaperRow('P,S', 7, '', True, True, 1.81, 9721),
        sources=DatabaseSchema.build(
            movies={'title': 'string', 'year': 'int', 'length': 'int',
                    'studio': 'string'}),
        putdelta="""
            pmovies(T, Y) :- movies(T, Y, _, S), S = 'paramount'.
            +movies(T, Y, L, S) :- paramountmovies(T, Y),
                not pmovies(T, Y), L = 0, S = 'paramount'.
            -movies(T, Y, L, S) :- movies(T, Y, L, S), S = 'paramount',
                not paramountmovies(T, Y).
        """,
        expected_get="paramountmovies(T, Y) :- movies(T, Y, _, S), "
                     "S = 'paramount'.",
        column_pools={'movies': {'studio': ['paramount', 'universal',
                                            'warner']}},
        notes="Garcia-Molina et al. textbook example: Paramount movies."),

    # ----------------------------------------------------------------- #11
    BenchmarkEntry(
        id=11, name='officeinfo', source='literature',
        paper=PaperRow('P', 7, '', True, True, 1.8, 9963),
        sources=DatabaseSchema.build(
            works={'wname': 'string', 'office': 'string',
                   'phone': 'string', 'email': 'string'}),
        putdelta="""
            in_office(N, O) :- works(N, O, _, _).
            +works(N, O, P, E) :- officeinfo(N, O), not in_office(N, O),
                P = 'n/a', E = 'n/a'.
            -works(N, O, P, E) :- works(N, O, P, E),
                not officeinfo(N, O).
        """,
        expected_get="officeinfo(N, O) :- works(N, O, _, _).",
        notes='Figure 6b subject: projection view.'),

    # ----------------------------------------------------------------- #12
    BenchmarkEntry(
        id=12, name='vw_brands', source='literature',
        paper=PaperRow('U,P', 8, 'C', True, True, 1.78, 10932),
        sources=DatabaseSchema.build(
            brands_domestic={'bid': 'int', 'bname': 'string'},
            brands_imported={'bid': 'int', 'bname': 'string'}),
        putdelta="""
            ⊥ :- vw_brands(I, N, O), not O = 'domestic',
                not O = 'imported'.
            +brands_domestic(I, N) :- vw_brands(I, N, O), O = 'domestic',
                not brands_domestic(I, N).
            -brands_domestic(I, N) :- brands_domestic(I, N),
                not vw_brands(I, N, 'domestic').
            +brands_imported(I, N) :- vw_brands(I, N, O), O = 'imported',
                not brands_imported(I, N).
            -brands_imported(I, N) :- brands_imported(I, N),
                not vw_brands(I, N, 'imported').
        """,
        expected_get="vw_brands(I, N, O) :- brands_domestic(I, N), "
                     "O = 'domestic'.\n"
                     "vw_brands(I, N, O) :- brands_imported(I, N), "
                     "O = 'imported'.",
        notes='Figure 6d subject: tagged union of two shards (MySQL '
              'tutorial).'),

    # ----------------------------------------------------------------- #13
    BenchmarkEntry(
        id=13, name='tracks2', source='literature',
        paper=PaperRow('P', 8, '', True, True, 1.81, 9824),
        sources=DatabaseSchema.build(
            tracks={'tid': 'int', 'title': 'string', 'album': 'string',
                    'rating': 'int', 'quantity': 'int'}),
        putdelta="""
            known_track(I, T, R) :- tracks(I, T, _, R, _).
            +tracks(I, T, A, R, Q) :- tracks2(I, T, R),
                not known_track(I, T, R), A = 'unknown', Q = 0.
            -tracks(I, T, A, R, Q) :- tracks(I, T, A, R, Q),
                not tracks2(I, T, R).
        """,
        expected_get="tracks2(I, T, R) :- tracks(I, T, _, R, _).",
        notes='Projection keeping track id, title and rating.'),

    # ----------------------------------------------------------------- #14
    BenchmarkEntry(
        id=14, name='residents', source='literature',
        paper=PaperRow('U', 10, '', True, True, 1.77, 13504),
        sources=DatabaseSchema.build(
            male={'emp_name': 'string', 'birth_date': 'date'},
            female={'emp_name': 'string', 'birth_date': 'date'},
            others={'emp_name': 'string', 'birth_date': 'date',
                    'gender': 'string'}),
        putdelta="""
            +male(E, B) :- residents(E, B, 'M'), not male(E, B),
                not others(E, B, 'M').
            -male(E, B) :- male(E, B), not residents(E, B, 'M').
            +female(E, B) :- residents(E, B, G), G = 'F',
                not female(E, B), not others(E, B, G).
            -female(E, B) :- female(E, B), not residents(E, B, 'F').
            +others(E, B, G) :- residents(E, B, G), not G = 'M',
                not G = 'F', not others(E, B, G).
            -others(E, B, G) :- others(E, B, G), not residents(E, B, G).
        """,
        expected_get="""
            residents(E, B, G) :- others(E, B, G).
            residents(E, B, 'F') :- female(E, B).
            residents(E, B, 'M') :- male(E, B).
        """,
        column_pools={'others': {'gender': ['X', 'N']}},
        notes='Case study (§3.3): three-way union dispatching on '
              'gender.'),

    # ----------------------------------------------------------------- #15
    BenchmarkEntry(
        id=15, name='tracks3', source='literature',
        paper=PaperRow('S', 11, 'C', True, True, 1.88, 14430),
        sources=DatabaseSchema.build(
            tracks={'tid': 'int', 'title': 'string', 'album': 'string',
                    'rating': 'int', 'quantity': 'int'}),
        putdelta="""
            ⊥ :- tracks3(I, T, A, R, Q), not R > 3.
            ⊥ :- tracks3(I, T, A, R, Q), Q < 0.
            rated(I, T, A, R, Q) :- tracks(I, T, A, R, Q), R > 3.
            +tracks(I, T, A, R, Q) :- tracks3(I, T, A, R, Q),
                not tracks(I, T, A, R, Q).
            -tracks(I, T, A, R, Q) :- rated(I, T, A, R, Q),
                not tracks3(I, T, A, R, Q).
        """,
        expected_get="tracks3(I, T, A, R, Q) :- tracks(I, T, A, R, Q), "
                     "R > 3.",
        column_pools={'tracks': {'rating': [1, 2, 3, 4, 5],
                                 'quantity': list(range(0, 50))}},
        notes='Selection on rating with a domain constraint on '
              'quantity.'),

    # ----------------------------------------------------------------- #16
    BenchmarkEntry(
        id=16, name='tracks1', source='literature',
        paper=PaperRow('IJ', 12, 'PK', False, True, 1.92, 95606),
        sources=DatabaseSchema.build(
            tracks={'tid': 'int', 'title': 'string', 'album': 'string',
                    'rating': 'int'},
            albums={'album': 'string', 'quantity': 'int'}),
        putdelta="""
            ⊥ :- tracks1(I, T, A, R, Q), tracks1(I2, T2, A, R2, Q2),
                not Q = Q2.
            vtrack(I, T, A, R) :- tracks1(I, T, A, R, _).
            valbum(A, Q) :- tracks1(_, _, A, _, Q).
            +tracks(I, T, A, R) :- tracks1(I, T, A, R, Q),
                not tracks(I, T, A, R).
            +albums(A, Q) :- tracks1(I, T, A, R, Q), not albums(A, Q).
            -albums(A, Q) :- albums(A, Q), valbum(A, Q2), not Q = Q2.
            -tracks(I, T, A, R) :- tracks(I, T, A, R), albums(A, _),
                not vtrack(I, T, A, R).
            -tracks(I, T, A, R) :- tracks(I, T, A, R), valbum(A, _),
                not vtrack(I, T, A, R).
        """,
        expected_get="tracks1(I, T, A, R, Q) :- tracks(I, T, A, R), "
                     "albums(A, Q).",
        column_pools={'tracks': {'album': [f'al{i}' for i in range(400)]},
                      'albums': {'album': [f'al{i}' for i in range(400)]}},
        size_weights={'tracks': 1.0, 'albums': 0.2},
        notes='Inner join; the album-quantity functional dependency on '
              'the view is the PK constraint (not negation guarded, so '
              'outside LVGN — footnote 7 of the paper).'),

    # ----------------------------------------------------------------- #17
    BenchmarkEntry(
        id=17, name='bstudents', source='literature',
        paper=PaperRow('IJ,P,S', 13, 'PK', False, True, 2.13, 22431),
        sources=DatabaseSchema.build(
            students={'sid': 'int', 'sname': 'string', 'email': 'string'},
            takes={'sid': 'int', 'course': 'string', 'grade': 'string'}),
        putdelta="""
            ⊥ :- bstudents(S, N1, C1), bstudents(S, N2, C2), not N1 = N2.
            snames(S) :- students(S, _, _).
            sname2(S, N) :- students(S, N, _).
            bsc(S, C) :- bstudents(S, _, C).
            vnames(S) :- bstudents(S, _, _).
            +takes(S, C, G) :- bstudents(S, N, C), G = 'B',
                not takes(S, C, 'B').
            +students(S, N, E) :- bstudents(S, N, C), not sname2(S, N),
                E = 'unknown'.
            -students(S, N, E) :- students(S, N, E), bstudents(S, N2, C),
                not N = N2.
            -takes(S, C, G) :- takes(S, C, G), G = 'B', snames(S),
                not bsc(S, C).
            -takes(S, C, G) :- takes(S, C, G), G = 'B', vnames(S),
                not bsc(S, C).
        """,
        expected_get="bstudents(S, N, C) :- students(S, N, _), "
                     "takes(S, C, G), G = 'B'.",
        column_pools={'students': {'sid': _ids(800)},
                      'takes': {'sid': _ids(800),
                                'grade': ['A', 'B', 'C']}},
        notes='Join + selection on grade B + projection; the sid→name '
              'functional dependency is the PK constraint.'),

    # ----------------------------------------------------------------- #18
    BenchmarkEntry(
        id=18, name='all_cars', source='literature',
        paper=PaperRow('IJ', 13, 'PK, FK', False, True, 1.89, 25013),
        sources=DatabaseSchema.build(
            cars={'cid': 'int', 'cname': 'string', 'bid': 'int'},
            brands={'bid': 'int', 'bname': 'string'}),
        putdelta="""
            ⊥ :- all_cars(C, N, B, BN), all_cars(C2, N2, B, BN2),
                not BN = BN2.
            vcar(C, N, B) :- all_cars(C, N, B, _).
            vbrand(B, BN) :- all_cars(_, _, B, BN).
            +cars(C, N, B) :- all_cars(C, N, B, BN), not cars(C, N, B).
            +brands(B, BN) :- all_cars(C, N, B, BN), not brands(B, BN).
            -brands(B, BN) :- brands(B, BN), vbrand(B, BN2), not BN = BN2.
            -cars(C, N, B) :- cars(C, N, B), brands(B, _),
                not vcar(C, N, B).
            -cars(C, N, B) :- cars(C, N, B), vbrand(B, _),
                not vcar(C, N, B).
        """,
        expected_get="all_cars(C, N, B, BN) :- cars(C, N, B), "
                     "brands(B, BN).",
        column_pools={'cars': {'bid': _ids(150)},
                      'brands': {'bid': _ids(150)}},
        size_weights={'cars': 1.0, 'brands': 0.15},
        notes='Inner join of cars with their brands (SQL Server '
              'tutorial); brand-name FD is the PK, cars.bid→brands the '
              'FK.'),

    # ----------------------------------------------------------------- #19
    BenchmarkEntry(
        id=19, name='measurement', source='literature',
        paper=PaperRow('U', 13, 'C, ID', True, True, 1.78, 12624),
        sources=DatabaseSchema.build(
            measurement_y2019={'city': 'string', 'logdate': 'date',
                               'peaktemp': 'int'},
            measurement_y2020={'city': 'string', 'logdate': 'date',
                               'peaktemp': 'int'},
            cities={'city': 'string'}),
        putdelta="""
            ⊥ :- measurement(C, D, T), D < '2019-01-01'.
            ⊥ :- measurement(C, D, T), D > '2020-12-31'.
            ⊥ :- measurement(C, D, T), not cities(C).
            ⊥ :- measurement_y2019(C, D, T), D > '2019-12-31'.
            ⊥ :- measurement_y2019(C, D, T), D < '2019-01-01'.
            ⊥ :- measurement_y2020(C, D, T), D < '2020-01-01'.
            ⊥ :- measurement_y2020(C, D, T), D > '2020-12-31'.
            +measurement_y2019(C, D, T) :- measurement(C, D, T),
                not D > '2019-12-31', not measurement_y2019(C, D, T).
            -measurement_y2019(C, D, T) :- measurement_y2019(C, D, T),
                not measurement(C, D, T).
            +measurement_y2020(C, D, T) :- measurement(C, D, T),
                D > '2019-12-31', not measurement_y2020(C, D, T).
            -measurement_y2020(C, D, T) :- measurement_y2020(C, D, T),
                not measurement(C, D, T).
        """,
        expected_get="""
            measurement(C, D, T) :- measurement_y2019(C, D, T).
            measurement(C, D, T) :- measurement_y2020(C, D, T).
        """,
        column_pools={
            'measurement_y2019': {'logdate': ['2019-02-01', '2019-07-15',
                                              '2019-11-30'],
                                  'city': [f'c{i}' for i in range(300)]},
            'measurement_y2020': {'logdate': ['2020-03-01', '2020-08-15',
                                              '2020-12-30'],
                                  'city': [f'c{i}' for i in range(300)]},
            'cities': {'city': [f'c{i}' for i in range(300)]}},
        size_weights={'measurement_y2019': 0.5, 'measurement_y2020': 0.5,
                      'cities': 0.1},
        notes='PostgreSQL partitioned-table example: date-routed union '
              'with a city inclusion dependency.'),

    # ----------------------------------------------------------------- #20
    BenchmarkEntry(
        id=20, name='newpc', source='literature',
        paper=PaperRow('IJ,P,S', 15, 'JD', False, True, 2.06, 44665),
        sources=DatabaseSchema.build(
            product={'maker': 'string', 'model': 'int', 'ptype': 'string'},
            pc={'model': 'int', 'speed': 'int', 'ram': 'int',
                'price': 'int'}),
        putdelta="""
            ⊥ :- newpc(M1, MO, S, R, P), newpc(M2, MO, S2, R2, P2),
                not M1 = M2.
            vprod(M, MO) :- newpc(M, MO, _, _, _).
            vpc(MO, S, R, P) :- newpc(_, MO, S, R, P).
            +product(M, MO, T) :- newpc(M, MO, S, R, P), T = 'pc',
                not product(M, MO, 'pc').
            +pc(MO, S, R, P) :- newpc(M, MO, S, R, P),
                not pc(MO, S, R, P).
            -product(M, MO, T) :- product(M, MO, T), T = 'pc',
                pc(MO, _, _, _), not vprod(M, MO).
            -product(M, MO, T) :- product(M, MO, T), T = 'pc',
                vpc(MO, _, _, _), not vprod(M, MO).
            -pc(MO, S, R, P) :- pc(MO, S, R, P), product(M, MO, 'pc'),
                not vpc(MO, S, R, P).
            -pc(MO, S, R, P) :- pc(MO, S, R, P), vprod(M, MO),
                not vpc(MO, S, R, P).
        """,
        expected_get="newpc(M, MO, S, R, P) :- product(M, MO, 'pc'), "
                     "pc(MO, S, R, P).",
        column_pools={'product': {'model': _ids(300),
                                  'ptype': ['pc', 'laptop', 'printer']},
                      'pc': {'model': _ids(300)}},
        notes='Garcia-Molina exercise: PCs joined with their makers; the '
              'model→maker dependency is the join dependency (JD).'),

    # ----------------------------------------------------------------- #21
    BenchmarkEntry(
        id=21, name='activestudents', source='literature',
        paper=PaperRow('IJ,P,S', 19, 'PK, JD', False, True, 2.19, 31766),
        sources=DatabaseSchema.build(
            students2={'sid': 'int', 'sname': 'string', 'login': 'string',
                       'age': 'int'},
            enrolled={'login': 'string', 'cid': 'string',
                      'grade': 'string'}),
        putdelta="""
            ⊥ :- activestudents(N1, L, C1, G1),
                activestudents(N2, L, C2, G2), not N1 = N2.
            ⊥ :- activestudents(N, L, C, G1),
                activestudents(N, L, C, G2), not G1 = G2.
            slogin(L) :- students2(_, _, L, _).
            snl(N, L) :- students2(_, N, L, _).
            venr(L, C, G) :- activestudents(_, L, C, G).
            vlogin(L) :- activestudents(_, L, _, _).
            vnl(N, L) :- activestudents(N, L, _, _).
            +enrolled(L, C, G) :- activestudents(N, L, C, G),
                not enrolled(L, C, G).
            +students2(S, N, L, A) :- activestudents(N, L, C, G),
                not snl(N, L), S = 0, A = 18.
            -students2(S, N, L, A) :- students2(S, N, L, A),
                vlogin(L), not vnl(N, L).
            -enrolled(L, C, G) :- enrolled(L, C, G), slogin(L),
                not venr(L, C, G).
            -enrolled(L, C, G) :- enrolled(L, C, G), vlogin(L),
                not venr(L, C, G).
        """,
        expected_get="activestudents(N, L, C, G) :- "
                     "students2(_, N, L, _), enrolled(L, C, G).",
        column_pools={'students2': {'login': [f'l{i}' for i in
                                              range(700)]},
                      'enrolled': {'login': [f'l{i}' for i in range(700)],
                                   'grade': ['A', 'B', 'C']}},
        notes='Ramakrishnan & Gehrke textbook: students joined with '
              'enrollments on login.'),

    # ----------------------------------------------------------------- #22
    BenchmarkEntry(
        id=22, name='vw_customers', source='literature',
        paper=PaperRow('IJ,P', 19, 'PK, FK, JD', False, True, 2.92, 26286),
        sources=DatabaseSchema.build(
            customers={'cuid': 'int', 'cuname': 'string',
                       'contact_id': 'int'},
            contacts={'ctid': 'int', 'email': 'string',
                      'phone': 'string'}),
        putdelta="""
            ⊥ :- vw_customers(C, N1, T, E1), vw_customers(C, N2, T2, E2),
                not N1 = N2.
            ⊥ :- vw_customers(C1, N1, T, E1), vw_customers(C2, N2, T, E2),
                not E1 = E2.
            ⊥ :- vw_customers(C, N1, T1, E1), vw_customers(C, N2, T2, E2),
                not T1 = T2.
            vcust(C, N, T) :- vw_customers(C, N, T, _).
            vcontact(T, E) :- vw_customers(_, _, T, E).
            known_contact(T, E) :- contacts(T, E, _).
            +customers(C, N, T) :- vw_customers(C, N, T, E),
                not customers(C, N, T).
            +contacts(T, E, P) :- vw_customers(C, N, T, E),
                not known_contact(T, E), P = 'n/a'.
            -contacts(T, E, P) :- contacts(T, E, P), vcontact(T, E2),
                not E = E2.
            -customers(C, N, T) :- customers(C, N, T), contacts(T, _, _),
                not vcust(C, N, T).
            -customers(C, N, T) :- customers(C, N, T), vcontact(T, _),
                not vcust(C, N, T).
        """,
        expected_get="vw_customers(C, N, T, E) :- customers(C, N, T), "
                     "contacts(T, E, _).",
        column_pools={'customers': {'contact_id': _ids(200)},
                      'contacts': {'ctid': _ids(200)}},
        size_weights={'customers': 1.0, 'contacts': 0.25},
        notes='Oracle tutorial: customers with contact emails; phone is '
              'projected away and defaulted on insertion.'),

    # ----------------------------------------------------------------- #23
    BenchmarkEntry(
        id=23, name='emp_view', source='literature',
        paper=PaperRow('IJ,P,A', None, '', None, None, None, None),
        sources=DatabaseSchema.build(
            emp={'eid': 'int', 'ename': 'string', 'did': 'int',
                 'salary': 'int'},
            dept={'did': 'int', 'dname': 'string'}),
        putdelta=None,
        expected_get=None,
        notes='Aggregation view (SUM of salaries per department): not '
              'expressible in NR-Datalog — reported exactly as the paper '
              'does (row 23 has no validation entry).'),
]
