"""Harness regenerating the paper's evaluation artifacts.

* ``python -m repro.benchsuite.runner table1`` — re-runs Algorithm 1 and
  the SQL compiler over every catalog entry and prints the Table 1
  columns (fragment membership, validation time, compiled SQL bytes)
  next to the paper's published numbers.
* ``python -m repro.benchsuite.runner fig6 [--sizes ...] [--backend
  memory|sqlite]`` — re-runs the Figure 6 sweep (original vs
  incrementalized view update time against base table size) for the
  four benchmark views, on either storage backend.
* ``python -m repro.benchsuite.runner backends [--size N]`` — the
  backend axis: one steady-state single-tuple view update per view,
  interpreter (memory) vs compiled SQL (sqlite), side by side.
"""

from __future__ import annotations

import argparse
import sys
import time
from dataclasses import dataclass, field

from repro.benchsuite.catalog import ALL_ENTRIES, FIGURE6_VIEWS, \
    entry_by_name
from repro.benchsuite.entry import BenchmarkEntry
from repro.benchsuite.workload import build_engine, update_statement
from repro.core.validation import validate
from repro.sql.triggers import compile_strategy_to_sql

__all__ = ['Table1Row', 'run_table1', 'run_fig6', 'format_table1',
           'Fig6Point', 'format_fig6', 'BackendPoint', 'run_backends',
           'format_backends', 'main']


# ---------------------------------------------------------------------------
# Table 1
# ---------------------------------------------------------------------------


@dataclass
class Table1Row:
    entry: BenchmarkEntry
    valid: bool | None
    lvgn: bool | None
    nr_datalog: bool | None
    loc: int | None
    validation_time: float | None
    sql_bytes: int | None
    note: str = ''


def run_table1(entries=None, *, quick: bool = False) -> list[Table1Row]:
    """Validate + compile every benchmark entry."""
    from repro.fol.solver import SolverConfig
    config = SolverConfig().scaled_down() if quick else None
    rows: list[Table1Row] = []
    for entry in entries or ALL_ENTRIES:
        if not entry.expressible:
            rows.append(Table1Row(entry, None, None, None, None, None,
                                  None, 'aggregation: not expressible'))
            continue
        strategy = entry.strategy()
        started = time.perf_counter()
        report = validate(strategy, config=config)
        elapsed = time.perf_counter() - started
        sql_bytes = None
        if report.valid and report.view_definition is not None:
            sql = compile_strategy_to_sql(strategy,
                                          report.view_definition)
            sql_bytes = len(sql.encode())
        rows.append(Table1Row(
            entry, report.valid, report.fragment.lvgn,
            report.fragment.nr_datalog, strategy.program_size(),
            elapsed, sql_bytes))
    return rows


def _mark(flag: bool | None) -> str:
    if flag is None:
        return '-'
    return 'yes' if flag else 'no'


def format_table1(rows: list[Table1Row]) -> str:
    header = (f'{"ID":>3} {"View":<18} {"Op":<8} {"Constraint":<12} '
              f'{"LOC":>4} {"LVGN":>5} {"(ppr)":>6} {"NR":>4} '
              f'{"Valid":>6} {"Time(s)":>8} {"(paper)":>8} '
              f'{"SQL(B)":>7} {"(paper)":>8}')
    lines = [header, '-' * len(header)]
    for row in rows:
        paper = row.entry.paper
        loc = str(row.loc) if row.loc is not None else '-'
        our_time = (f'{row.validation_time:.2f}'
                    if row.validation_time is not None else '-')
        paper_time = (f'{paper.validation_time:.2f}'
                      if paper.validation_time is not None else '-')
        sql_bytes = str(row.sql_bytes) if row.sql_bytes else '-'
        paper_sql = str(paper.sql_bytes) if paper.sql_bytes else '-'
        lines.append(
            f'{row.entry.id:>3} {row.entry.name:<18} '
            f'{paper.operators:<8} {paper.constraints or "-":<12} '
            f'{loc:>4} {_mark(row.lvgn):>5} {_mark(paper.lvgn):>6} '
            f'{_mark(row.nr_datalog):>4} {_mark(row.valid):>6} '
            f'{our_time:>8} {paper_time:>8} {sql_bytes:>7} '
            f'{paper_sql:>8}')
        if row.note:
            lines.append(f'      ({row.note})')
    return '\n'.join(lines)


# ---------------------------------------------------------------------------
# Figure 6
# ---------------------------------------------------------------------------


@dataclass
class Fig6Point:
    view: str
    base_size: int
    original_seconds: float
    incremental_seconds: float

    @property
    def speedup(self) -> float:
        if self.incremental_seconds <= 0:
            return float('inf')
        return self.original_seconds / self.incremental_seconds


def _measure_update(engine, entry, index: int, repeats: int = 3) -> float:
    """Median wall time of one single-tuple view INSERT.

    One unmeasured warmup update precedes measurement so both modes run
    with their access structures in place (PostgreSQL's indexes exist
    before the paper's measurements, too)."""
    engine.insert(entry.name,
                  update_statement(entry, engine, index * 100 + 99))
    times = []
    for r in range(repeats):
        row = update_statement(entry, engine, index * 100 + r)
        started = time.perf_counter()
        engine.insert(entry.name, row)
        times.append(time.perf_counter() - started)
    times.sort()
    return times[len(times) // 2]


def run_fig6(views=None, sizes=(10_000, 25_000, 50_000, 100_000, 200_000),
             *, repeats: int = 3, progress=None,
             backend: str | None = None) -> list[Fig6Point]:
    """The Figure 6 sweep: per view and base size, time one view update
    under the original and the incrementalized strategy."""
    points: list[Fig6Point] = []
    for view in views or FIGURE6_VIEWS:
        entry = entry_by_name(view)
        strategy = entry.strategy()
        for i, n in enumerate(sizes):
            original = build_engine(entry, n, incremental=False,
                                    strategy=strategy, backend=backend)
            try:
                original.rows(view)  # materialise once, as PostgreSQL would
                t_orig = _measure_update(original, entry, i, repeats)
            finally:
                original.close()
            incremental = build_engine(entry, n, incremental=True,
                                       strategy=strategy, backend=backend)
            try:
                incremental.rows(view)
                t_inc = _measure_update(incremental, entry, i, repeats)
            finally:
                incremental.close()
            point = Fig6Point(view, n, t_orig, t_inc)
            points.append(point)
            if progress is not None:
                progress(point)
    return points


def format_fig6(points: list[Fig6Point]) -> str:
    lines = []
    for view in dict.fromkeys(p.view for p in points):
        lines.append(f'-- {view} (original vs incremental, seconds)')
        lines.append(f'{"base size":>10} {"original":>10} '
                     f'{"incremental":>12} {"speedup":>8}')
        for p in points:
            if p.view != view:
                continue
            lines.append(f'{p.base_size:>10} {p.original_seconds:>10.4f} '
                         f'{p.incremental_seconds:>12.5f} '
                         f'{p.speedup:>7.1f}x')
        lines.append('')
    return '\n'.join(lines)


# ---------------------------------------------------------------------------
# Backend axis
# ---------------------------------------------------------------------------


@dataclass
class BackendPoint:
    """Steady-state cost of one view on one backend."""

    view: str
    backend: str
    base_size: int
    materialize_seconds: float    # first engine.rows(view)
    update_seconds: float         # median single-tuple view INSERT
    sql_fallbacks: int            # plans running interpreted on sqlite
    update_latency: dict = field(default_factory=dict)  # P50/P95/P99


def run_backends(views=None, size: int = 20_000, *, repeats: int = 5,
                 backends=('memory', 'sqlite'),
                 progress=None) -> list[BackendPoint]:
    """The backend comparison: per view and backend, the view
    materialisation time and the steady-state incremental update time —
    interpreter over indexed sets vs. compiled SQL on SQLite.

    Every (view, backend) pair is one case of a single seeded
    :func:`repro.benchsuite.harness.run_cases` run — updates
    interleave through rotation-fair rounds, one single-tuple view
    INSERT per round, so the medians and P50/P95/P99 come from the
    same warm-cache conditions for every backend."""
    from repro.benchsuite.harness import BenchCase, run_cases

    views = list(views or FIGURE6_VIEWS)
    materialized: dict[str, float] = {}
    fallbacks: dict[str, int] = {}

    def make_case(view: str, backend: str) -> BenchCase:
        name = f'{view}[{backend}]'
        entry = entry_by_name(view)

        def setup():
            engine = build_engine(entry, size, incremental=True,
                                  strategy=entry.strategy(),
                                  backend=backend)
            started = time.perf_counter()
            engine.rows(view)
            materialized[name] = time.perf_counter() - started
            fallbacks[name] = 0
            if hasattr(engine.backend, 'lowering_fallbacks'):
                fallbacks[name] = len(
                    engine.backend.lowering_fallbacks(view))
            return {'engine': engine, 'next_id': 7_000_000}

        def op(ctx, round_index):
            ctx['next_id'] += 1
            row = update_statement(entry, ctx['engine'],
                                   ctx['next_id'])
            started = time.perf_counter()
            ctx['engine'].insert(view, row)
            return time.perf_counter() - started

        def teardown(ctx):
            ctx['engine'].close()

        return BenchCase(name=name, setup=setup, op=op,
                         teardown=teardown, warmup=1,
                         meta={'view': view, 'backend': backend})

    cases = [make_case(view, backend)
             for view in views for backend in backends]
    results = {r.name: r for r in run_cases(cases, rounds=repeats,
                                            seed=7)}
    points: list[BackendPoint] = []
    for view in views:
        for backend in backends:
            name = f'{view}[{backend}]'
            result = results[name]
            samples = sorted(result.samples)
            t_upd = samples[len(samples) // 2]
            point = BackendPoint(view, backend, size,
                                 materialized[name], t_upd,
                                 fallbacks[name], result.latency)
            points.append(point)
            if progress is not None:
                progress(point)
    return points


def format_backends(points: list[BackendPoint]) -> str:
    lines = [f'{"view":<18} {"backend":<8} {"n":>8} {"get (s)":>9} '
             f'{"update (µs)":>12} {"SQL?":>5}']
    lines.append('-' * len(lines[0]))
    for p in points:
        native = ('-' if p.backend != 'sqlite'
                  else ('part' if p.sql_fallbacks else 'yes'))
        lines.append(f'{p.view:<18} {p.backend:<8} {p.base_size:>8} '
                     f'{p.materialize_seconds:>9.4f} '
                     f'{p.update_seconds * 1e6:>12.1f} {native:>5}')
    return '\n'.join(lines)


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description='Regenerate the evaluation artifacts of the paper')
    sub = parser.add_subparsers(dest='command', required=True)
    t1 = sub.add_parser('table1', help='reproduce Table 1')
    t1.add_argument('--quick', action='store_true',
                    help='smaller solver bounds (faster, same verdicts '
                         'on the shipped catalog)')
    f6 = sub.add_parser('fig6', help='reproduce Figure 6')
    f6.add_argument('--sizes', type=int, nargs='+',
                    default=[10_000, 25_000, 50_000, 100_000, 200_000])
    f6.add_argument('--views', nargs='+', default=list(FIGURE6_VIEWS))
    f6.add_argument('--repeats', type=int, default=3)
    f6.add_argument('--backend', choices=['memory', 'sqlite'],
                    default=None,
                    help='storage backend (default: REPRO_BACKEND or '
                         'memory)')
    bk = sub.add_parser('backends',
                        help='compare storage backends on the Figure 6 '
                             'views')
    bk.add_argument('--size', type=int, default=20_000)
    bk.add_argument('--views', nargs='+', default=list(FIGURE6_VIEWS))
    bk.add_argument('--repeats', type=int, default=5)
    args = parser.parse_args(argv)
    if args.command == 'table1':
        print(format_table1(run_table1(quick=args.quick)))
    elif args.command == 'fig6':
        points = run_fig6(args.views, tuple(args.sizes),
                          repeats=args.repeats, backend=args.backend,
                          progress=lambda p: print(
                              f'  {p.view} n={p.base_size}: '
                              f'orig {p.original_seconds:.4f}s, '
                              f'inc {p.incremental_seconds:.5f}s',
                              file=sys.stderr))
        print(format_fig6(points))
    else:
        points = run_backends(args.views, args.size, repeats=args.repeats,
                              progress=lambda p: print(
                                  f'  {p.view} [{p.backend}]: '
                                  f'get {p.materialize_seconds:.4f}s, '
                                  f'update {p.update_seconds:.5f}s',
                                  file=sys.stderr))
        print(format_backends(points))
    return 0


if __name__ == '__main__':
    raise SystemExit(main())
