"""Structural classification of view definitions and constraints.

Derives the "Operator in view definition" and "Constraint" columns of
Table 1 from the programs themselves (the catalog also carries the
paper's published labels; this module lets the harness cross-check them
and classifies *new* user strategies).

Operator letters follow the paper: S, P, SJ, IJ, LJ, RJ, FJ, U, D, A.
Constraint kinds: PK (functional dependency on the view), FK/ID
(inclusion-style), C (domain restriction), JD (join dependency — here:
an FD between view columns that glues the two join sides).
"""

from __future__ import annotations

from repro.datalog.ast import (Atom, BuiltinLit, Const, Lit, Program, Rule,
                               Var, is_anonymous)

__all__ = ['view_operators', 'constraint_kinds']


def _rule_operators(rule: Rule, sources: set[str]) -> set[str]:
    ops: set[str] = set()
    positives = [l.atom for l in rule.body
                 if isinstance(l, Lit) and l.positive]
    negatives = [l.atom for l in rule.body
                 if isinstance(l, Lit) and not l.positive]
    builtins = [l for l in rule.body if isinstance(l, BuiltinLit)]

    # Selection: comparisons/equalities against constants, or constants
    # embedded in body atoms.
    for literal in builtins:
        terms = (literal.left, literal.right)
        if any(isinstance(t, Const) for t in terms):
            ops.add('S')
    for atom in positives:
        if any(isinstance(t, Const) for t in atom.args):
            ops.add('S')

    # Join shape: more than one positive relational atom.
    if len(positives) >= 2:
        head_vars = rule.head.var_names() if rule.head else set()
        full_width = all(atom.var_names() <= head_vars or not
                         (atom.var_names() - _shared(positives, atom))
                         for atom in positives)
        shared_any = any(_shared(positives, atom) for atom in positives)
        if shared_any:
            # Semi-join: one atom contributes no head variables beyond
            # the join keys; inner join otherwise.
            contributing = [atom for atom in positives
                            if atom.var_names() & head_vars -
                            _shared(positives, atom)]
            if len(contributing) <= 1:
                ops.add('SJ')
            else:
                ops.add('IJ')

    # Projection: a body variable (or anonymous column) missing from the
    # head.
    if rule.head is not None:
        head_vars = rule.head.var_names()
        body_vars: set[str] = set()
        for atom in positives:
            body_vars |= atom.var_names()
            if any(is_anonymous(t) for t in atom.args):
                ops.add('P')
        if body_vars - head_vars - _equality_defined(rule):
            ops.add('P')

    # Difference: a negated source atom.
    if negatives:
        ops.add('D')
    return ops


def _shared(positives: list[Atom], atom: Atom) -> set[str]:
    others: set[str] = set()
    for other in positives:
        if other is not atom:
            others |= other.var_names()
    return atom.var_names() & others


def _equality_defined(rule: Rule) -> set[str]:
    defined: set[str] = set()
    for literal in rule.body:
        if isinstance(literal, BuiltinLit) and literal.op == '=' \
                and literal.positive:
            for term in (literal.left, literal.right):
                if isinstance(term, Var):
                    defined.add(term.name)
    return defined


def view_operators(get_program: Program, view: str,
                   sources: set[str] | None = None) -> str:
    """Classify a view definition; returns e.g. ``'IJ,P,S'``.

    Union is detected across rules (several rules with the same head);
    the per-rule operators are unioned.  ``LJ`` is recognised by the
    left-join encoding pattern: a second rule guarded by the *negation*
    of the join partner with a default constant.
    """
    sources = sources or get_program.edb_preds()
    rules = get_program.rules_for(view)
    ops: set[str] = set()
    if len(rules) > 1:
        ops.add('U')
    has_negated_partner = False
    has_positive_join = False
    for rule in rules:
        ops |= _rule_operators(rule, sources)
        positives = [l for l in rule.body
                     if isinstance(l, Lit) and l.positive]
        negatives = [l for l in rule.body
                     if isinstance(l, Lit) and not l.positive]
        if len(positives) >= 1 and negatives:
            has_negated_partner = True
        if len(positives) >= 2:
            has_positive_join = True
    if len(rules) == 2 and has_negated_partner and has_positive_join:
        # products-style encoding: R ⋈ S  ∪  (R ∧ ¬S ∧ default) = R ⟕ S.
        ops.discard('U')
        ops.discard('D')
        ops.discard('IJ')
        ops.add('LJ')
    order = ['LJ', 'IJ', 'SJ', 'U', 'D', 'P', 'S']
    return ','.join(op for op in order if op in ops)


# ---------------------------------------------------------------------------
# Constraint kinds
# ---------------------------------------------------------------------------


def _constraint_kind(rule: Rule, view: str, sources: set[str]) -> str:
    view_atoms = [l.atom for l in rule.body
                  if isinstance(l, Lit) and l.atom.pred == view
                  and l.positive]
    negated = [l for l in rule.body
               if isinstance(l, Lit) and not l.positive]
    builtins = [l for l in rule.body if isinstance(l, BuiltinLit)]

    if len(view_atoms) >= 2:
        # Two view atoms + a disequality: a functional dependency.  It
        # counts as the PK when the dependency is keyed on one column,
        # JD-flavoured otherwise; Table 1 groups both under PK/JD.
        return 'PK'
    if view_atoms and negated:
        # v(...) ∧ ¬other(...): inclusion dependency (FK/ID family).
        return 'ID'
    if view_atoms and builtins:
        return 'C'
    if not view_atoms:
        # Source-only constraint: FK between base tables.
        if negated:
            return 'FK'
        return 'C'
    return 'C'


def constraint_kinds(program: Program, view: str,
                     sources: set[str] | None = None) -> str:
    """Classify every ⊥-rule; returns e.g. ``'PK, C'`` (deduplicated,
    Table 1 ordering)."""
    sources = sources or program.edb_preds()
    kinds: list[str] = []
    for rule in program.constraints():
        kind = _constraint_kind(rule, view, sources)
        if kind not in kinds:
            kinds.append(kind)
    order = ['PK', 'FK', 'ID', 'JD', 'C']
    return ', '.join(k for k in order if k in kinds)
