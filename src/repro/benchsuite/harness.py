"""The shared runner core for the benchmark entry points.

Every ``benchmarks/bench_*.py`` script used to hand-roll the same
scaffolding — build engines, time a loop, compute a mean — which made
one-shot runs the norm and warm-cache bias invisible (the first
configuration measured always pays compilation and page faults for
everyone).  This module is the ROADMAP observability item's runner
core: **seeded iterated runs with execution-order rotation**.

A benchmark is a list of :class:`BenchCase` objects.  The harness

1. runs every case's ``setup`` once (all contexts alive together, so
   RSS comparisons are apples-to-apples),
2. runs ``warmup`` untimed passes per case (plan compilation, cache
   materialisation, branch warmup),
3. then for each of ``rounds`` timed rounds runs every case once — in
   an order **rotated** by the round index, so no case systematically
   benefits from running after another warmed the machine,
4. tears every case down in a ``finally`` (engines own SQLite leases
   and worker processes; leaking them skews later rounds' RSS — and
   the next benchmark's).

Per round the harness wall-clocks the ``op`` call; an op may
additionally return finer-grained samples (one float, or a list of
per-sub-operation latencies in seconds) which feed the P50/P95/P99
summary from :mod:`repro.benchsuite.latency`.  Results come back as
:class:`CaseResult` — raw wall times, raw samples, and the latency
summary — for the script to turn into its own throughput metrics and
JSON shape.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Callable, Mapping, Sequence

from repro.benchsuite.latency import summarize_latencies

__all__ = ['BenchCase', 'CaseResult', 'run_cases']


@dataclass
class BenchCase:
    """One benchmark configuration.

    ``setup()`` returns the case's context (an engine, a tuple of
    engines, whatever ``op`` needs); ``op(ctx, round_index)`` runs one
    timed round and may return ``None`` (wall time is the sample), a
    single latency in seconds, or a list of sub-operation latencies;
    ``teardown(ctx)`` releases the context (engines are closed here —
    pass one even when setup "cannot fail", leaks surface in the next
    case's numbers).  Warmup rounds call ``op`` with negative indices
    (``-warmup .. -1``), so ops keyed on the round (fresh key blocks
    per round) stay collision-free."""

    name: str
    setup: Callable[[], object]
    op: Callable[[object, int], object]
    teardown: Callable[[object], None] | None = None
    warmup: int = 1
    meta: Mapping[str, object] = field(default_factory=dict)


@dataclass
class CaseResult:
    """Timed rounds of one case: per-round wall seconds, the op-level
    samples (defaulting to the wall times), and their summary."""

    name: str
    wall: list[float]
    samples: list[float]
    meta: dict

    @property
    def latency(self) -> dict:
        return summarize_latencies(self.samples)

    @property
    def total_seconds(self) -> float:
        return sum(self.wall)


def _collect(samples: list[float], returned) -> None:
    if returned is None:
        return
    if isinstance(returned, (int, float)):
        samples.append(float(returned))
        return
    samples.extend(float(s) for s in returned)


def run_cases(cases: Sequence[BenchCase], *, rounds: int,
              seed: int = 0,
              progress: Callable[[str], None] | None = None
              ) -> list[CaseResult]:
    """Run every case ``rounds`` times with rotated execution order.

    ``seed`` drives the rotation offset (and is recorded nowhere else:
    cases wanting seeded workloads derive their own RNG from it via
    ``meta``), so two invocations with the same seed time the same
    interleaving."""
    if rounds < 1:
        raise ValueError(f'rounds must be >= 1, got {rounds}')
    offset = random.Random(seed).randrange(max(len(cases), 1))
    contexts: dict[str, object] = {}
    results = {case.name: CaseResult(name=case.name, wall=[],
                                     samples=[], meta=dict(case.meta))
               for case in cases}
    if len(results) != len(cases):
        raise ValueError('duplicate case names')
    try:
        for case in cases:
            contexts[case.name] = case.setup()
            if progress:
                progress(f'setup {case.name}')
        for case in cases:
            for w in range(case.warmup):
                case.op(contexts[case.name], w - case.warmup)
        for round_index in range(rounds):
            pivot = (round_index + offset) % len(cases)
            rotation = list(cases[pivot:]) + list(cases[:pivot])
            for case in rotation:
                t0 = time.perf_counter()
                returned = case.op(contexts[case.name], round_index)
                elapsed = time.perf_counter() - t0
                result = results[case.name]
                result.wall.append(elapsed)
                before = len(result.samples)
                _collect(result.samples, returned)
                if len(result.samples) == before:
                    result.samples.append(elapsed)
            if progress:
                progress(f'round {round_index + 1}/{rounds}')
    finally:
        for case in cases:
            ctx = contexts.pop(case.name, None)
            if ctx is not None and case.teardown is not None:
                try:
                    case.teardown(ctx)
                except Exception:   # a failed teardown must not mask
                    pass            # the measurement (or the real error)
    return [results[case.name] for case in cases]
