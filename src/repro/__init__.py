"""repro — a Python reproduction of BIRDS (VLDB 2020).

*Programmable View Update Strategies on Relations*, Van-Dang Tran,
Hiroyuki Kato, Zhenjiang Hu.

The library lets you

* write a **view update strategy** as a Datalog *putback program* over
  delta relations (``+r`` / ``-r``),
* **validate** it (well-definedness + GetPut + PutGet, Algorithm 1),
  deriving the unique view definition it induces,
* **incrementalize** it (Lemma 5.2 / Appendix C),
* **compile** it to PostgreSQL-style SQL (view + INSTEAD OF triggers), and
* **run** it in an in-memory RDBMS with cascading updatable views.

Quickstart::

    from repro import DatabaseSchema, UpdateStrategy, validate, Engine

    sources = DatabaseSchema.build(r1=['a'], r2=['a'])
    strategy = UpdateStrategy.parse('v', sources, '''
        -r1(X) :- r1(X), not v(X).
        -r2(X) :- r2(X), not v(X).
        +r1(X) :- v(X), not r1(X), not r2(X).
    ''')
    report = validate(strategy)          # VALID; derives v = r1 ∪ r2
    engine = Engine(sources)
    engine.define_view(strategy, report=report)
    engine.insert('v', (3,))             # lands in r1
"""

from repro.core.incremental import incrementalize
from repro.core.lvgn import classify, is_lvgn
from repro.core.strategy import UpdateStrategy
from repro.core.validation import ValidationReport, validate
from repro.datalog.ast import Program, Rule
from repro.datalog.parser import parse_program
from repro.datalog.pretty import pretty
from repro.errors import (ConstraintViolation, ContradictionError,
                          DatalogSyntaxError, FragmentError, ReproError,
                          SafetyError, SchemaError, ValidationError,
                          ViewUpdateError)
from repro.fol.solver import SolverConfig
from repro.rdbms.engine import Engine
from repro.relational.database import Database
from repro.relational.delta import Delta, DeltaSet
from repro.relational.schema import (AttributeType, DatabaseSchema,
                                     RelationSchema)
from repro.sql.triggers import compile_strategy_to_sql

__version__ = '1.0.0'

__all__ = [
    'incrementalize', 'classify', 'is_lvgn', 'UpdateStrategy',
    'ValidationReport', 'validate', 'Program', 'Rule', 'parse_program',
    'pretty', 'ConstraintViolation', 'ContradictionError',
    'DatalogSyntaxError', 'FragmentError', 'ReproError', 'SafetyError',
    'SchemaError', 'ValidationError', 'ViewUpdateError', 'SolverConfig',
    'Engine', 'Database', 'Delta', 'DeltaSet', 'AttributeType',
    'DatabaseSchema', 'RelationSchema', 'compile_strategy_to_sql',
    '__version__',
]
