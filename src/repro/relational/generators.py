"""Random data generation for tests and benchmark workloads.

The generators mirror the paper's experimental setup ("we randomly generate
data for the base tables", §6.2.2): deterministic given a seed, schema-typed
values, and configurable cardinalities.
"""

from __future__ import annotations

import random
import string
from typing import Callable, Iterable

from repro.relational.database import Database
from repro.relational.schema import AttributeType, DatabaseSchema

__all__ = ['ValueSampler', 'random_database', 'random_rows']


class ValueSampler:
    """Per-type random value factory with a controllable value universe.

    ``domain_ratio`` controls duplicate density: values are drawn from a
    pool of roughly ``rows * domain_ratio`` distinct values per column.
    """

    def __init__(self, rng: random.Random, universe: int = 1_000_000):
        self.rng = rng
        self.universe = universe

    def value(self, type_name: str):
        if type_name == AttributeType.INT:
            return self.rng.randrange(self.universe)
        if type_name == AttributeType.FLOAT:
            return round(self.rng.random() * self.universe, 3)
        if type_name == AttributeType.DATE:
            year = self.rng.randrange(1950, 2020)
            month = self.rng.randrange(1, 13)
            day = self.rng.randrange(1, 29)
            return f'{year:04d}-{month:02d}-{day:02d}'
        letters = string.ascii_lowercase
        return ''.join(self.rng.choice(letters) for _ in range(8))


def random_rows(schema, count: int, rng: random.Random | None = None,
                column_pools: dict[str, list] | None = None
                ) -> set[tuple]:
    """``count`` random tuples fitting ``schema`` (a RelationSchema).

    ``column_pools`` optionally pins a column (by attribute name) to a
    finite pool — handy for foreign keys and selective predicates.
    """
    rng = rng or random.Random(0)
    sampler = ValueSampler(rng)
    rows: set[tuple] = set()
    attempts = 0
    while len(rows) < count and attempts < count * 3 + 100:
        attempts += 1
        row = []
        for attr, type_name in zip(schema.attributes, schema.types):
            pool = column_pools.get(attr) if column_pools else None
            if pool is not None:
                row.append(rng.choice(pool))
            else:
                row.append(sampler.value(type_name))
        rows.add(tuple(row))
    return rows


def random_database(schema: DatabaseSchema, sizes: dict[str, int],
                    seed: int = 0,
                    column_pools: dict[str, dict[str, list]] | None = None
                    ) -> Database:
    """A random instance of ``schema`` with per-relation cardinalities."""
    rng = random.Random(seed)
    data = {}
    for rel in schema:
        count = sizes.get(rel.name, 0)
        pools = column_pools.get(rel.name) if column_pools else None
        data[rel.name] = random_rows(rel, count, rng, pools)
    return Database.from_dict(data)
