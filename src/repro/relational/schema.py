"""Database schemas: relation names, attribute names, and types.

A :class:`DatabaseSchema` plays the role of the paper's schema
``S = <r1, ..., rn>`` (§2.1).  Attribute names are optional decoration used
by SQL generation and the RDBMS layer; Datalog itself is positional.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator

from repro.errors import SchemaError

__all__ = ['AttributeType', 'RelationSchema', 'DatabaseSchema']


class AttributeType:
    """Supported attribute types (plain string constants)."""

    INT = 'int'
    FLOAT = 'float'
    STRING = 'string'
    DATE = 'date'      # stored as ISO strings; ordered lexicographically

    ALL = (INT, FLOAT, STRING, DATE)

    _PYTHON = {INT: int, FLOAT: float, STRING: str, DATE: str}

    @classmethod
    def python_type(cls, name: str) -> type:
        try:
            return cls._PYTHON[name]
        except KeyError:
            raise SchemaError(f'unknown attribute type {name!r}') from None


@dataclass(frozen=True)
class RelationSchema:
    """Schema of one relation: ``name(attr1: type1, ..., attrk: typek)``."""

    name: str
    attributes: tuple[str, ...]
    types: tuple[str, ...] = ()

    def __post_init__(self):
        if not isinstance(self.attributes, tuple):
            object.__setattr__(self, 'attributes', tuple(self.attributes))
        if not self.types:
            object.__setattr__(
                self, 'types',
                tuple(AttributeType.STRING for _ in self.attributes))
        elif not isinstance(self.types, tuple):
            object.__setattr__(self, 'types', tuple(self.types))
        if len(self.types) != len(self.attributes):
            raise SchemaError(
                f'relation {self.name!r}: {len(self.attributes)} attributes '
                f'but {len(self.types)} types')
        for t in self.types:
            if t not in AttributeType.ALL:
                raise SchemaError(f'unknown attribute type {t!r} in '
                                  f'relation {self.name!r}')
        if len(set(self.attributes)) != len(self.attributes):
            raise SchemaError(
                f'relation {self.name!r} has duplicate attribute names')
        # Row validation runs for every inserted tuple of every
        # transaction: resolve the python types once, here, instead of
        # per value per row.  (Plain attributes, not fields — they are
        # derived, so equality/pickling of the schema is unaffected.)
        object.__setattr__(self, '_py_types',
                           tuple(AttributeType.python_type(t)
                                 for t in self.types))

    @property
    def arity(self) -> int:
        return len(self.attributes)

    def validate_tuple(self, row: tuple) -> None:
        """Raise :class:`SchemaError` when ``row`` does not fit."""
        if len(row) != len(self.attributes):
            raise SchemaError(
                f'relation {self.name!r} has arity {self.arity} but got a '
                f'tuple of length {len(row)}: {row!r}')
        py_types = self._py_types
        for index, value in enumerate(row):
            expected = py_types[index]
            cls = value.__class__
            if cls is expected:
                continue                   # the overwhelming fast path
            if expected is float and isinstance(value, int):
                continue  # ints (incl. bool, an int subclass — the
                #           historical contract) are acceptable floats
            if not isinstance(value, expected) or isinstance(value, bool):
                raise SchemaError(
                    f'{self.name}.{self.attributes[index]} expects '
                    f'{self.types[index]}, got {value!r}')

    def __str__(self) -> str:
        cols = ', '.join(f'{a}: {t}'
                         for a, t in zip(self.attributes, self.types))
        return f'{self.name}({cols})'


@dataclass(frozen=True)
class DatabaseSchema:
    """An ordered collection of relation schemas."""

    relations: tuple[RelationSchema, ...]
    _by_name: dict = field(default=None, compare=False, repr=False)

    def __post_init__(self):
        if not isinstance(self.relations, tuple):
            object.__setattr__(self, 'relations', tuple(self.relations))
        by_name = {}
        for rel in self.relations:
            if rel.name in by_name:
                raise SchemaError(f'duplicate relation name {rel.name!r}')
            by_name[rel.name] = rel
        object.__setattr__(self, '_by_name', by_name)

    @classmethod
    def build(cls, **relations: Iterable[str] | dict[str, str]
              ) -> 'DatabaseSchema':
        """Convenience constructor::

            DatabaseSchema.build(
                r1=['a', 'b'],                       # all-string attributes
                r2={'c': 'int', 'd': 'date'},        # typed attributes
            )
        """
        rels = []
        for name, spec in relations.items():
            if isinstance(spec, dict):
                rels.append(RelationSchema(name, tuple(spec),
                                           tuple(spec.values())))
            else:
                rels.append(RelationSchema(name, tuple(spec)))
        return cls(tuple(rels))

    def __iter__(self) -> Iterator[RelationSchema]:
        return iter(self.relations)

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def __getitem__(self, name: str) -> RelationSchema:
        try:
            return self._by_name[name]
        except KeyError:
            raise SchemaError(f'unknown relation {name!r}') from None

    def names(self) -> tuple[str, ...]:
        return tuple(r.name for r in self.relations)

    def arity(self, name: str) -> int:
        return self[name].arity

    def extend(self, *more: RelationSchema) -> 'DatabaseSchema':
        return DatabaseSchema(self.relations + tuple(more))

    def __str__(self) -> str:
        return '\n'.join(str(r) for r in self.relations)
