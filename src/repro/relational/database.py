"""Database instances as immutable maps from predicate symbols to relations.

A database ``D`` assigns a finite relation (a frozenset of value tuples) to
each predicate (§2.1).  Instances are value objects: equality is extensional,
updates produce new instances.  The same class represents EDBs, IDB outputs,
and the combined ``(S, V)`` instances the validation algorithm works on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Mapping

from repro.errors import SchemaError
from repro.relational.schema import DatabaseSchema

__all__ = ['Database']

Row = tuple


def _freeze(rows: Iterable[Row]) -> frozenset:
    frozen = frozenset(tuple(r) for r in rows)
    return frozen


@dataclass(frozen=True)
class Database:
    """An immutable database instance.

    Missing relations read as empty, which lets partial instances (e.g. just
    the deltas produced by a putback program) compose smoothly.
    """

    relations: Mapping[str, frozenset] = field(default_factory=dict)

    def __post_init__(self):
        frozen = {name: _freeze(rows)
                  for name, rows in dict(self.relations).items()}
        object.__setattr__(self, 'relations', frozen)

    # -- constructors -------------------------------------------------------

    @classmethod
    def from_dict(cls, data: Mapping[str, Iterable[Row]]) -> 'Database':
        return cls({name: _freeze(rows) for name, rows in data.items()})

    @classmethod
    def empty(cls) -> 'Database':
        return cls({})

    # -- access ---------------------------------------------------------------

    def __getitem__(self, name: str) -> frozenset:
        return self.relations.get(name, frozenset())

    def get(self, name: str) -> frozenset:
        return self.relations.get(name, frozenset())

    def __contains__(self, name: str) -> bool:
        return name in self.relations

    def names(self) -> set[str]:
        return set(self.relations)

    def nonempty_names(self) -> set[str]:
        return {n for n, rows in self.relations.items() if rows}

    def total_size(self) -> int:
        return sum(len(rows) for rows in self.relations.values())

    def active_domain(self) -> set:
        """All constants appearing in any tuple of any relation."""
        domain: set = set()
        for rows in self.relations.values():
            for row in rows:
                domain.update(row)
        return domain

    # -- functional updates -------------------------------------------------

    def with_relation(self, name: str, rows: Iterable[Row]) -> 'Database':
        updated = dict(self.relations)
        updated[name] = _freeze(rows)
        return Database(updated)

    def without(self, *names: str) -> 'Database':
        return Database({n: rows for n, rows in self.relations.items()
                         if n not in names})

    def restrict(self, names: Iterable[str]) -> 'Database':
        keep = set(names)
        return Database({n: rows for n, rows in self.relations.items()
                         if n in keep})

    def merge(self, other: 'Database') -> 'Database':
        """Union per-relation; shared names are unioned tuple-wise."""
        merged = dict(self.relations)
        for name, rows in other.relations.items():
            merged[name] = merged.get(name, frozenset()) | rows
        return Database(merged)

    def rename(self, mapping: Mapping[str, str]) -> 'Database':
        return Database({mapping.get(n, n): rows
                         for n, rows in self.relations.items()})

    # -- validation -----------------------------------------------------------

    def conforms_to(self, schema: DatabaseSchema) -> None:
        """Raise :class:`SchemaError` when a relation does not fit."""
        for name, rows in self.relations.items():
            if name not in schema:
                raise SchemaError(f'relation {name!r} not in schema')
            rel = schema[name]
            for row in rows:
                rel.validate_tuple(row)

    # -- dunder -----------------------------------------------------------------

    def __iter__(self) -> Iterator[str]:
        return iter(self.relations)

    def __len__(self) -> int:
        return len(self.relations)

    def __eq__(self, other) -> bool:
        if not isinstance(other, Database):
            return NotImplemented
        names = self.names() | other.names()
        return all(self[n] == other[n] for n in names)

    def __hash__(self):
        items = tuple(sorted((n, rows) for n, rows in self.relations.items()
                             if rows))
        return hash(items)

    def __str__(self) -> str:
        lines = []
        for name in sorted(self.relations):
            rows = sorted(self.relations[name])
            body = ', '.join(str(r) for r in rows) if rows else '∅'
            lines.append(f'{name}: {{{body}}}')
        return '\n'.join(lines) if lines else '(empty database)'
