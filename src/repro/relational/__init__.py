"""Relational storage substrate: schemas, instances, deltas (§2.1, §3.1)."""

from repro.relational.database import Database
from repro.relational.delta import Delta, DeltaSet, apply_delta
from repro.relational.schema import (AttributeType, DatabaseSchema,
                                     RelationSchema)

__all__ = ['Database', 'Delta', 'DeltaSet', 'apply_delta',
           'AttributeType', 'DatabaseSchema', 'RelationSchema']
