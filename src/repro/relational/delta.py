"""Delta relations and their application (§3.1 of the paper).

A :class:`Delta` is the pair (Δ⁺R, Δ⁻R) of insertions and deletions for one
relation; a :class:`DeltaSet` collects deltas for a whole database (the
paper's ΔS).  Application follows set semantics::

    R' = R ⊕ ΔR = (R \\ Δ⁻R) ∪ Δ⁺R

``DeltaSet.from_database`` extracts deltas from a Datalog output database by
interpreting the ``+r`` / ``-r`` predicate naming convention, which is how a
putback program's result becomes an update.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Mapping, Sequence

from repro.datalog.ast import (delete_pred, delta_base, insert_pred,
                               is_delete_pred, is_delta_pred, is_insert_pred)
from repro.errors import ContradictionError
from repro.relational.database import Database

__all__ = ['Delta', 'DeltaSet', 'apply_delta']


@dataclass(frozen=True)
class Delta:
    """Insertions and deletions for a single relation."""

    insertions: frozenset = frozenset()
    deletions: frozenset = frozenset()

    def __post_init__(self):
        # Deltas are allocated on every statement of every transaction:
        # skip the (re)freeze when the caller already passed frozensets.
        if type(self.insertions) is not frozenset:
            object.__setattr__(self, 'insertions',
                               frozenset(self.insertions))
        if type(self.deletions) is not frozenset:
            object.__setattr__(self, 'deletions',
                               frozenset(self.deletions))

    def is_empty(self) -> bool:
        return not self.insertions and not self.deletions

    def contradictions(self) -> frozenset:
        """Tuples both inserted and deleted (ill-definedness witnesses)."""
        return self.insertions & self.deletions

    def apply(self, rows: frozenset, relation: str = '?') -> frozenset:
        """``rows ⊕ delta``; raises :class:`ContradictionError` when the
        delta is contradictory."""
        clash = self.contradictions()
        if clash:
            raise ContradictionError(relation, clash)
        return (rows - self.deletions) | self.insertions

    def effective_on(self, rows: frozenset) -> 'Delta':
        """The part of the delta that actually changes ``rows``: deletions
        present in ``rows`` and insertions absent from it (cf. §5's steady
        state discussion)."""
        insertions = self.insertions - rows
        deletions = self.deletions & rows
        if len(insertions) == len(self.insertions) \
                and len(deletions) == len(self.deletions):
            return self          # already fully effective: no new object
        return Delta(insertions, deletions)

    def then(self, later: 'Delta') -> 'Delta':
        """Sequential composition (the Algorithm 2 merge): the single
        delta equivalent to applying ``self`` and then ``later``::

            Δ⁺ ← (Δ⁺ \\ δ⁻) ∪ δ⁺        Δ⁻ ← (Δ⁻ \\ δ⁺) ∪ δ⁻

        Later deltas take precedence; when both operands are free of
        contradictions, so is the composition.  This is how the batched
        transaction pipeline coalesces a view's staged deltas into the
        one delta its plan runs over."""
        if not (later.insertions or later.deletions):
            return self
        if not (self.insertions or self.deletions):
            return later
        return Delta((self.insertions - later.deletions)
                     | later.insertions,
                     (self.deletions - later.insertions)
                     | later.deletions)

    def union(self, other: 'Delta') -> 'Delta':
        return Delta(self.insertions | other.insertions,
                     self.deletions | other.deletions)

    def invert(self) -> 'Delta':
        return Delta(self.deletions, self.insertions)

    def split(self, classify) -> dict:
        """Partition the delta by a row predicate: ``classify(row)``
        names the partition (e.g. a shard index) each tuple belongs to.
        Returns ``{partition: Delta}`` with empty partitions omitted —
        the sharded engine uses this to route one logical delta to the
        shards owning its rows."""
        plus: dict[object, set] = {}
        minus: dict[object, set] = {}
        for row in self.insertions:
            plus.setdefault(classify(row), set()).add(row)
        for row in self.deletions:
            minus.setdefault(classify(row), set()).add(row)
        return {part: Delta(plus.get(part, ()), minus.get(part, ()))
                for part in set(plus) | set(minus)}

    @classmethod
    def compose(cls, deltas: Sequence['Delta']) -> 'Delta':
        """Sequential composition of a whole sequence — ``then`` folded
        left, but accumulated in two mutable sets so composing N staged
        single-row deltas costs O(total rows), not O(N²) frozen-set
        rebuilds.  This is the once-per-transaction merge of the
        batched pipeline."""
        if not deltas:
            return cls()
        if len(deltas) == 1:
            return deltas[0]
        plus = set(deltas[0].insertions)
        minus = set(deltas[0].deletions)
        for later in deltas[1:]:
            if later.deletions:
                plus -= later.deletions
            if later.insertions:
                plus |= later.insertions
                minus -= later.insertions
            minus |= later.deletions
        return cls(plus, minus)

    @classmethod
    def merge(cls, parts: Iterable['Delta']) -> 'Delta':
        """Reassemble a delta from disjoint partitions (the inverse of
        :meth:`split`): a plain union, since no tuple belongs to two
        partitions."""
        plus: set = set()
        minus: set = set()
        for part in parts:
            plus |= part.insertions
            minus |= part.deletions
        return cls(plus, minus)

    def __len__(self) -> int:
        return len(self.insertions) + len(self.deletions)

    def __str__(self) -> str:
        parts = [f'+{sorted(self.insertions)}' if self.insertions else '',
                 f'-{sorted(self.deletions)}' if self.deletions else '']
        return ' '.join(p for p in parts if p) or '(no change)'


@dataclass(frozen=True)
class DeltaSet:
    """Deltas for a collection of relations (the paper's ΔS)."""

    deltas: Mapping[str, Delta] = field(default_factory=dict)

    def __post_init__(self):
        object.__setattr__(
            self, 'deltas',
            {name: delta for name, delta in dict(self.deltas).items()})

    @classmethod
    def from_database(cls, db: Database,
                      relations: Iterable[str] | None = None) -> 'DeltaSet':
        """Collect ``+r`` / ``-r`` relations of ``db`` into a delta set.

        When ``relations`` is given, only deltas for those base relations are
        collected; otherwise every delta predicate in ``db`` contributes.
        """
        wanted = None if relations is None else set(relations)
        deltas: dict[str, Delta] = {}
        for name in db.names():
            if not is_delta_pred(name):
                continue
            base = delta_base(name)
            if wanted is not None and base not in wanted:
                continue
            delta = deltas.get(base, Delta())
            if is_insert_pred(name):
                delta = Delta(delta.insertions | db[name], delta.deletions)
            elif is_delete_pred(name):
                delta = Delta(delta.insertions, delta.deletions | db[name])
            deltas[base] = delta
        return cls(deltas)

    @classmethod
    def single(cls, relation: str, insertions=(), deletions=()) -> 'DeltaSet':
        return cls({relation: Delta(frozenset(insertions),
                                    frozenset(deletions))})

    # -- access ----------------------------------------------------------

    def __getitem__(self, relation: str) -> Delta:
        return self.deltas.get(relation, Delta())

    def __iter__(self) -> Iterator[str]:
        return iter(self.deltas)

    def relations(self) -> set[str]:
        return set(self.deltas)

    def is_empty(self) -> bool:
        return all(d.is_empty() for d in self.deltas.values())

    def total_size(self) -> int:
        return sum(len(d) for d in self.deltas.values())

    def is_contradictory(self) -> bool:
        return any(d.contradictions() for d in self.deltas.values())

    def contradictions(self) -> dict[str, frozenset]:
        return {name: d.contradictions()
                for name, d in self.deltas.items() if d.contradictions()}

    # -- operations ----------------------------------------------------------

    def apply_to(self, db: Database) -> Database:
        """``db ⊕ self``; raises :class:`ContradictionError` when any
        relation's delta is contradictory (Def. 3.1)."""
        result = db
        for name, delta in self.deltas.items():
            if delta.is_empty():
                continue
            result = result.with_relation(name,
                                          delta.apply(db[name], name))
        return result

    def effective_on(self, db: Database) -> 'DeltaSet':
        return DeltaSet({name: delta.effective_on(db[name])
                         for name, delta in self.deltas.items()
                         if not delta.effective_on(db[name]).is_empty()})

    def union(self, other: 'DeltaSet') -> 'DeltaSet':
        merged = dict(self.deltas)
        for name, delta in other.deltas.items():
            merged[name] = merged.get(name, Delta()).union(delta)
        return DeltaSet(merged)

    def split(self, classifiers: Mapping[str, object]) -> dict:
        """Partition every relation's delta by its own row predicate:
        ``classifiers[name](row)`` names the partition each tuple of
        ``name`` belongs to (every relation present in the delta set
        needs a classifier).  Returns ``{partition: DeltaSet}`` with
        empty partitions omitted."""
        parts: dict[object, dict[str, Delta]] = {}
        for name, delta in self.deltas.items():
            for part, piece in delta.split(classifiers[name]).items():
                parts.setdefault(part, {})[name] = piece
        return {part: DeltaSet(deltas) for part, deltas in parts.items()}

    @classmethod
    def merge(cls, parts: Iterable['DeltaSet']) -> 'DeltaSet':
        """Reassemble per-partition delta sets (inverse of
        :meth:`split`)."""
        merged: dict[str, Delta] = {}
        for part in parts:
            for name in part:
                merged[name] = merged.get(name, Delta()).union(part[name])
        return cls(merged)

    def as_database(self) -> Database:
        """Render the delta set as a database of ``+r``/``-r`` relations."""
        data: dict[str, frozenset] = {}
        for name, delta in self.deltas.items():
            data[insert_pred(name)] = delta.insertions
            data[delete_pred(name)] = delta.deletions
        return Database(data)

    def __str__(self) -> str:
        if self.is_empty():
            return 'ΔS = ∅'
        lines = []
        for name in sorted(self.deltas):
            delta = self.deltas[name]
            for row in sorted(delta.insertions):
                lines.append(f'+{name}{row}')
            for row in sorted(delta.deletions):
                lines.append(f'-{name}{row}')
        return '\n'.join(lines)


def apply_delta(db: Database, deltas: DeltaSet) -> Database:
    """Functional form of :meth:`DeltaSet.apply_to` (the paper's ⊕)."""
    return deltas.apply_to(db)
