"""Engine-wide metrics tests: the registry itself (exactness under
concurrency, bounded reservoirs, snapshot merging) and the hook sites
up the stack — single engine phase timings, WAL stat fold-in, sharded
cluster merging across threads and worker processes (restart and
retry traffic included), the serving front-end's stats/metrics
coherence under grouped commits with mixed failures, and the replica
router's quarantine/reinstate gauges.

The drift properties under test: every transaction is counted exactly
once at each level (no double counting when worker snapshots are
merged with the coordinator's), monotonic counters never move
backwards across worker restarts, and live gauges reconverge after
quarantine/reinstate while their monotonic twins keep the history.

No pytest-asyncio in the image: server tests are plain sync functions
driving ``asyncio.run`` (the test_serve.py idiom)."""

import asyncio
import os
import signal
import threading

import pytest

from repro.errors import ConstraintViolation, ShardUnavailableError
from repro.rdbms import procpool
from repro.rdbms import sharded as sharded_mod
from repro.rdbms.dml import Insert
from repro.rdbms.engine import Engine
from repro.rdbms.metrics import (MERGED_RESERVOIR_SIZE, RESERVOIR_SIZE,
                                 MetricsRegistry, merge_snapshots,
                                 summarize_snapshot)
from repro.rdbms.replica import ReplicaEngine, ReplicaSet
from repro.rdbms.serve import Receipt, ViewServer
from repro.rdbms.sharded import ShardedEngine

UNION_KEYS = {'v': 'a', 'r1': 'a', 'r2': 'a'}


def _luxury_engine(luxury_strategy, **kwargs):
    engine = Engine(luxury_strategy.sources, **kwargs)
    engine.load('items', [(1, 'watch', 5000), (2, 'ring', 4000)])
    engine.define_view(luxury_strategy, validate_first=False)
    return engine


def _union_cluster(union_strategy, **kwargs):
    sharded = ShardedEngine(union_strategy.sources, shards=3,
                            shard_keys=UNION_KEYS, **kwargs)
    sharded.load('r1', [(1,)])
    sharded.load('r2', [(2,)])
    sharded.define_view(union_strategy, validate_first=False)
    return sharded


# ---------------------------------------------------------------------------
# The registry itself
# ---------------------------------------------------------------------------


class TestRegistry:

    def test_counter_gauge_observe(self):
        reg = MetricsRegistry()
        reg.counter('c')
        reg.counter('c', 4)
        reg.gauge('g', 1.5)
        reg.gauge('g', 2.5)                     # last write wins
        reg.observe('h', 0.25)
        reg.observe('h', 0.75)
        snap = reg.snapshot()
        assert snap['counters'] == {'c': 5}
        assert snap['gauges'] == {'g': 2.5}
        hist = snap['histograms']['h']
        assert hist['count'] == 2
        assert hist['sum'] == pytest.approx(1.0)
        assert hist['min'] == 0.25 and hist['max'] == 0.75
        assert hist['reservoir'] == [0.25, 0.75]

    def test_disabled_registry_records_nothing(self):
        reg = MetricsRegistry(enabled=False)
        reg.counter('c')
        reg.gauge('g', 1.0)
        reg.observe('h', 1.0)
        assert reg.snapshot() == {'counters': {}, 'gauges': {},
                                  'histograms': {}}

    def test_concurrent_writers_lose_nothing(self):
        """N threads hammering one counter and one histogram: the
        totals are exact — no lost increments, no dropped samples in
        the aggregate count/sum."""
        reg = MetricsRegistry()
        threads, per_thread = 8, 1000

        def work():
            for _ in range(per_thread):
                reg.counter('txns')
                reg.observe('lat', 0.001)

        pool = [threading.Thread(target=work) for _ in range(threads)]
        for t in pool:
            t.start()
        for t in pool:
            t.join()
        snap = reg.snapshot()
        total = threads * per_thread
        assert snap['counters']['txns'] == total
        assert snap['histograms']['lat']['count'] == total
        assert snap['histograms']['lat']['sum'] == \
            pytest.approx(total * 0.001)

    def test_reservoir_bounded_but_aggregates_exact(self):
        reg = MetricsRegistry()
        n = 2 * RESERVOIR_SIZE + 7
        for i in range(n):
            reg.observe('h', float(i))
        hist = reg.snapshot()['histograms']['h']
        # Exact aggregates survive the trim...
        assert hist['count'] == n
        assert hist['sum'] == pytest.approx(n * (n - 1) / 2)
        assert hist['min'] == 0.0 and hist['max'] == float(n - 1)
        # ...the reservoir stays bounded and keeps the newest samples.
        reservoir = hist['reservoir']
        assert len(reservoir) <= 2 * RESERVOIR_SIZE
        assert reservoir[-1] == float(n - 1)
        tail = [float(v) for v in range(n - RESERVOIR_SIZE, n)]
        assert reservoir[-RESERVOIR_SIZE:] == tail

    def test_merge_sums_counters_gauges_and_hists(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter('c', 2)
        b.counter('c', 3)
        b.counter('only_b')
        a.gauge('g', 1.0)
        b.gauge('g', 2.0)
        a.observe('h', 0.1)
        b.observe('h', 0.9)
        merged = merge_snapshots([a.snapshot(), None, b.snapshot()])
        assert merged['counters'] == {'c': 5, 'only_b': 1}
        assert merged['gauges'] == {'g': 3.0}
        hist = merged['histograms']['h']
        assert hist['count'] == 2
        assert hist['min'] == 0.1 and hist['max'] == 0.9
        assert sorted(hist['reservoir']) == [0.1, 0.9]

    def test_merged_reservoir_is_capped(self):
        regs = []
        for _ in range(3):
            reg = MetricsRegistry()
            for i in range(2 * RESERVOIR_SIZE):
                reg.observe('h', float(i))
            regs.append(reg)
        merged = merge_snapshots([r.snapshot() for r in regs])
        hist = merged['histograms']['h']
        assert hist['count'] == 3 * 2 * RESERVOIR_SIZE
        assert len(hist['reservoir']) == MERGED_RESERVOIR_SIZE

    def test_summarize_replaces_reservoirs_with_percentiles(self):
        reg = MetricsRegistry()
        for i in range(1, 101):
            reg.observe('h', i / 1000.0)        # 1..100 ms
        reg.counter('c', 7)
        summary = summarize_snapshot(reg.snapshot())
        assert summary['counters'] == {'c': 7}
        hist = summary['histograms']['h']
        assert 'reservoir' not in hist
        assert hist['count'] == 100
        assert hist['mean'] == pytest.approx(0.0505)
        pct = hist['percentiles']
        assert pct['n'] == 100
        assert pct['p50_ms'] == pytest.approx(50.0, abs=1.0)
        assert pct['p99_ms'] == pytest.approx(99.0, abs=1.5)

    def test_reset_drops_everything(self):
        reg = MetricsRegistry()
        reg.counter('c')
        reg.observe('h', 1.0)
        reg.reset()
        assert reg.snapshot() == {'counters': {}, 'gauges': {},
                                  'histograms': {}}


# ---------------------------------------------------------------------------
# Single-engine hook sites
# ---------------------------------------------------------------------------


class TestEngineMetrics:

    def test_phase_counters_and_histograms(self, luxury_strategy):
        engine = _luxury_engine(luxury_strategy)
        try:
            base = engine.metrics_snapshot()
            assert base['counters']['plan.compiles'] >= 1
            assert base['histograms']['plan.compile_seconds']['count'] \
                >= 1
            commits_before = base['counters'].get('txn.commits', 0)
            engine.insert('luxuryitems', (3, 'yacht', 90_000))
            engine.insert('luxuryitems', (4, 'tiara', 70_000))
            snap = engine.metrics_snapshot()
            counters = snap['counters']
            assert counters['txn.commits'] == commits_before + 2
            assert counters['txn.plan_runs'] >= 2
            for phase in ('txn.prepare_seconds', 'txn.apply_seconds',
                          'txn.commit_seconds'):
                hist = snap['histograms'][phase]
                # One sample per transaction, per phase — the hook is
                # per-commit, so counts track txn.commits exactly.
                assert hist['count'] == counters['txn.commits']
                assert hist['sum'] >= 0.0
        finally:
            engine.close()

    def test_wal_stats_folded_into_snapshot(self, luxury_strategy,
                                            tmp_path):
        engine = Engine(luxury_strategy.sources,
                        wal=tmp_path / 'e.wal', wal_sync=False)
        engine.load('items', [(1, 'watch', 5000)])
        engine.define_view(luxury_strategy, validate_first=False)
        try:
            engine.insert('luxuryitems', (3, 'yacht', 90_000))
            snap = engine.metrics_snapshot()
            assert snap['counters']['wal.appends'] == \
                engine.wal.stats['appends'] > 0
            assert snap['counters']['wal.bytes'] > 0
            assert snap['gauges']['wal.last_record_bytes'] == \
                engine.wal.stats['last_record_bytes'] > 0
            assert snap['histograms']['wal.append_seconds']['count'] > 0
        finally:
            engine.close()

    def test_disabled_engine_registry_stays_empty(self, luxury_strategy):
        engine = Engine(luxury_strategy.sources)
        engine.metrics.enabled = False
        engine.load('items', [(1, 'watch', 5000)])
        engine.define_view(luxury_strategy, validate_first=False)
        try:
            engine.insert('luxuryitems', (3, 'yacht', 90_000))
            snap = engine.metrics.snapshot()
            assert snap['counters'] == {}
            assert snap['histograms'] == {}
        finally:
            engine.close()


# ---------------------------------------------------------------------------
# Sharded cluster: merged view, restarts, retry traffic
# ---------------------------------------------------------------------------


class TestShardedMetrics:

    def test_thread_cluster_counts_each_txn_once(self, union_strategy):
        sharded = _union_cluster(union_strategy)
        try:
            before = sharded.metrics()['counters']
            for i in range(5):
                sharded.execute_many([('v', [Insert((10 + i,))])])
            counters = sharded.metrics()['counters']
            # Exactly one cluster.txns tick per execute_many — the
            # coordinator counts it once, not once per shard.
            assert counters['cluster.txns'] == \
                before.get('cluster.txns', 0) + 5
            # The per-shard engines' commits are merged in on top.
            assert counters['txn.commits'] >= \
                before.get('txn.commits', 0) + 5
            assert counters.get('retry.attempts', 0) == 0
            assert counters.get('cluster.aborts', 0) == \
                before.get('cluster.aborts', 0)
        finally:
            sharded.close()

    def test_abort_counted_not_committed(self, luxury_strategy):
        sharded = ShardedEngine(luxury_strategy.sources, shards=2,
                                shard_keys={'items': 'iid',
                                            'luxuryitems': 'iid'})
        sharded.load('items', [(1, 'watch', 5000)])
        sharded.define_view(luxury_strategy, validate_first=False)
        try:
            before = sharded.metrics()['counters']
            with pytest.raises(ConstraintViolation):
                sharded.execute_many(
                    [('luxuryitems', [Insert((9, 'socks', 8))])])
            counters = sharded.metrics()['counters']
            assert counters['cluster.aborts'] == \
                before.get('cluster.aborts', 0) + 1
            assert counters.get('cluster.txns', 0) == \
                before.get('cluster.txns', 0)
        finally:
            sharded.close()

    def test_process_cluster_ships_worker_counters(self,
                                                   union_strategy):
        sharded = _union_cluster(union_strategy,
                                 execution='processes')
        try:
            before = sharded.metrics()
            for i in range(2):
                sharded.execute_many([('v', [Insert((10 + i,))])])
            merged = sharded.metrics()
            counters = merged['counters']
            assert counters['cluster.txns'] == \
                before['counters'].get('cluster.txns', 0) + 2
            # Worker-side series crossed the RPC channel: the commits
            # happened in the forked processes, yet show up merged.
            assert counters['txn.commits'] >= 2
            assert counters['rpc.requests'] > \
                before['counters']['rpc.requests']
            assert merged['gauges']['procpool.alive'] == 3.0
            assert counters.get('procpool.restarts', 0) == 0
        finally:
            sharded.close()

    def test_restart_keeps_rpc_counter_monotonic(self, union_strategy,
                                                 tmp_path):
        """SIGKILL a worker, restart it: procpool.restarts ticks and
        rpc.requests never moves backwards even though the replacement
        worker's channel restarts its sequence numbers from zero."""
        sharded = _union_cluster(union_strategy,
                                 execution='processes',
                                 wal_dir=tmp_path, wal_sync=False)
        try:
            sharded.execute_many([('v', [Insert((10,))])])
            before = sharded.metrics()['counters']
            victim = sharded.shards[0]
            os.kill(victim.process.pid, signal.SIGKILL)
            victim.process.join(10)
            victim.restart()
            sharded.execute_many([('v', [Insert((11,))])])
            counters = sharded.metrics()['counters']
            assert counters['procpool.restarts'] == \
                before.get('procpool.restarts', 0) + 1
            assert counters['rpc.requests'] > before['rpc.requests']
        finally:
            sharded.close()

    def test_transient_retry_attempts_counted(self, union_strategy,
                                              monkeypatch):
        """The masked-death retry (test_procpool idiom): the client
        sees success, the metrics see the retry traffic."""
        original = Engine.prepare_commit

        def dying(self, working):
            if procpool.WORKER_INDEX == 1:
                os._exit(1)
            return original(self, working)

        monkeypatch.setattr(Engine, 'prepare_commit', dying)
        sharded = ShardedEngine(union_strategy.sources, shards=3,
                                shard_keys=UNION_KEYS,
                                execution='processes',
                                transient_retries=2,
                                retry_backoff=0.01)
        monkeypatch.undo()
        try:
            sharded.load('r1', [(0,), (1,), (2,)])
            sharded.define_view(union_strategy, validate_first=False)
            sharded.execute_many(
                [('v', [Insert((3,)), Insert((4,)), Insert((5,))])])
            counters = sharded.metrics()['counters']
            assert counters['retry.attempts'] >= 1
            assert counters.get('retry.giveups', 0) == 0
        finally:
            sharded.close()

    def test_giveup_counted_and_backoff_capped(self, union_strategy,
                                               monkeypatch):
        """A permanently unavailable cluster: every sleep is clamped
        to retry_backoff_cap, the loop gives up once the summed waits
        would exceed retry_max_wait, and both attempts and the give-up
        land in the metrics."""
        delays = []
        monkeypatch.setattr(sharded_mod.time, 'sleep', delays.append)
        sharded = _union_cluster(union_strategy,
                                 transient_retries=10,
                                 retry_backoff=1.0,
                                 retry_backoff_cap=0.25,
                                 retry_max_wait=0.6)

        def unavailable(batches):
            raise ShardUnavailableError('injected outage')

        sharded._execute_cluster = unavailable
        try:
            with pytest.raises(ShardUnavailableError,
                               match='injected outage'):
                sharded.execute_many([('v', [Insert((10,))])])
            # backoff would be 1.0, 2.0, ... — the cap clamps every
            # sleep to 0.25 and the 0.6 budget allows exactly two.
            assert delays == [0.25, 0.25]
            counters = sharded.metrics()['counters']
            assert counters['retry.attempts'] == 2
            assert counters['retry.giveups'] == 1
        finally:
            del sharded._execute_cluster
            sharded.close()


# ---------------------------------------------------------------------------
# Serving front-end: stats and metrics agree under concurrency
# ---------------------------------------------------------------------------


class TestServeMetrics:

    def test_stats_metrics_coherent_under_mixed_failures(
            self, luxury_strategy):
        """Grouped commit with one constraint violator among three
        good clients: submitted == committed + failed, the group-size
        histogram counts exactly stats['groups'] groups, and no
        submission is counted twice anywhere."""
        served = _luxury_engine(luxury_strategy)
        gate = threading.Event()
        real = served.execute_many

        def gated(buckets):
            gate.wait(timeout=10)
            return real(buckets)

        served.execute_many = gated
        good = [[('luxuryitems', [Insert((10 + i, f'good{i}', 3000))])]
                for i in range(3)]
        bad = [('luxuryitems', [Insert((99, 'socks', 8))])]

        async def main():
            async with ViewServer(served) as server:
                futures = [asyncio.ensure_future(server.submit(txn))
                           for txn in (good[0], bad, good[1], good[2])]
                while server.stats['submitted'] < 4:
                    await asyncio.sleep(0.01)
                gate.set()
                outcomes = await asyncio.gather(*futures,
                                                return_exceptions=True)
                return outcomes, dict(server.stats), server.metrics()

        outcomes, stats, merged = asyncio.run(main())
        served.execute_many = real
        assert sum(isinstance(o, Receipt) for o in outcomes) == 3
        assert sum(isinstance(o, ConstraintViolation)
                   for o in outcomes) == 1
        # stats arithmetic: every submission resolved exactly once.
        assert stats['submitted'] == 4
        assert stats['committed'] + stats['failed'] == 4
        counters = merged['counters']
        # ...and the metrics view carries the same numbers.
        assert counters['serve.submitted'] == 4
        assert counters['serve.committed'] == stats['committed']
        assert counters['serve.failed'] == stats['failed']
        assert counters['serve.retried'] == stats['retried']
        assert merged['gauges']['serve.max_group'] == \
            stats['max_group']
        group_hist = merged['histograms']['serve.group_size']
        assert group_hist['count'] == stats['groups']
        # Every submission sits in exactly one group.
        assert group_hist['sum'] == pytest.approx(4.0)
        # group_seconds is only observed for group runs that succeed
        # (the failed group's latency is not a commit latency), so it
        # can never exceed the group count.
        group_seconds = merged['histograms'].get(
            'serve.group_seconds', {'count': 0})
        assert group_seconds['count'] <= stats['groups']
        # The engine's own commits are merged in underneath.
        assert counters['txn.commits'] >= stats['committed']
        served.close()

    def test_server_merges_cluster_metrics(self, union_strategy):
        sharded = _union_cluster(union_strategy)

        async def main():
            async with ViewServer(sharded) as server:
                for i in range(3):
                    await server.submit([('v', [Insert((10 + i,))])])
                return dict(server.stats), server.metrics()

        stats, merged = asyncio.run(main())
        counters = merged['counters']
        assert counters['serve.submitted'] == stats['submitted'] == 3
        # One metrics() call spans the whole stack: server counters
        # next to the sharded coordinator's and the shard engines'.
        assert counters['cluster.txns'] >= 3
        assert counters['txn.commits'] >= 3
        sharded.close()


# ---------------------------------------------------------------------------
# Replica router: monotonic quarantines vs live rotation gauges
# ---------------------------------------------------------------------------


class TestReplicaMetrics:

    def _set(self, luxury_strategy, tmp_path, n=2, **kwargs):
        primary = Engine(luxury_strategy.sources,
                         wal=tmp_path / 'p.wal', wal_sync=False)
        primary.load('items', [(1, 'watch', 5000), (2, 'ring', 4000)])
        primary.define_view(luxury_strategy, validate_first=False)
        replicas = [ReplicaEngine(luxury_strategy.sources, primary.wal)
                    for _ in range(n)]
        return primary, ReplicaSet(primary, replicas, **kwargs)

    def test_quarantine_reinstate_gauges_reconverge(
            self, luxury_strategy, tmp_path):
        primary, router = self._set(luxury_strategy, tmp_path)
        try:
            snap = router.metrics_snapshot()
            assert snap['gauges']['replica.in_rotation'] == 2.0
            assert snap['gauges']['replica.quarantined'] == 0.0
            assert snap['counters']['replica.quarantines'] == 0

            router.quarantine(router.replicas[0])
            snap = router.metrics_snapshot()
            assert snap['gauges']['replica.in_rotation'] == 1.0
            assert snap['gauges']['replica.quarantined'] == 1.0
            assert snap['counters']['replica.quarantines'] == 1

            assert router.reinstate() == 1
            snap = router.metrics_snapshot()
            # Live gauges reconverge; the monotonic counter keeps the
            # history (that is the split the stats bugfix made).
            assert snap['gauges']['replica.in_rotation'] == 2.0
            assert snap['gauges']['replica.quarantined'] == 0.0
            assert snap['counters']['replica.quarantines'] == 1

            router.quarantine(router.replicas[0])
            assert router.metrics_snapshot()['counters'][
                'replica.quarantines'] == 2
        finally:
            router.close()
            primary.close()

    def test_router_snapshot_merges_into_engine_view(
            self, luxury_strategy, tmp_path):
        primary, router = self._set(luxury_strategy, tmp_path,
                                    max_lag=0)
        try:
            primary.insert('luxuryitems', (4, 'yacht', 90_000))
            # max_lag=0: the read forces a catch-up before serving.
            assert (4, 'yacht', 90_000) in router.read('items')
            merged = merge_snapshots([primary.metrics_snapshot(),
                                      router.metrics_snapshot()])
            counters = merged['counters']
            assert counters['replica.replica_reads'] == \
                router.stats['replica_reads'] == 1
            assert counters['replica.catch_ups'] >= 1
            assert 'wal.appends' in counters
            assert merged['gauges']['replica.in_rotation'] == 2.0
        finally:
            router.close()
            primary.close()
