"""GNFO fragment checker tests (§3.2 / Bárány et al.)."""

from repro.fol.formula import (FoAtom, FoCmp, FoConst, FoEq, FoVar, Forall,
                               Not, make_and, make_exists, make_or)
from repro.fol.guarded import is_gnfo, why_not_gnfo


def r(*names):
    return FoAtom('r', tuple(FoVar(n) for n in names))


def s(*names):
    return FoAtom('s', tuple(FoVar(n) for n in names))


class TestGnfo:

    def test_atom(self):
        assert is_gnfo(r('X'))

    def test_equality(self):
        assert is_gnfo(FoEq(FoVar('X'), FoConst(1)))

    def test_guarded_negation(self):
        assert is_gnfo(make_and([r('X', 'Y'), Not(s('X', 'Y'))]))

    def test_unguarded_negation(self):
        assert not is_gnfo(make_and([r('X'), Not(s('X', 'Y'))]))
        reason = why_not_gnfo(make_and([r('X'), Not(s('X', 'Y'))]))
        assert 'unguarded' in reason

    def test_negation_of_sentence_allowed(self):
        closed = Not(make_exists((FoVar('X'),), r('X')))
        assert is_gnfo(closed)

    def test_bare_negation_with_free_vars(self):
        assert not is_gnfo(Not(r('X')))

    def test_constant_equated_vars_need_no_guard(self):
        # Example 3.2 style: ¬(Z = 1) guarded via the r-atom; a variable
        # pinned to a constant needs no guard cover.
        formula = make_and([r('X'), FoEq(FoVar('Z'), FoConst(1)),
                            Not(s('X', 'Z'))])
        assert is_gnfo(formula)

    def test_comparison_var_const_ok(self):
        assert is_gnfo(FoCmp('<', FoVar('X'), FoConst(5)))

    def test_comparison_var_var_rejected(self):
        formula = FoCmp('<', FoVar('X'), FoVar('Y'))
        assert not is_gnfo(formula)
        assert 'comparison' in why_not_gnfo(formula)

    def test_forall_rejected(self):
        assert not is_gnfo(Forall((FoVar('X'),), r('X')))

    def test_disjunction_and_exists_transparent(self):
        formula = make_or([
            make_exists((FoVar('Y'),), make_and([r('X', 'Y'),
                                                 Not(s('X', 'Y'))])),
            r('X', 'X')])
        assert is_gnfo(formula)

    def test_inner_join_definition_not_guarded(self):
        # Footnote 6: v(X,Y,Z) :- s1(X,Y), s2(Y,Z) has an unguarded head;
        # at the formula level the corresponding check appears when the
        # negation of the join is taken.
        join = make_and([FoAtom('s1', (FoVar('X'), FoVar('Y'))),
                         FoAtom('s2', (FoVar('Y'), FoVar('Z')))])
        guarded_neg = make_and([r('X'), Not(join)])
        assert not is_gnfo(guarded_neg)
