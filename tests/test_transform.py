"""Program transformation tests (simplify / inline / prune / rename)."""

import random

from repro.datalog.evaluator import evaluate
from repro.datalog.parser import parse_program, parse_rule
from repro.datalog.pretty import pretty_rule
from repro.datalog.transform import (dedupe_literals,
                                     drop_trivial_builtins,
                                     eliminate_var_equalities,
                                     inline_single_rule_predicates,
                                     prune_unreachable, rename_predicates,
                                     rename_rule_variables, simplify_rule,
                                     tidy_program)
from repro.relational.database import Database


class TestRuleSimplification:

    def test_var_var_equality_eliminated(self):
        rule = parse_rule('h(X) :- r(X), s(Y), X = Y.')
        result = eliminate_var_equalities(rule)
        assert pretty_rule(result) == 'h(X) :- r(X), s(X).'

    def test_head_variable_preferred(self):
        rule = parse_rule('h(X) :- r(Y), X = Y.')
        result = eliminate_var_equalities(rule)
        assert pretty_rule(result) == 'h(X) :- r(X).'

    def test_constant_substitution(self):
        rule = parse_rule("h(X) :- r(X, Y), Y = 'a'.")
        result = eliminate_var_equalities(rule)
        assert pretty_rule(result) == "h(X) :- r(X, 'a')."

    def test_duplicate_literals_removed(self):
        rule = parse_rule('h(X) :- r(X), r(X), s(X).')
        assert len(dedupe_literals(rule).body) == 2

    def test_trivial_builtins_dropped(self):
        rule = parse_rule('h(X) :- r(X), X = X, 1 < 2.')
        assert len(drop_trivial_builtins(rule).body) == 1

    def test_simplify_preserves_semantics(self):
        rule = parse_rule("h(X, Z) :- r(X, Y), X = W, Y = Z, r(W, Y).")
        program_a = parse_program(pretty_rule(rule))
        program_b = parse_program(pretty_rule(simplify_rule(rule)))
        rng = random.Random(2)
        for _ in range(15):
            db = Database.from_dict({
                'r': {(rng.randint(0, 2), rng.randint(0, 2))
                      for _ in range(4)}})
            assert evaluate(program_a, db)['h'] == \
                evaluate(program_b, db)['h']

    def test_rename_strips_machine_suffixes(self):
        rule = parse_rule('h(X) :- r(X), s(Y).').substitute(
            {'Y': __import__('repro.datalog.ast',
                             fromlist=['Var']).Var('Y#c3')})
        renamed = rename_rule_variables(rule)
        assert 'Y#c3' not in {str(v) for v in renamed.variables()}
        assert 'Y' in renamed.variables()


class TestProgramTransforms:

    def test_prune_unreachable(self):
        program = parse_program("""
            a(X) :- r(X).
            b(X) :- a(X).
            dead(X) :- s(X).
        """)
        pruned = prune_unreachable(program, {'b'})
        assert pruned.idb_preds() == {'a', 'b'}

    def test_prune_keeps_constraints(self):
        program = parse_program("""
            a(X) :- r(X).
            ⊥ :- s(X).
        """)
        pruned = prune_unreachable(program, {'a'})
        assert len(pruned.constraints()) == 1

    def test_inline_single_rule(self):
        program = parse_program("""
            aux(X, Y) :- r(X, Y), Y > 1.
            v(X) :- aux(X, Y), s(Y).
        """)
        inlined = inline_single_rule_predicates(program, {'v'})
        assert inlined.idb_preds() == {'v'}
        db = Database.from_dict({'r': {(1, 2), (3, 0)}, 's': {(2,)}})
        assert evaluate(inlined, db)['v'] == {(1,)}

    def test_inline_skips_negated_predicates(self):
        program = parse_program("""
            aux(X) :- r(X), s(X).
            v(X) :- r(X), not aux(X).
        """)
        inlined = inline_single_rule_predicates(program, {'v'})
        assert 'aux' in inlined.idb_preds()

    def test_inline_skips_multi_rule_predicates(self):
        program = parse_program("""
            aux(X) :- r1(X).
            aux(X) :- r2(X).
            v(X) :- aux(X).
        """)
        inlined = inline_single_rule_predicates(program, {'v'})
        assert 'aux' in inlined.idb_preds()

    def test_rename_predicates(self):
        program = parse_program('v(X) :- r(X), not s(X).')
        renamed = rename_predicates(program, {'r': 'r_new', 'v': 'w'})
        assert renamed.idb_preds() == {'w'}
        assert renamed.rules[0].body_preds() == {'r_new', 's'}

    def test_tidy_end_to_end_semantics(self):
        program = parse_program("""
            step1(X, Y) :- r(X, Y).
            step2(X) :- step1(X, Y), Y = 1.
            v(X) :- step2(X).
            dead(X) :- nothing(X).
        """)
        tidied = tidy_program(program, {'v'})
        assert 'dead' not in tidied.idb_preds()
        db = Database.from_dict({'r': {(7, 1), (8, 2)}})
        assert evaluate(tidied, db)['v'] == {(7,)}
